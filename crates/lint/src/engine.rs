//! The rule engine: file discovery, per-file context, and rule dispatch.
//!
//! The engine walks the workspace (skipping `target/`, `vendor/`, `.git/`
//! and fixture trees), scans each `.rs` file into a masked token view
//! ([`crate::lexer`]), computes which lines are test code, parses the
//! allow pragmas, and hands the bundle to every source rule. Pragma
//! suppression is applied centrally, so a rule only decides *what* is a
//! violation, never whether the author excused it.
//!
//! The vendored dependency stubs under `vendor/` are exempt by
//! construction: they stand in for external crates, which no in-house
//! architectural invariant governs.

use crate::diag::Diagnostic;
use crate::lexer::{self, Scan, TokenView};
use crate::parse::{self, Closure, FnSig, Tree, UseImport};
use crate::pragma::Pragmas;
use crate::rules;
use crate::symbols::SymbolTable;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything a source rule gets to look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel: &'a str,
    /// Original source text.
    pub src: &'a str,
    /// The masked scan of `src`.
    pub scan: &'a Scan,
    /// Token view over the masked source.
    pub tokens: &'a TokenView<'a>,
    /// `line_is_test[line - 1]`: is the line inside a `#[cfg(test)]` item?
    pub line_is_test: &'a [bool],
    /// The delimiter-nesting tree ([`crate::parse`]).
    pub tree: &'a Tree,
    /// Every `fn` signature in the file.
    pub fns: &'a [FnSig],
    /// Every closure expression in the file.
    pub closures: &'a [Closure],
    /// Every `use`-imported name in the file.
    pub uses: &'a [UseImport],
    /// The scoped symbol table ([`crate::symbols`]).
    pub symbols: &'a SymbolTable,
}

impl FileCtx<'_> {
    /// Is the whole file test/bench/example scaffolding (by location)?
    pub fn is_test_file(&self) -> bool {
        let r = self.rel;
        r.contains("/tests/")
            || r.contains("/benches/")
            || r.contains("/examples/")
            || r.starts_with("tests/")
            || r.starts_with("benches/")
            || r.starts_with("examples/")
    }

    /// Is `line` (1-based) test code — either a test file or inside a
    /// `#[cfg(test)]` region?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_file() || self.line_is_test.get(line - 1).copied().unwrap_or(false)
    }

    /// Every match of `pattern` in the masked token stream, as a ready
    /// diagnostic for `rule`.
    pub fn hits(&self, pattern: &[&str], rule: &'static str, message: &str) -> Vec<Diagnostic> {
        self.tokens
            .find_all(pattern)
            .into_iter()
            .map(|offset| {
                let (line, col) = self.scan.position(offset);
                Diagnostic {
                    file: self.rel.to_string(),
                    line,
                    col,
                    rule,
                    message: message.to_string(),
                    snippet: self.scan.line_text(self.src, line).trim().to_string(),
                }
            })
            .collect()
    }
}

/// Mark every line covered by a `#[cfg(test)]` item (attribute through the
/// item's closing brace or terminating semicolon).
pub fn test_lines(scan: &Scan, tv: &TokenView<'_>) -> Vec<bool> {
    let mut flags = vec![false; scan.line_count()];
    let toks = tv.toks();
    let mut i = 0;
    while i < toks.len() {
        if !tv.matches_at(i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            i += 1;
            continue;
        }
        let start_line = scan.position(toks[i].start).0;
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while j < toks.len() && tv.text(j) == "#" {
            j += 1;
            if j < toks.len() && tv.text(j) == "[" {
                let mut depth = 0usize;
                while j < toks.len() {
                    match tv.text(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // The item body: everything up to the matching `}` of its first
        // brace, or a `;` reached before any brace opens.
        let mut depth = 0usize;
        let mut end_tok = None;
        while j < toks.len() {
            match tv.text(j) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_tok = Some(j);
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_tok = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end_line = match end_tok {
            Some(e) => scan.position(toks[e].start).0,
            None => scan.line_count(),
        };
        for line in start_line..=end_line.min(flags.len()) {
            flags[line - 1] = true;
        }
        i = j + 1;
    }
    flags
}

/// One lint pass's result: surviving diagnostics plus how many were
/// pragma-suppressed (reported in the JSON output).
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Diagnostics that survived pragma filtering, sorted.
    pub diags: Vec<Diagnostic>,
    /// Violations excused by a reasoned `allow` pragma.
    pub suppressed: usize,
}

/// Lint one source file (pragmas applied, diagnostics sorted), with the
/// pragma-suppressed count.
pub fn lint_source_outcome(rel: &str, src: &str) -> LintOutcome {
    let scan = lexer::scan(src);
    let tv = TokenView::new(&scan);
    let line_is_test = test_lines(&scan, &tv);
    let pragmas = Pragmas::parse(&scan.comments, rules::RULE_IDS);
    let tree = Tree::build(&tv);
    let fns = parse::parse_fns(&tv, &tree);
    let closures = parse::parse_closures(&tv, &tree);
    let uses = parse::parse_uses(&tv, &tree);
    let symbols = SymbolTable::collect(&tv, &tree, &fns);
    let ctx = FileCtx {
        rel,
        src,
        scan: &scan,
        tokens: &tv,
        line_is_test: &line_is_test,
        tree: &tree,
        fns: &fns,
        closures: &closures,
        uses: &uses,
        symbols: &symbols,
    };

    let mut out = LintOutcome {
        diags: pragmas.error_diagnostics(rel, src),
        suppressed: 0,
    };
    for d in rules::check_source(&ctx) {
        if pragmas.allows(d.rule, d.line) {
            out.suppressed += 1;
        } else {
            out.diags.push(d);
        }
    }
    out.diags
        .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Lint one source file (pragmas applied, diagnostics sorted).
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    lint_source_outcome(rel, src).diags
}

/// Directories never descended into.
fn skip_dir(name: &str) -> bool {
    matches!(
        name,
        "target" | "vendor" | "out" | "fixtures" | ".git" | ".cargo" | ".github"
    )
}

/// Collect every `.rs` file and every `Cargo.toml` under `root`,
/// deterministically ordered.
pub fn discover(root: &Path) -> io::Result<(Vec<PathBuf>, Vec<PathBuf>)> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                sources.push(path);
            } else if name == "Cargo.toml" {
                manifests.push(path);
            }
        }
    }
    sources.sort();
    manifests.sort();
    Ok((sources, manifests))
}

/// Workspace-relative `/`-separated path.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint the whole workspace rooted at `root`: every source rule over every
/// `.rs` file, plus the layering rule over the crate manifests. The
/// combined diagnostics are globally sorted by (file, line, col, rule) so
/// output order never depends on walk or rule iteration order.
pub fn lint_workspace_outcome(root: &Path) -> io::Result<LintOutcome> {
    let (sources, manifests) = discover(root)?;
    let mut out = LintOutcome::default();
    for path in &sources {
        let rel = relative(root, path);
        let src = fs::read_to_string(path)?;
        let one = lint_source_outcome(&rel, &src);
        out.diags.extend(one.diags);
        out.suppressed += one.suppressed;
    }
    out.diags
        .extend(rules::layering::check_manifests(root, &manifests)?);
    out.diags
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(out)
}

/// Lint the whole workspace rooted at `root` (diagnostics only).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_workspace_outcome(root)?.diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn test_flags(src: &str) -> Vec<bool> {
        let s = scan(src);
        let tv = TokenView::new(&s);
        test_lines(&s, &tv)
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let flags = test_flags(src);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let flags = test_flags(src);
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn cfg_test_with_second_attribute() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\nfn live() {}\n";
        let flags = test_flags(src);
        assert_eq!(&flags[..5], &[true; 5]);
        assert!(!flags[5]);
    }

    #[test]
    fn cfg_attr_is_not_cfg_test() {
        let src = "#![cfg_attr(not(test), deny(warnings))]\nfn live() {}\n";
        let flags = test_flags(src);
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn nested_braces_inside_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { if x { y() } }\n}\nfn live() {}\n";
        let flags = test_flags(src);
        assert!(flags[3], "closing line of mod is test");
        assert!(!flags[4]);
    }

    #[test]
    fn lint_source_suppresses_via_pragma() {
        let rel = "crates/bench/src/bin/tool.rs";
        let bad = "fn main() { x.unwrap(); }\n";
        assert_eq!(lint_source(rel, bad).len(), 1);
        let ok = "fn main() { x.unwrap(); } // qntn-lint: allow(no-panic-bins) -- demo\n";
        assert!(lint_source(rel, ok).is_empty());
    }

    #[test]
    fn lint_source_reports_bad_pragmas() {
        let rel = "crates/net/src/lib.rs";
        let src = "// qntn-lint: allow(no-panic-bins)\n";
        let d = lint_source(rel, src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-pragma");
    }
}
