//! The `qntn-lint` binary: scan the workspace, print diagnostics, exit
//! nonzero on any violation.
//!
//! ```text
//! qntn-lint [--root DIR] [--format text|json] [--out PATH] [--list-rules] [--help]
//!
//! exit codes:
//!   0  clean
//!   1  one or more violations (each printed as file:line:col: [rule] msg)
//!   2  usage or I/O error
//! ```

use qntn_lint::{diag, engine, rules};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
qntn-lint [--root DIR] [--format text|json] [--out PATH] [--list-rules]

Architectural linter for the QNTN workspace: enforces the pattern
invariants (single-materializer, atomic-writes-only, no-panic-bins,
determinism, layering) and the semantic invariants (unit-safety,
typed-index, float-reduction, rayon-capture, result-swallow) — DESIGN.md
sections 11 and 16. Prints one diagnostic per violation as
`file:line:col: [rule-id] message` and exits 1 when any is found;
suppress an intentional exception in-source with
`// qntn-lint: allow(<rule>) -- <reason>`.

flags:
  --root DIR        workspace root to scan (default: auto-detected)
  --format FMT      `text` (default) or `json` (stable machine-readable)
  --out PATH        also write the report to PATH (atomic tmp+rename)
  --list-rules      print each rule id with its one-line description
  --help            this text
";

fn workspace_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return Ok(root);
    }
    // `cargo run -p qntn-lint` sets CARGO_MANIFEST_DIR to crates/lint.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return Ok(root.to_path_buf());
        }
    }
    // Fallback: walk up from the current directory to a workspace manifest.
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found; pass --root".into());
        }
    }
}

/// Write the report atomically: temp file in the destination directory,
/// fsync, rename. qntn-lint sits below `qntn_common` in the layering
/// (layer 0 depends on nothing), so the helper is mirrored locally
/// instead of imported.
// qntn-lint: allow-file(atomic-writes-only) -- layer-0 crate cannot depend on qntn_common; this mirrors its tmp+fsync+rename discipline
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = None;
    let mut format = Format::Text;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for (rule, desc) in rules::RULES {
                    println!("{rule}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text|json)"))
                }
                None => return usage_error("--format needs a value"),
            },
            "--out" => match args.next() {
                Some(path) => out_path = Some(PathBuf::from(path)),
                None => return usage_error("--out needs a value"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match workspace_root(root) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match engine::lint_workspace_outcome(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match format {
        Format::Json => diag::render_json(&outcome.diags, outcome.suppressed),
        Format::Text => {
            let mut text = String::new();
            for d in &outcome.diags {
                text.push_str(&d.to_string());
                text.push('\n');
            }
            if outcome.diags.is_empty() {
                text.push_str(&format!(
                    "qntn-lint: clean ({} rules)\n",
                    rules::RULES.len()
                ));
            } else {
                text.push_str(&format!(
                    "qntn-lint: {} violation(s)\n",
                    outcome.diags.len()
                ));
            }
            text
        }
    };
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = atomic_write(&path, report.as_bytes()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if outcome.diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
