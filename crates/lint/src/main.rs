//! The `qntn-lint` binary: scan the workspace, print diagnostics, exit
//! nonzero on any violation.
//!
//! ```text
//! qntn-lint [--root DIR] [--list-rules] [--help]
//!
//! exit codes:
//!   0  clean
//!   1  one or more violations (each printed as file:line:col: [rule] msg)
//!   2  usage or I/O error
//! ```

use qntn_lint::{engine, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
qntn-lint [--root DIR] [--list-rules]

Architectural linter for the QNTN workspace: enforces the
single-materializer, atomic-writes-only, no-panic-bins, determinism and
layering invariants (DESIGN.md section 11). Prints one diagnostic per
violation as `file:line:col: [rule-id] message` and exits 1 when any is
found; suppress an intentional exception in-source with
`// qntn-lint: allow(<rule>) -- <reason>`.

flags:
  --root DIR    workspace root to scan (default: auto-detected)
  --list-rules  print the rule ids and exit
  --help        this text
";

fn workspace_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return Ok(root);
    }
    // `cargo run -p qntn-lint` sets CARGO_MANIFEST_DIR to crates/lint.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return Ok(root.to_path_buf());
        }
    }
    // Fallback: walk up from the current directory to a workspace manifest.
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found; pass --root".into());
        }
    }
}

fn main() -> ExitCode {
    let mut root = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for rule in rules::RULE_IDS {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a value\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match workspace_root(root) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    match engine::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("qntn-lint: clean ({} rules)", rules::RULE_IDS.len());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("qntn-lint: {} violation(s)", diags.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
