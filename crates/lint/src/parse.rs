//! The brace-tree layer: structural parsing over the masked token stream.
//!
//! The pattern rules of PR 5 see Rust as a flat token sequence, which is
//! enough to ban a call by name but blind to *structure*: they cannot tell
//! a reduction inside a worker closure from one on the parallel chain
//! itself, or a closure parameter from a captured outer binding. This
//! module recovers exactly as much structure as the semantic rules need —
//! no full Rust grammar, just:
//!
//! - [`Tree`] — the nesting of `()`/`[]`/`{}` delimiter groups, tolerant
//!   of unbalanced input (a stray closer is treated as plain punctuation);
//! - [`FnSig`] — every `fn` item's name, parameter names/types and return
//!   type, found positionally (free functions, trait and impl methods all
//!   parse the same way);
//! - [`UseImport`] — flattened `use` declarations, groups and aliases
//!   expanded, so a bare call can be resolved to the path it imports;
//! - [`Closure`] — `|args| body` expressions with their bound parameter
//!   names and body token range, for capture analysis.
//!
//! Everything operates on the *masked* view ([`crate::lexer`]), so
//! structure inside comments and literals does not exist here, and every
//! recovered span maps straight back to source offsets for diagnostics.

use crate::lexer::TokenView;

/// What a [`Node`] is delimited by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelimKind {
    /// The whole file (node 0).
    Root,
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// One delimiter group in the brace tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Delimiter kind.
    pub kind: DelimKind,
    /// Token index of the opener (root: 0).
    pub open: usize,
    /// Token index of the closer (root: one past the last token; an
    /// unclosed group runs to the end of the file).
    pub close: usize,
    /// Parent node id (root points at itself).
    pub parent: usize,
}

/// The delimiter-nesting tree of one file.
#[derive(Debug)]
pub struct Tree {
    nodes: Vec<Node>,
    /// `enclosing[tok]`: the deepest node containing token `tok`. An
    /// opener or closer belongs to the node it delimits.
    enclosing: Vec<usize>,
}

impl Tree {
    /// Build the tree from a token view. Never fails: unmatched closers
    /// stay in their surrounding node, unmatched openers run to EOF.
    pub fn build(tv: &TokenView<'_>) -> Tree {
        let n = tv.toks().len();
        let mut nodes = vec![Node {
            kind: DelimKind::Root,
            open: 0,
            close: n,
            parent: 0,
        }];
        let mut enclosing = Vec::with_capacity(n);
        let mut stack = vec![0usize];
        for i in 0..n {
            let top = *stack.last().unwrap_or(&0);
            match tv.text(i) {
                "(" | "[" | "{" => {
                    let kind = match tv.text(i) {
                        "(" => DelimKind::Paren,
                        "[" => DelimKind::Bracket,
                        _ => DelimKind::Brace,
                    };
                    let id = nodes.len();
                    nodes.push(Node {
                        kind,
                        open: i,
                        close: n,
                        parent: top,
                    });
                    enclosing.push(id);
                    stack.push(id);
                }
                ")" | "]" | "}" => {
                    let kind = match tv.text(i) {
                        ")" => DelimKind::Paren,
                        "]" => DelimKind::Bracket,
                        _ => DelimKind::Brace,
                    };
                    if stack.len() > 1 && nodes[top].kind == kind {
                        nodes[top].close = i;
                        stack.pop();
                    }
                    enclosing.push(top);
                }
                _ => enclosing.push(top),
            }
        }
        Tree { nodes, enclosing }
    }

    /// The node with id `id`.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree just the root (no delimiter groups)?
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The deepest node containing token `tok`.
    pub fn enclosing(&self, tok: usize) -> usize {
        self.enclosing.get(tok).copied().unwrap_or(0)
    }

    /// Is `node` equal to `ancestor` or nested (transitively) inside it?
    pub fn is_within(&self, mut node: usize, ancestor: usize) -> bool {
        loop {
            if node == ancestor {
                return true;
            }
            let parent = self.nodes[node].parent;
            if parent == node {
                return false;
            }
            node = parent;
        }
    }

    /// Token range `[start, end)` of the statement containing `tok`,
    /// bounded by `;` tokens at the same nesting level (and the enclosing
    /// group's delimiters).
    pub fn stmt_range(&self, tv: &TokenView<'_>, tok: usize) -> (usize, usize) {
        let node = self.enclosing(tok);
        let (open, close) = (self.nodes[node].open, self.nodes[node].close);
        let lo = if node == 0 { 0 } else { open + 1 };
        let mut start = lo;
        for m in (lo..tok).rev() {
            if self.enclosing(m) == node && tv.text(m) == ";" {
                start = m + 1;
                break;
            }
        }
        let mut end = close;
        for m in tok + 1..close.min(tv.toks().len()) {
            if self.enclosing(m) == node && tv.text(m) == ";" {
                end = m;
                break;
            }
        }
        (start, end)
    }
}

/// One parameter of a parsed `fn`.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (`mut` and `ref` stripped; `_` and `self` params
    /// are not recorded).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// The annotation's token texts (e.g. `["&", "mut", "f64"]`).
    pub ty: Vec<String>,
}

/// One `fn` item: free function, trait method or impl method alike.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// The function name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Named parameters in order (`self` receivers are skipped, so the
    /// positions line up with call-site argument positions).
    pub params: Vec<Param>,
    /// Return type token texts (empty for `()` / no arrow).
    pub ret: Vec<String>,
    /// The body's brace node, if the item has one (trait declarations
    /// end in `;`).
    pub body: Option<usize>,
}

impl FnSig {
    /// Does the declared return type mention `ident` as a token (e.g.
    /// `Result` in `io::Result<()>`)?
    pub fn returns(&self, ident: &str) -> bool {
        self.ret.iter().any(|t| t == ident)
    }
}

/// Parse every `fn` item out of the token stream.
pub fn parse_fns(tv: &TokenView<'_>, tree: &Tree) -> Vec<FnSig> {
    let n = tv.toks().len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if tv.text(i) != "fn" || i + 1 >= n || !tv.toks()[i + 1].is_ident {
            i += 1;
            continue;
        }
        let fn_node = tree.enclosing(i);
        let name_tok = i + 1;
        // Skip generics between the name and the parameter list.
        let mut j = name_tok + 1;
        if j < n && tv.text(j) == "<" {
            let mut depth = 0usize;
            while j < n {
                match tv.text(j) {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if j >= n || tv.text(j) != "(" {
            i += 1;
            continue;
        }
        let pnode = tree.enclosing(j);
        let params = parse_params(tv, tree, pnode);
        // Return type: `-> T` after the parameter list, up to the body
        // brace, a `;`, or a `where` clause.
        let close = tree.node(pnode).close;
        let mut k = close + 1;
        let mut ret = Vec::new();
        if k + 1 < n && tv.text(k) == "-" && tv.text(k + 1) == ">" {
            k += 2;
            while k < n {
                let e = tree.enclosing(k);
                if e == fn_node && (tv.text(k) == ";" || tv.text(k) == "where") {
                    break;
                }
                if tv.text(k) == "{" && tree.node(e).open == k && tree.node(e).parent == fn_node {
                    break;
                }
                ret.push(tv.text(k).to_string());
                k += 1;
            }
        }
        // The body: the first brace node opening at this level before a `;`.
        let mut body = None;
        while k < n {
            let e = tree.enclosing(k);
            if e == fn_node && tv.text(k) == ";" {
                break;
            }
            if tv.text(k) == "{" && tree.node(e).open == k && tree.node(e).parent == fn_node {
                body = Some(e);
                break;
            }
            k += 1;
        }
        out.push(FnSig {
            name: tv.text(name_tok).to_string(),
            name_tok,
            params,
            ret,
            body,
        });
        i = close + 1;
    }
    out
}

/// Parse the parameters inside paren node `pnode`: comma-separated at the
/// top level, each `pattern: Type`.
fn parse_params(tv: &TokenView<'_>, tree: &Tree, pnode: usize) -> Vec<Param> {
    let (open, close) = (tree.node(pnode).open, tree.node(pnode).close);
    let mut out = Vec::new();
    let mut seg_start = open + 1;
    let mut m = open + 1;
    while m <= close {
        let at_end = m == close;
        if at_end || (tree.enclosing(m) == pnode && tv.text(m) == ",") {
            if let Some(p) = parse_one_param(tv, tree, pnode, seg_start, m) {
                out.push(p);
            }
            seg_start = m + 1;
        }
        m += 1;
    }
    out
}

fn parse_one_param(
    tv: &TokenView<'_>,
    tree: &Tree,
    pnode: usize,
    start: usize,
    end: usize,
) -> Option<Param> {
    // Find the top-level `:` splitting pattern from type.
    let colon = (start..end)
        .find(|&m| tree.enclosing(m) == pnode && tv.text(m) == ":" && tv.text(m + 1) != ":")?;
    // The binding name: the last identifier of the pattern, skipping
    // modifiers. `self` receivers and `_` placeholders are not bindings.
    let name_tok = (start..colon)
        .rev()
        .find(|&m| tv.toks()[m].is_ident && !matches!(tv.text(m), "mut" | "ref"))?;
    let name = tv.text(name_tok);
    if name == "self" || name == "_" {
        return None;
    }
    let ty: Vec<String> = (colon + 1..end).map(|m| tv.text(m).to_string()).collect();
    Some(Param {
        name: name.to_string(),
        tok: name_tok,
        ty,
    })
}

/// One name brought into scope by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The in-scope name (the path's last segment, or the `as` alias).
    pub leaf: String,
    /// The full path segments (aliases do not change this).
    pub path: Vec<String>,
}

impl UseImport {
    /// The `::`-joined path.
    pub fn joined(&self) -> String {
        self.path.join("::")
    }
}

/// Parse every `use` declaration, expanding groups and aliases:
/// `use a::{b, c as d};` yields `b -> a::b` and `d -> a::c`.
pub fn parse_uses(tv: &TokenView<'_>, tree: &Tree) -> Vec<UseImport> {
    let n = tv.toks().len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if tv.text(i) != "use"
            || !tv.toks()[i].is_ident
            || !matches!(
                tree.node(tree.enclosing(i)).kind,
                DelimKind::Root | DelimKind::Brace
            )
        {
            i += 1;
            continue;
        }
        let node = tree.enclosing(i);
        let mut path: Vec<String> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut alias: Option<String> = None;
        let mut glob = false;
        let mut emit = |path: &mut Vec<String>, alias: &mut Option<String>, glob: &mut bool| {
            if !*glob {
                if let Some(last) = path.last() {
                    out.push(UseImport {
                        leaf: alias.take().unwrap_or_else(|| last.clone()),
                        path: path.clone(),
                    });
                }
            }
            *glob = false;
            *alias = None;
        };
        let mut m = i + 1;
        while m < n {
            match tv.text(m) {
                ";" if tree.enclosing(m) == node => {
                    emit(&mut path, &mut alias, &mut glob);
                    break;
                }
                "{" => stack.push(path.len()),
                "," => {
                    emit(&mut path, &mut alias, &mut glob);
                    path.truncate(stack.last().copied().unwrap_or(0));
                }
                "}" => {
                    emit(&mut path, &mut alias, &mut glob);
                    let base = stack.pop().unwrap_or(0);
                    path.truncate(base);
                }
                "*" => glob = true,
                "as" if m + 1 < n && tv.toks()[m + 1].is_ident => {
                    alias = Some(tv.text(m + 1).to_string());
                    m += 1;
                }
                ":" => {}
                t if tv.toks()[m].is_ident => path.push(t.to_string()),
                _ => {}
            }
            m += 1;
        }
        i = m + 1;
    }
    out
}

/// One closure expression: `|params| body` or `move |params| body`.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Token index of the opening `|`.
    pub start: usize,
    /// Names bound by the parameter list (any identifier in a pattern).
    pub params: Vec<String>,
    /// Token range `[from, to)` of the body.
    pub body: (usize, usize),
    /// The node enclosing the opening `|`.
    pub node: usize,
}

impl Closure {
    /// Is token `tok` inside this closure's body?
    pub fn contains(&self, tok: usize) -> bool {
        self.body.0 <= tok && tok < self.body.1
    }
}

/// May a `|` at this position start a closure? (After these tokens a `|`
/// cannot be the binary-or operator.)
fn closure_position(prev: Option<&str>) -> bool {
    matches!(
        prev,
        None | Some("(" | "," | "=" | "{" | ";" | ">" | "move" | "return" | "else")
    )
}

/// Parse every closure expression out of the token stream.
pub fn parse_closures(tv: &TokenView<'_>, tree: &Tree) -> Vec<Closure> {
    let n = tv.toks().len();
    let mut out = Vec::new();
    for i in 0..n {
        if tv.text(i) != "|" || !closure_position((i > 0).then(|| tv.text(i - 1))) {
            continue;
        }
        let node = tree.enclosing(i);
        // The parameter list ends at the next `|` at the same level
        // (`||` is the empty list).
        let params_end = if tv.text(i + 1) == "|" {
            i + 1
        } else {
            match (i + 1..tree.node(node).close.min(n))
                .find(|&m| tree.enclosing(m) == node && tv.text(m) == "|")
            {
                Some(m) => m,
                None => continue, // a lone `|`: binary-or, not a closure
            }
        };
        let params: Vec<String> = (i + 1..params_end)
            .filter(|&m| tv.toks()[m].is_ident && !matches!(tv.text(m), "mut" | "ref"))
            .map(|m| tv.text(m).to_string())
            .collect();
        let body_start = params_end + 1;
        if body_start >= n {
            continue;
        }
        // Brace-bodied closure: the body is exactly the brace node.
        // Expression-bodied: up to the next `,`/`;` at this level or the
        // end of the enclosing group.
        let e = tree.enclosing(body_start);
        let body_end = if tv.text(body_start) == "{" && tree.node(e).open == body_start {
            tree.node(e).close.min(n - 1) + 1
        } else {
            let close = tree.node(node).close.min(n);
            (body_start..close)
                .find(|&m| tree.enclosing(m) == node && matches!(tv.text(m), "," | ";"))
                .unwrap_or(close)
        };
        out.push(Closure {
            start: i,
            params,
            body: (body_start, body_end),
            node,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scan, Scan};

    fn scan_of(src: &str) -> Scan {
        scan(src)
    }

    #[test]
    fn tree_nests_and_recovers() {
        let s = scan_of("fn f(a: u32) { if a > [1][0] { g(a); } }");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        assert!(t.len() > 4);
        // The `g` call's tokens sit inside the `if` brace inside the fn
        // brace inside the root.
        let g = (0..tv.toks().len()).find(|&i| tv.text(i) == "g").unwrap();
        let node = t.enclosing(g);
        assert_eq!(t.node(node).kind, DelimKind::Brace);
        assert!(t.is_within(node, 0));
        assert!(!t.is_empty());
    }

    #[test]
    fn tree_tolerates_unbalanced_input() {
        let s = scan_of("fn f() { ) } ]");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv); // must not panic
        assert!(t.len() >= 2);
    }

    #[test]
    fn fn_signature_with_params_and_ret() {
        let s = scan_of("pub fn budget(eta: f64, loss_db: f64) -> Result<f64, Error> { eta }");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let fns = parse_fns(&tv, &t);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "budget");
        let names: Vec<&str> = fns[0].params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["eta", "loss_db"]);
        assert_eq!(fns[0].params[0].ty, ["f64"]);
        assert!(fns[0].returns("Result"));
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn method_skips_self_receiver() {
        let s = scan_of("impl X { fn eval(&mut self, sat: SatId) -> f64 { 0.0 } }");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let fns = parse_fns(&tv, &t);
        assert_eq!(fns[0].params.len(), 1);
        assert_eq!(fns[0].params[0].name, "sat");
        assert_eq!(fns[0].params[0].ty, ["SatId"]);
    }

    #[test]
    fn generic_fn_and_mut_param() {
        let s = scan_of("fn go<T: Send>(mut acc: Vec<T>, n: usize) {}");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let fns = parse_fns(&tv, &t);
        assert_eq!(fns[0].name, "go");
        assert_eq!(fns[0].params[0].name, "acc");
        assert_eq!(fns[0].params[1].name, "n");
        assert!(fns[0].ret.is_empty());
    }

    #[test]
    fn trait_decl_has_no_body() {
        let s = scan_of("trait T { fn must(&self) -> bool; }");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let fns = parse_fns(&tv, &t);
        assert_eq!(fns[0].name, "must");
        assert!(fns[0].body.is_none());
        assert!(fns[0].returns("bool"));
    }

    #[test]
    fn use_groups_and_aliases_expand() {
        let s = scan_of("use std::fs::{remove_file, rename as mv};\nuse std::io;\n");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let uses = parse_uses(&tv, &t);
        let find = |leaf: &str| uses.iter().find(|u| u.leaf == leaf).map(|u| u.joined());
        assert_eq!(find("remove_file").as_deref(), Some("std::fs::remove_file"));
        assert_eq!(find("mv").as_deref(), Some("std::fs::rename"));
        assert_eq!(find("io").as_deref(), Some("std::io"));
    }

    #[test]
    fn glob_imports_are_skipped() {
        let s = scan_of("use std::collections::*;\n");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        assert!(parse_uses(&tv, &t).is_empty());
    }

    #[test]
    fn closure_params_and_expression_body() {
        let s = scan_of("xs.iter().map(|&x| x + 1).collect::<Vec<_>>();");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let cs = parse_closures(&tv, &t);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].params, ["x"]);
        let (from, to) = cs[0].body;
        let body: Vec<&str> = (from..to).map(|m| tv.text(m)).collect();
        assert_eq!(body, ["x", "+", "1"]);
    }

    #[test]
    fn closure_brace_body_spans_the_block() {
        let s = scan_of("run(|| { a(); b(); });");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let cs = parse_closures(&tv, &t);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].params.is_empty());
        let (from, to) = cs[0].body;
        assert_eq!(tv.text(from), "{");
        assert_eq!(tv.text(to - 1), "}");
    }

    #[test]
    fn binary_or_is_not_a_closure() {
        let s = scan_of("let x = a | b; let y = (flags | mask) != 0;");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        assert!(parse_closures(&tv, &t).is_empty());
    }

    #[test]
    fn or_pattern_in_match_is_not_a_closure() {
        let s = scan_of("match v { Some(1) | None => a(), _ => b() }");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        assert!(parse_closures(&tv, &t).is_empty());
    }

    #[test]
    fn stmt_range_stops_at_semicolons() {
        let s = scan_of("fn f() { a(); let x = b().c(); d(); }");
        let tv = TokenView::new(&s);
        let t = Tree::build(&tv);
        let b = (0..tv.toks().len()).find(|&i| tv.text(i) == "b").unwrap();
        let (from, to) = t.stmt_range(&tv, b);
        let texts: Vec<&str> = (from..to).map(|m| tv.text(m)).collect();
        assert_eq!(texts, ["let", "x", "=", "b", "(", ")", ".", "c", "(", ")"]);
    }
}
