//! A comment/literal-aware scanner for Rust source.
//!
//! The rule engine never matches patterns against raw source text: it
//! matches against the **masked** view this module produces, in which every
//! byte of a comment, string literal, char literal, byte string or raw
//! string is replaced by a space (newlines are preserved, so offsets and
//! line numbers stay valid). A rule pattern therefore cannot fire inside
//! `"call .unwrap() here"` or `// fs::write is banned` — the classic
//! grep-lint false positives — while every byte of actual code survives
//! verbatim.
//!
//! The scanner handles the lexical shapes that break naive maskers:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - string literals with escapes (`"\""`, `"\\"`);
//! - raw strings with arbitrary hash fences (`r"…"`, `r#"…"#`, `br##"…"##`)
//!   — the closing fence must repeat the opening hash count;
//! - char and byte-char literals (`'a'`, `'\''`, `b'\n'`, `'\u{1F600}'`)
//!   distinguished from lifetimes (`'static`, `<'a>`), which are code.
//!
//! Comments are additionally collected verbatim (with their start line) so
//! the pragma layer can parse `// qntn-lint: allow(...)` annotations.

/// One comment captured during scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first byte.
    pub line: usize,
    /// 1-based line of the comment's last byte (differs for block comments).
    pub end_line: usize,
    /// The comment text including its `//` / `/*` delimiters.
    pub text: String,
}

/// The result of scanning one source file.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Same byte length as the input; comment and literal bytes replaced by
    /// spaces (newlines kept), code bytes verbatim.
    pub masked: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (line `n` is `starts[n-1]`).
    line_starts: Vec<usize>,
}

impl Scan {
    /// 1-based (line, column) of a byte offset.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        (line, offset - self.line_starts[line - 1] + 1)
    }

    /// The source line (1-based) containing `offset`, with the original
    /// text of that line taken from `src`.
    pub fn line_text<'a>(&self, src: &'a str, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(src.len(), |&next| next.saturating_sub(1));
        src[start..end].trim_end_matches('\r')
    }

    /// Number of lines scanned. A trailing newline does not open a new
    /// (empty) line: `"a\n"` is one line, `"a\nb"` is two.
    pub fn line_count(&self) -> usize {
        let n = self.line_starts.len();
        if n > 1 && self.line_starts[n - 1] >= self.masked.len() {
            n - 1
        } else {
            n
        }
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scan `src`, producing the masked view and the comment list.
pub fn scan(src: &str) -> Scan {
    let bytes = src.as_bytes();
    let mut masked = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];
    // Running line number of offset `i`, maintained incrementally.
    let mut line = 1usize;

    let mut i = 0;
    // Blank `masked[from..to]` except newlines; count lines passed.
    let blank = |masked: &mut [u8], line: &mut usize, from: usize, to: usize| {
        for b in &mut masked[from..to] {
            if *b == b'\n' {
                *line += 1;
            } else {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_starts.push(i + 1);
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
                blank(&mut masked, &mut line, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                // Track newlines inside while blanking.
                let mut end_line = start_line;
                for b in &mut masked[start..i] {
                    if *b == b'\n' {
                        end_line += 1;
                    } else {
                        *b = b' ';
                    }
                }
                // Re-register the line starts we blanked over.
                for (k, &byte) in bytes[start..i].iter().enumerate() {
                    if byte == b'\n' {
                        line_starts.push(start + k + 1);
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    end_line,
                    text: src[start..i].to_string(),
                });
                line = end_line;
            }
            b'"' => {
                // Plain or raw string: look back over `#` fences for an `r`
                // prefix (possibly `br`). The prefix byte must not be part
                // of a longer identifier.
                let mut fence = 0usize;
                let mut j = i;
                while j > 0 && bytes[j - 1] == b'#' {
                    fence += 1;
                    j -= 1;
                }
                let is_raw = j > 0
                    && bytes[j - 1] == b'r'
                    && (j < 2 || !is_ident_byte(bytes[j - 2]) || bytes[j - 2] == b'b')
                    && !(j >= 2 && bytes[j - 2] == b'b' && j >= 3 && is_ident_byte(bytes[j - 3]));
                let start = i;
                i += 1;
                if is_raw {
                    // Scan for `"` followed by `fence` hashes.
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let close = &bytes[i + 1..];
                            if close.len() >= fence && close[..fence].iter().all(|&c| c == b'#') {
                                i += 1 + fence;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    // Mask the `r##` prefix too, so no stray tokens remain.
                    let prefix = j - 1;
                    blank(&mut masked, &mut line, prefix, start);
                } else {
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i = (i + 2).min(bytes.len()),
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                blank(&mut masked, &mut line, start, i);
                // Line starts inside multi-line strings.
                for (k, &byte) in bytes[start..i].iter().enumerate() {
                    if byte == b'\n' {
                        line_starts.push(start + k + 1);
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime?
                let next = bytes.get(i + 1).copied();
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(c) if c != b'\'' => {
                        let w = utf8_width(c);
                        bytes.get(i + 1 + w) == Some(&b'\'')
                    }
                    _ => false,
                };
                if is_char {
                    let start = i;
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i = (i + 2).min(bytes.len()),
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    blank(&mut masked, &mut line, start, i);
                } else {
                    i += 1; // lifetime tick: stays code
                }
            }
            _ => i += 1,
        }
    }
    Scan {
        masked: String::from_utf8(masked).unwrap_or_default(),
        comments,
        line_starts,
    }
}

#[inline]
pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// One token of the masked code view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// Is this an identifier/number (as opposed to a punctuation byte)?
    pub is_ident: bool,
}

/// Split the masked view into identifier and punctuation tokens.
/// Whitespace separates; every non-identifier byte is its own token.
pub fn tokens(masked: &str) -> Vec<Tok> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(Tok {
                start,
                end: i,
                is_ident: true,
            });
        } else {
            out.push(Tok {
                start: i,
                end: i + 1,
                is_ident: false,
            });
            i += 1;
        }
    }
    out
}

/// A matcher over the token stream. Each pattern element matches exactly
/// one token: an identifier by its text, or a single punctuation byte.
pub struct TokenView<'a> {
    masked: &'a str,
    toks: Vec<Tok>,
}

impl<'a> TokenView<'a> {
    /// Tokenize `scan`'s masked view.
    pub fn new(scan: &'a Scan) -> TokenView<'a> {
        TokenView {
            masked: &scan.masked,
            toks: tokens(&scan.masked),
        }
    }

    /// The token list.
    pub fn toks(&self) -> &[Tok] {
        &self.toks
    }

    /// Text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        let t = self.toks[i];
        &self.masked[t.start..t.end]
    }

    /// Does the pattern match starting at token index `at`?
    pub fn matches_at(&self, at: usize, pattern: &[&str]) -> bool {
        if at + pattern.len() > self.toks.len() {
            return false;
        }
        pattern
            .iter()
            .enumerate()
            .all(|(k, want)| self.text(at + k) == *want)
    }

    /// Byte offsets of every match of `pattern` (offset of the first token).
    pub fn find_all(&self, pattern: &[&str]) -> Vec<usize> {
        (0..self.toks.len())
            .filter(|&i| self.matches_at(i, pattern))
            .map(|i| self.toks[i].start)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        scan(src).masked
    }

    #[test]
    fn plain_code_is_untouched() {
        let src = "fn main() { let x = 1 + 2; }\n";
        assert_eq!(masked(src), src);
    }

    #[test]
    fn masking_preserves_length_and_newlines() {
        let src = "let a = \"two\nlines\"; // c\n/* b\nlock */ let b = 1;\n";
        let m = masked(src);
        assert_eq!(m.len(), src.len());
        let nl = |s: &str| {
            s.bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(nl(&m), nl(src));
    }

    #[test]
    fn line_comment_is_blanked_and_captured() {
        let s = scan("let x = 1; // fs::write here\nlet y = 2;\n");
        assert!(!s.masked.contains("fs::write"));
        assert!(s.masked.contains("let y = 2;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[0].text.contains("fs::write"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a /* one /* two */ still comment */ b\n");
        assert_eq!(s.masked.split_whitespace().collect::<Vec<_>>(), ["a", "b"]);
        assert!(
            !s.masked.contains("still"),
            "nested close ended the comment early"
        );
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn block_comment_line_numbers() {
        let s = scan("/* a\nb\nc */ x\ny\n");
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].end_line, 3);
        let off = s.masked.find('y').unwrap();
        assert_eq!(s.position(off).0, 4);
    }

    #[test]
    fn string_with_escaped_quote() {
        let m = masked(r#"let s = "he said \"unwrap()\""; after();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("after();"));
    }

    #[test]
    fn string_with_escaped_backslash_then_quote() {
        // "\\" ends the string at the second quote; `boom()` is code.
        let m = masked(r#"let s = "\\"; boom();"#);
        assert!(m.contains("boom();"));
    }

    #[test]
    fn raw_string_simple() {
        let m = masked(r###"let s = r"panic!(no escape \ here)"; code();"###);
        assert!(!m.contains("panic"));
        assert!(m.contains("code();"));
    }

    #[test]
    fn raw_string_hash_fences() {
        let m = masked(r####"let s = r#"contains " quote and fs::write"#; tail();"####);
        assert!(!m.contains("fs::write"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn raw_string_double_hash_ignores_single_hash_close() {
        let src = "let s = r##\"has \"# inside\"##; tail();";
        let m = masked(src);
        assert!(!m.contains("inside"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn raw_byte_string() {
        let m = masked(r####"let s = br#"unwrap()"#; tail();"####);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        // `var` ends in `r` but `var"x"` can't lex as a raw string prefix in
        // valid Rust; the scanner must treat the string as plain.
        let m = masked("let x = stringify!(var); let s = \"lit\"; tail();");
        assert!(m.contains("tail();"));
        assert!(!m.contains("lit"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = masked("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(m.contains("<'a>"), "{m}");
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'x'"));
        assert!(!m.contains("'\\''"));
    }

    #[test]
    fn unicode_char_literal() {
        let m = masked("let c = '\u{1F600}'; tail();");
        assert!(!m.contains('\u{1F600}'));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let m = masked(r"let c = '\u{41}'; tail();");
        assert!(!m.contains("41"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn static_lifetime_is_code() {
        let m = masked("static S: &'static str = \"x\"; tail();");
        assert!(m.contains("&'static str"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn string_containing_comment_markers() {
        let m = masked("let s = \"// not a comment /* nope */\"; tail();");
        assert!(m.contains("tail();"));
        assert_eq!(scan("let s = \"// no\"; x();").comments.len(), 0);
    }

    #[test]
    fn comment_containing_quote_does_not_open_string() {
        let m = masked("// it's a contraction\nlet x = 1;\n");
        assert!(m.contains("let x = 1;"));
    }

    #[test]
    fn doc_comment_code_fences_are_masked() {
        let src = "/// ```\n/// g.set_edge(0, 1, 0.5);\n/// ```\nfn f() {}\n";
        let m = masked(src);
        assert!(!m.contains("set_edge"));
        assert!(m.contains("fn f() {}"));
    }

    #[test]
    fn position_maps_offsets_to_lines() {
        let s = scan("abc\ndef\nghi\n");
        assert_eq!(s.position(0), (1, 1));
        assert_eq!(s.position(4), (2, 1));
        assert_eq!(s.position(6), (2, 3));
        assert_eq!(s.position(8), (3, 1));
        assert_eq!(s.line_count(), 3); // a trailing newline opens no line 4
    }

    #[test]
    fn line_text_returns_original_source() {
        let src = "let a = 1;\nlet b = \"lit\";\n";
        let s = scan(src);
        assert_eq!(s.line_text(src, 2), "let b = \"lit\";");
    }

    #[test]
    fn token_matching_distinguishes_unwrap_from_unwrap_or() {
        let s = scan("a.unwrap_or(0); b.unwrap();");
        let tv = TokenView::new(&s);
        let hits = tv.find_all(&[".", "unwrap", "(", ")"]);
        assert_eq!(hits.len(), 1);
        let (line, _) = s.position(hits[0]);
        assert_eq!(line, 1);
        assert!(tv.find_all(&[".", "unwrap_or", "("]).len() == 1);
    }

    #[test]
    fn token_matching_spans_whitespace() {
        let s = scan("std :: fs\n    ::write(path, bytes);");
        let tv = TokenView::new(&s);
        assert_eq!(tv.find_all(&["fs", ":", ":", "write"]).len(), 1);
    }

    #[test]
    fn no_match_inside_masked_literal() {
        let s = scan("let s = \"std::fs::write\"; // fs::write\n");
        let tv = TokenView::new(&s);
        assert!(tv.find_all(&["fs", ":", ":", "write"]).is_empty());
    }
}
