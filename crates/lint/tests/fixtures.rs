//! Fixture-tree tests: every rule has a positive case (the `bad_tree`
//! mini-workspace trips it with the exact file/line) and a negative case
//! (the `clean_tree` mini-workspace exercises the same shapes — pipeline
//! exemption, `#[cfg(test)]` gating, reasoned pragmas, dev-dependencies —
//! and comes back clean). A final test holds the real workspace itself to
//! the lint-clean bar.

use qntn_lint::{lint_source, lint_workspace, Diagnostic};
use std::path::{Path, PathBuf};

fn fixture(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

fn lint_fixture(tree: &str) -> Vec<Diagnostic> {
    lint_workspace(&fixture(tree)).expect("fixture tree readable")
}

fn rule_hits<'d>(diags: &'d [Diagnostic], rule: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

#[test]
fn bad_tree_trips_single_materializer_outside_pipeline() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "single-materializer");
    assert_eq!(hits.len(), 5, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/net/src/somefile.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![5, 6, 10, 11, 12]);
    assert!(hits[0].snippet.contains("set_edge"));
    assert!(hits[1].snippet.contains("remove_edge"));
    assert!(hits[2].snippet.contains("begin_layer"));
    assert!(hits[3].snippet.contains("push_link"));
    assert!(hits[4].snippet.contains("push_hold"));
}

#[test]
fn bad_tree_trips_determinism_in_hot_path() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "determinism");
    // One wall-clock read plus three HashMap tokens (use + type + ctor).
    assert_eq!(hits.len(), 4, "{diags:#?}");
    assert!(hits
        .iter()
        .all(|d| d.file == "crates/net/src/sweep_engine.rs"));
    assert!(hits.iter().any(|d| d.snippet.contains("Instant::now")));
}

#[test]
fn bad_tree_trips_atomic_writes_only() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "atomic-writes-only");
    assert_eq!(hits.len(), 2, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/common/src/io.rs"));
    assert!(hits.iter().any(|d| d.snippet.contains("fs::write")));
    assert!(hits.iter().any(|d| d.snippet.contains("File::create")));
}

#[test]
fn bad_tree_trips_no_panic_bins() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "no-panic-bins");
    assert_eq!(hits.len(), 3, "{diags:#?}");
    assert!(hits
        .iter()
        .all(|d| d.file == "crates/bench/src/bin/tool.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![6, 7, 8], "unwrap, expect, panic! in order");
}

#[test]
fn bad_tree_trips_layering() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "layering");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    assert_eq!(hits[0].file, "crates/geo/Cargo.toml");
    assert_eq!(hits[0].line, 8);
    assert!(hits[0].message.contains("layering violation"));
    assert!(hits[0].snippet.contains("qntn-net"));
}

#[test]
fn bad_tree_reports_malformed_pragmas() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "bad-pragma");
    assert_eq!(hits.len(), 3, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/net/src/pragmas.rs"));
    assert!(hits.iter().any(|d| d.message.contains("no-such-rule")));
    // An unknown rule from the semantic set (a typo of `unit-safety`)
    // surfaces instead of silently disarming nothing.
    assert!(hits.iter().any(|d| d.message.contains("unit-safty")));
}

#[test]
fn bad_tree_trips_unit_safety_on_every_mixing_shape() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "unit-safety");
    assert_eq!(hits.len(), 4, "{diags:#?}");
    assert!(hits
        .iter()
        .all(|d| d.file == "crates/channel/src/budget.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![9, 10, 11, 12]);
    assert!(hits[0].message.contains("multiplied with eta"));
    assert!(hits[1].message.contains("initialized from a dB source"));
    assert!(hits[2].message.contains("aliases an eta value"));
    assert!(hits[3].message.contains("passed to eta parameter"));
}

#[test]
fn bad_tree_trips_typed_index_across_families() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "typed-index");
    assert_eq!(hits.len(), 2, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/net/src/indexing.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![7, 12]);
    assert!(hits[0].message.contains("`hosts` is Host-keyed"));
    assert!(hits[1].message.contains("`step` is a Step index"));
}

#[test]
fn bad_tree_trips_float_reduction_on_the_parallel_chain() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "float-reduction");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    assert_eq!(hits[0].file, "crates/net/src/sweep_engine.rs");
    assert_eq!(hits[0].line, 15);
    assert!(hits[0].message.contains("`.sum()` after `par_iter`"));
}

#[test]
fn bad_tree_trips_rayon_capture_on_both_shapes() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "rayon-capture");
    assert_eq!(hits.len(), 2, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/net/src/parallel.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![8, 14]);
    assert!(hits[0]
        .message
        .contains("`&mut acc` captures an outer binding"));
    assert!(hits[1].message.contains("`hits` is a RefCell/Cell"));
}

#[test]
fn bad_tree_trips_result_swallow_on_every_discard_shape() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "result-swallow");
    assert_eq!(hits.len(), 3, "{diags:#?}");
    assert!(hits
        .iter()
        .all(|d| d.file == "crates/common/src/cleanup.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![11, 12, 13]);
    assert!(hits[0].message.contains("std::fs::remove_file"));
    assert!(hits[1].message.contains("imported std fs call"));
    assert!(hits[2].message.contains("same-file Result"));
}

#[test]
fn bad_tree_total_is_every_expected_violation_and_nothing_else() {
    let diags = lint_fixture("bad_tree");
    assert_eq!(diags.len(), 30, "{diags:#?}");
}

#[test]
fn diagnostics_are_globally_sorted_by_file_line_col_rule() {
    let diags = lint_fixture("bad_tree");
    let keys: Vec<(&str, usize, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.col, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "output order must be (file, line, col, rule)");
    // Spot-pin the cross-file order: bench < channel < common < geo < net.
    let files: Vec<&str> = diags.iter().map(|d| d.file.as_str()).collect();
    let first_of = |prefix: &str| files.iter().position(|f| f.starts_with(prefix)).unwrap();
    assert!(first_of("crates/bench/") < first_of("crates/channel/"));
    assert!(first_of("crates/channel/") < first_of("crates/common/"));
    assert!(first_of("crates/common/") < first_of("crates/geo/"));
    assert!(first_of("crates/geo/") < first_of("crates/net/"));
}

#[test]
fn clean_tree_is_clean() {
    let diags = lint_fixture("clean_tree");
    assert!(
        diags.is_empty(),
        "clean fixture tree must produce no diagnostics: {diags:#?}"
    );
}

#[test]
fn clean_tree_counts_its_pragma_suppressions_exactly() {
    let outcome =
        qntn_lint::lint_workspace_outcome(&fixture("clean_tree")).expect("fixture tree readable");
    assert!(outcome.diags.is_empty());
    // 3 HashMap tokens behind the runtime.rs allow-file, 1 Instant::now
    // behind the pipeline.rs trailing pragma, 1 fs::write in other.rs,
    // 1 panic! in the tool.rs bin — nothing silently ignored.
    assert_eq!(outcome.suppressed, 6);
}

#[test]
fn file_scope_pragma_works_after_an_attribute_header() {
    // The runtime.rs fixture opens with `#![allow(dead_code)]` before the
    // `allow-file` pragma; the pragma must still disarm the whole file.
    let src = std::fs::read_to_string(fixture("clean_tree").join("crates/net/src/runtime.rs"))
        .expect("fixture file");
    assert!(
        src.starts_with("#!["),
        "fixture must open with an attribute"
    );
    let diags = lint_source("crates/net/src/runtime.rs", &src);
    assert!(diags.is_empty(), "{diags:#?}");
    // Without the pragma line, the same file trips `determinism` on all
    // three HashMap tokens.
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("qntn-lint:"))
        .map(|l| format!("{l}\n"))
        .collect();
    let diags = lint_source("crates/net/src/runtime.rs", &stripped);
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn same_line_pragma_suppresses_the_violation_on_its_own_line() {
    let rel = "crates/net/src/pipeline.rs";
    let bad = "pub fn f() -> f64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_secs_f64()\n}\n";
    assert_eq!(lint_source(rel, bad).len(), 1);
    let ok = "pub fn f() -> f64 {\n    let t = std::time::Instant::now(); // qntn-lint: allow(determinism) -- timing reported, not folded in\n    t.elapsed().as_secs_f64()\n}\n";
    assert!(lint_source(rel, ok).is_empty());
}

#[test]
fn semantic_rules_accept_pragma_suppression() {
    let rel = "crates/channel/src/budget.rs";
    let bad = "pub fn f(loss_db: f64, eta: f64) -> f64 {\n    loss_db * eta\n}\n";
    assert_eq!(lint_source(rel, bad).len(), 1);
    let ok = "pub fn f(loss_db: f64, eta: f64) -> f64 {\n    // qntn-lint: allow(unit-safety) -- fixture: deliberate raw product\n    loss_db * eta\n}\n";
    assert!(lint_source(rel, ok).is_empty());
}

/// The acceptance bar of this PR: the real workspace itself is lint-clean.
#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let diags = lint_workspace(&root).expect("workspace readable");
    assert!(diags.is_empty(), "workspace has violations: {diags:#?}");
}
