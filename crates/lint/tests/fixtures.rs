//! Fixture-tree tests: every rule has a positive case (the `bad_tree`
//! mini-workspace trips it with the exact file/line) and a negative case
//! (the `clean_tree` mini-workspace exercises the same shapes — pipeline
//! exemption, `#[cfg(test)]` gating, reasoned pragmas, dev-dependencies —
//! and comes back clean). A final test holds the real workspace itself to
//! the lint-clean bar.

use qntn_lint::{lint_workspace, Diagnostic};
use std::path::{Path, PathBuf};

fn fixture(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

fn lint_fixture(tree: &str) -> Vec<Diagnostic> {
    lint_workspace(&fixture(tree)).expect("fixture tree readable")
}

fn rule_hits<'d>(diags: &'d [Diagnostic], rule: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

#[test]
fn bad_tree_trips_single_materializer_outside_pipeline() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "single-materializer");
    assert_eq!(hits.len(), 5, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/net/src/somefile.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![5, 6, 10, 11, 12]);
    assert!(hits[0].snippet.contains("set_edge"));
    assert!(hits[1].snippet.contains("remove_edge"));
    assert!(hits[2].snippet.contains("begin_layer"));
    assert!(hits[3].snippet.contains("push_link"));
    assert!(hits[4].snippet.contains("push_hold"));
}

#[test]
fn bad_tree_trips_determinism_in_hot_path() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "determinism");
    // One wall-clock read plus three HashMap tokens (use + type + ctor).
    assert_eq!(hits.len(), 4, "{diags:#?}");
    assert!(hits
        .iter()
        .all(|d| d.file == "crates/net/src/sweep_engine.rs"));
    assert!(hits.iter().any(|d| d.snippet.contains("Instant::now")));
}

#[test]
fn bad_tree_trips_atomic_writes_only() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "atomic-writes-only");
    assert_eq!(hits.len(), 2, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/common/src/io.rs"));
    assert!(hits.iter().any(|d| d.snippet.contains("fs::write")));
    assert!(hits.iter().any(|d| d.snippet.contains("File::create")));
}

#[test]
fn bad_tree_trips_no_panic_bins() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "no-panic-bins");
    assert_eq!(hits.len(), 3, "{diags:#?}");
    assert!(hits
        .iter()
        .all(|d| d.file == "crates/bench/src/bin/tool.rs"));
    let lines: Vec<usize> = hits.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![6, 7, 8], "unwrap, expect, panic! in order");
}

#[test]
fn bad_tree_trips_layering() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "layering");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    assert_eq!(hits[0].file, "crates/geo/Cargo.toml");
    assert_eq!(hits[0].line, 8);
    assert!(hits[0].message.contains("layering violation"));
    assert!(hits[0].snippet.contains("qntn-net"));
}

#[test]
fn bad_tree_reports_malformed_pragmas() {
    let diags = lint_fixture("bad_tree");
    let hits = rule_hits(&diags, "bad-pragma");
    assert_eq!(hits.len(), 2, "{diags:#?}");
    assert!(hits.iter().all(|d| d.file == "crates/net/src/pragmas.rs"));
    assert!(hits.iter().any(|d| d.message.contains("no-such-rule")));
}

#[test]
fn bad_tree_total_is_every_expected_violation_and_nothing_else() {
    let diags = lint_fixture("bad_tree");
    assert_eq!(diags.len(), 17, "{diags:#?}");
}

#[test]
fn clean_tree_is_clean() {
    let diags = lint_fixture("clean_tree");
    assert!(
        diags.is_empty(),
        "clean fixture tree must produce no diagnostics: {diags:#?}"
    );
}

/// The acceptance bar of this PR: the real workspace itself is lint-clean.
#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let diags = lint_workspace(&root).expect("workspace readable");
    assert!(diags.is_empty(), "workspace has violations: {diags:#?}");
}
