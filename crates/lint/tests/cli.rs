//! Process-boundary tests for the `qntn-lint` binary: exit codes (0 clean,
//! 1 violations, 2 usage errors), the machine-readable
//! `file:line:col: [rule-id]` diagnostic format, `--list-rules`, `--help`,
//! and `--root`. Cargo exposes the built binary via
//! `CARGO_BIN_EXE_qntn-lint`, so these run the exact bits `cargo lint`
//! would.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn qntn_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qntn-lint"))
        .args(args)
        .output()
        .expect("failed to spawn qntn-lint")
}

fn fixture(tree: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
        .to_string_lossy()
        .into_owned()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn clean_tree_exits_zero_and_says_clean() {
    let out = qntn_lint(&["--root", &fixture("clean_tree")]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("qntn-lint: clean"), "{stdout}");
}

#[test]
fn bad_tree_exits_one_with_machine_readable_diagnostics() {
    let out = qntn_lint(&["--root", &fixture("bad_tree")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // file:line:col: [rule-id] message — the contract scripts grep on.
    assert!(
        stdout.contains("crates/bench/src/bin/tool.rs:6:"),
        "{stdout}"
    );
    for rule in [
        "[single-materializer]",
        "[atomic-writes-only]",
        "[no-panic-bins]",
        "[determinism]",
        "[layering]",
        "[bad-pragma]",
        "[unit-safety]",
        "[typed-index]",
        "[float-reduction]",
        "[rayon-capture]",
        "[result-swallow]",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
    assert!(stdout.contains("violation(s)"), "{stdout}");
}

#[test]
fn real_workspace_exits_zero() {
    let root = workspace_root();
    let out = qntn_lint(&["--root", root.to_str().expect("utf-8 root")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not lint-clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn list_rules_prints_all_ten_ids_with_descriptions() {
    let out = qntn_lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "single-materializer",
        "atomic-writes-only",
        "no-panic-bins",
        "determinism",
        "layering",
        "unit-safety",
        "typed-index",
        "float-reduction",
        "rayon-capture",
        "result-swallow",
    ] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(&format!("{rule}  ")))
            .unwrap_or_else(|| panic!("missing {rule}: {stdout}"));
        assert!(
            line.len() > rule.len() + 2,
            "{rule} has no description: {line}"
        );
    }
    assert_eq!(stdout.lines().count(), 10, "{stdout}");
}

#[test]
fn help_documents_flags_and_pragma() {
    let out = qntn_lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--root",
        "--list-rules",
        "--format",
        "--out",
        "qntn-lint: allow(",
        "unit-safety",
        "typed-index",
        "float-reduction",
        "rayon-capture",
        "result-swallow",
    ] {
        assert!(stdout.contains(needle), "help lacks `{needle}`: {stdout}");
    }
}

#[test]
fn json_format_is_byte_stable_across_runs() {
    let root = fixture("bad_tree");
    let one = qntn_lint(&["--root", &root, "--format", "json"]);
    let two = qntn_lint(&["--root", &root, "--format", "json"]);
    assert_eq!(one.status.code(), Some(1));
    assert_eq!(
        one.stdout, two.stdout,
        "JSON output must be byte-identical across consecutive runs"
    );
    let text = String::from_utf8_lossy(&one.stdout);
    assert!(text.contains("\"tool\": \"qntn-lint\""), "{text}");
    assert!(text.contains("\"rule_count\": 10"), "{text}");
    assert!(text.contains("\"violation_count\": 30"), "{text}");
    assert!(text.contains("\"rule\": \"unit-safety\""), "{text}");
}

#[test]
fn json_reports_pragma_suppressed_count() {
    let out = qntn_lint(&["--root", &fixture("clean_tree"), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"violation_count\": 0"), "{text}");
    assert!(text.contains("\"suppressed\": 6"), "{text}");
    assert!(text.contains("\"violations\": []"), "{text}");
}

#[test]
fn out_flag_writes_the_report_to_disk() {
    let dir = std::env::temp_dir().join(format!("qntn-lint-out-{}", std::process::id()));
    let path = dir.join("lint.json");
    let out = qntn_lint(&[
        "--root",
        &fixture("clean_tree"),
        "--format",
        "json",
        "--out",
        path.to_str().expect("utf-8 tmp path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let written = std::fs::read(&path).expect("--out file written");
    assert_eq!(
        written, out.stdout,
        "file contents match the printed report"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn bad_format_value_exits_two() {
    let out = qntn_lint(&["--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown format"), "{stderr}");
}

#[test]
fn unknown_flag_exits_two_with_usage() {
    let out = qntn_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "{stderr}");
    assert!(stderr.contains("--list-rules"), "usage follows the error");
}

#[test]
fn root_flag_without_value_exits_two() {
    let out = qntn_lint(&["--root"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--root needs a value"), "{stderr}");
}

#[test]
fn missing_root_directory_exits_two() {
    let out = qntn_lint(&["--root", "/no/such/dir/anywhere"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}
