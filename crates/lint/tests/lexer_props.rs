//! Property tests over the lint lexer: masking never changes a file's
//! geometry (byte length, newline offsets), banned patterns embedded in
//! any comment/string/raw-string wrapper never fire a rule, and the same
//! patterns in code position always fire — at the right line — no matter
//! how much benign padding precedes them.
//!
//! Inputs are assembled from integer choices over fixed fragment pools
//! (the vendored proptest has no string strategies). Nightly CI deepens
//! every block with `PROPTEST_CASES=2048`.

use proptest::prelude::*;
use qntn_lint::{lexer, lint_source};

/// `ProptestConfig` with `n` cases, overridable via `PROPTEST_CASES`.
fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

/// Source fragments covering every lexer regime: comments (line, block,
/// nested), strings with escapes, raw strings, char literals, lifetimes,
/// plus code that legitimately tokenizes.
const FRAGMENTS: &[&str] = &[
    "fn f() {}\n",
    "// line comment with .unwrap() inside\n",
    "/* block panic!(oops) */",
    "/* nested /* fs::write */ still */",
    "let s = \"literal .expect(\\\"y\\\") text\";\n",
    "let r = r#\"raw File::create body\"#;\n",
    "let c = 'x';\n",
    "let q = '\\'';\n",
    "let lt: &'static str = \"s\";\n",
    "call_unwrap_or_default();\n",
    "\n",
    "let n = 42;\n",
];

/// Quote-free banned payloads (safe to embed in any wrapper).
const PAYLOADS: &[&str] = &[
    ".unwrap()",
    ".expect(msg)",
    "panic!(oops)",
    "todo!()",
    "fs::write(p, b)",
    "File::create(p)",
    "OpenOptions::new()",
    "Instant::now()",
    "SystemTime::now()",
    "HashMap::new()",
    "HashSet::new()",
    "thread_rng()",
    ".set_edge(0, 1, 0.5)",
    ".remove_edge(0, 1)",
];

fn assemble(picks: &[u32]) -> String {
    picks
        .iter()
        .map(|&p| FRAGMENTS[p as usize % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #![proptest_config(cases_or(64))]

    #[test]
    fn masking_preserves_length_and_newlines(
        picks in prop::collection::vec(any::<u32>(), 0usize..40),
    ) {
        let src = assemble(&picks);
        let scan = lexer::scan(&src);
        prop_assert_eq!(scan.masked.len(), src.len(), "masking changed length");
        let newlines = |s: &str| -> Vec<usize> {
            s.bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i)
                .collect()
        };
        prop_assert_eq!(newlines(&src), newlines(&scan.masked));
    }

    #[test]
    fn arbitrary_fragment_streams_never_false_positive(
        picks in prop::collection::vec(any::<u32>(), 0usize..40),
    ) {
        // Every fragment is benign (banned spellings appear only inside
        // comments/literals), so no composition of them may fire a rule —
        // in a bin path, a hot path, or a plain library path.
        let src = assemble(&picks);
        for rel in [
            "crates/bench/src/bin/tool.rs",
            "crates/net/src/sweep_engine.rs",
            "crates/net/src/scene.rs",
        ] {
            let diags = lint_source(rel, &src);
            prop_assert!(diags.is_empty(), "{rel}: {diags:#?}\nsource:\n{src}");
        }
    }

    #[test]
    fn banned_patterns_inside_wrappers_never_fire(
        payload_idx in any::<u32>(),
        wrapper_idx in any::<u32>(),
        pad in prop::collection::vec(any::<u32>(), 0usize..6),
    ) {
        let payload = PAYLOADS[payload_idx as usize % PAYLOADS.len()];
        let wrapped = match wrapper_idx % 5 {
            0 => format!("    // {payload}\n"),
            1 => format!("    /* {payload} */\n"),
            2 => format!("    let s = \"{payload}\";\n"),
            3 => format!("    let r = r#\"{payload}\"#;\n"),
            _ => format!("    /* outer /* {payload} */ nested */\n"),
        };
        let padding = assemble(&pad);
        let src = format!("{padding}fn live() {{\n{wrapped}}}\n");
        for rel in [
            "crates/bench/src/bin/tool.rs",
            "crates/net/src/sweep_engine.rs",
        ] {
            let diags = lint_source(rel, &src);
            prop_assert!(
                diags.is_empty(),
                "{rel}: `{payload}` fired through a wrapper: {diags:#?}"
            );
        }
    }

    #[test]
    fn banned_patterns_in_code_fire_at_the_right_line(
        case_idx in any::<u32>(),
        pad_lines in 0usize..12,
    ) {
        // (statement, path it violates under, rule expected to fire)
        const CASES: &[(&str, &str, &str)] = &[
            ("x.unwrap();", "crates/bench/src/bin/tool.rs", "no-panic-bins"),
            ("panic!(\"boom\");", "crates/bench/src/bin/tool.rs", "no-panic-bins"),
            (
                "let t = std::time::Instant::now();",
                "crates/net/src/sweep_engine.rs",
                "determinism",
            ),
            (
                "let m = std::collections::HashMap::<u32, u32>::new();",
                "crates/net/src/pipeline.rs",
                "determinism",
            ),
            (
                "g.set_edge(0, 1, 0.5);",
                "crates/net/src/scene.rs",
                "single-materializer",
            ),
            (
                "std::fs::write(p, b).ok();",
                "crates/core/src/report.rs",
                "atomic-writes-only",
            ),
        ];
        let (stmt, rel, rule) = CASES[case_idx as usize % CASES.len()];
        let padding: String = "// benign padding line\n".repeat(pad_lines);
        let src = format!("{padding}fn live() {{\n    {stmt}\n}}\n");
        let expected_line = pad_lines + 2;
        let diags = lint_source(rel, &src);
        prop_assert!(
            diags.iter().any(|d| d.rule == rule && d.line == expected_line),
            "{rel}: `{stmt}` did not fire {rule} at line {expected_line}: {diags:#?}"
        );
    }
}
