//! Fixture: a binary whose only panic is excused with a reasoned pragma
//! and whose unwraps live in test code.

fn main() {
    // qntn-lint: allow(no-panic-bins) -- crash-injection knob panics by design
    panic!("injected");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
