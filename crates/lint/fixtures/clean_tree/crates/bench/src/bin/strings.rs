//! Fixture: banned patterns inside comments and literals are inert.

/// Documentation may say `.unwrap()` or `panic!` freely, and show
/// `fs::write(path, bytes)` in examples.
fn main() {
    let doc = "call .unwrap() then panic!(oops)";
    let raw = r#"fs::write and File::create in a raw string"#;
    /* a block comment mentioning .expect(x) and todo!() */
    println!("{doc} {raw}");
}
