//! Fixture: Result values handled, propagated or explicitly waved off.
//! `result-swallow` must stay quiet on every call below.

use std::fs::remove_file;

pub fn cleanup(path: &std::path::Path) -> std::io::Result<()> {
    remove_file(path)
}

pub fn tidy(path: &std::path::Path) -> std::io::Result<()> {
    cleanup(path)?;
    remove_file(path).ok();
    Ok(())
}
