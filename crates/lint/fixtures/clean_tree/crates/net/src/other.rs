//! Fixture: excused and test-gated sites the linter must accept.

pub fn scratch(path: &std::path::Path) {
    // qntn-lint: allow(atomic-writes-only) -- fixture helper writes a scratch file on purpose
    let _ = std::fs::write(path, b"x");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_build_ad_hoc_graphs() {
        let mut g = qntn_routing::Graph::with_nodes(2);
        g.set_edge(0, 1, 1.0);
    }
}
