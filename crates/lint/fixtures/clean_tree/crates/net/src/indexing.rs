//! Fixture: typed indexing done right — same family, or an explicit cast.
//! `typed-index` must stay quiet on both sites.

use qntn_common::{HostId, SatId};

pub fn same_family(hosts: &[f64], h: HostId) -> f64 {
    hosts[h]
}

pub fn explicit_cast(host_windows: &[u32], sat: SatId) -> u32 {
    host_windows[sat.index()]
}
