//! Fixture: a deterministic hot path — ordered storage in live code,
//! hash maps only inside `#[cfg(test)]`.

use std::collections::BTreeMap;

pub fn sweep() -> f64 {
    let m: BTreeMap<u32, f64> = BTreeMap::new();
    m.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn analysis_maps_are_fine_in_tests() {
        let _ = HashMap::<u32, u32>::new();
    }
}

pub fn map_steps(chunks: &[Vec<u32>]) -> Vec<Vec<f64>> {
    chunks
        .par_iter()
        .map(|chunk| {
            let mut scratch = 0.0;
            chunk.iter().map(|&step| eval(&mut scratch, step)).collect()
        })
        .collect()
}

pub fn par_total(chunks: &[Vec<f64>]) -> f64 {
    let partials: Vec<f64> = chunks
        .par_iter()
        .map(|chunk| chunk.iter().map(|&x| x * 2.0).sum::<f64>())
        .collect();
    partials.iter().sum()
}
