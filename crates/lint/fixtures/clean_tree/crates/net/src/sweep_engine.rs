//! Fixture: a deterministic hot path — ordered storage in live code,
//! hash maps only inside `#[cfg(test)]`.

use std::collections::BTreeMap;

pub fn sweep() -> f64 {
    let m: BTreeMap<u32, f64> = BTreeMap::new();
    m.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn analysis_maps_are_fine_in_tests() {
        let _ = HashMap::<u32, u32>::new();
    }
}
