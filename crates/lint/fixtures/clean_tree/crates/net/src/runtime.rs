#![allow(dead_code)]
// qntn-lint: allow-file(determinism) -- fixture: census maps are analysis-side, not part of the bit-deterministic sweep output
use std::collections::HashMap;

pub fn census() -> HashMap<u32, u32> {
    HashMap::new()
}
