//! Fixture: the one legitimate materializer — `single-materializer`
//! exempts this exact path.

pub fn build_topology_into(g: &mut qntn_routing::Graph) {
    g.set_edge(0, 1, 0.5);
    g.remove_edge(1, 2);
}

pub fn build_time_expanded_into(t: &mut qntn_routing::TimeExpandedGraph) {
    t.begin_layer();
    t.push_link(0, 1, 0.5);
    t.push_hold(0, 0.9);
}

pub fn stamp_setup() -> f64 {
    let t = std::time::Instant::now(); // qntn-lint: allow(determinism) -- setup timing is reported separately, never folded into sweep results
    t.elapsed().as_secs_f64()
}
