//! Fixture: legal dB <-> eta crossings through the conversion helpers.
//! `unit-safety` must stay quiet on every line below.

pub fn couple(eta: f64) -> f64 {
    eta
}

pub fn convert(loss_db: f64) -> f64 {
    let eta = db_to_linear(-loss_db);
    let total_db = linear_to_db(eta);
    couple(eta) + total_db
}
