//! Fixture: a second per-step materializer outside the pipeline module.
//! Both edge mutations below must be flagged by `single-materializer`.

pub fn rebuild(g: &mut qntn_routing::Graph) {
    g.set_edge(0, 1, 0.5);
    g.remove_edge(0, 1);
}

pub fn rebuild_time_expanded(t: &mut qntn_routing::TimeExpandedGraph) {
    t.begin_layer();
    t.push_link(0, 1, 0.5);
    t.push_hold(0, 0.9);
}
