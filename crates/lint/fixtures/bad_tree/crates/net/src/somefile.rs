//! Fixture: a second per-step materializer outside the pipeline module.
//! Both edge mutations below must be flagged by `single-materializer`.

pub fn rebuild(g: &mut qntn_routing::Graph) {
    g.set_edge(0, 1, 0.5);
    g.remove_edge(0, 1);
}
