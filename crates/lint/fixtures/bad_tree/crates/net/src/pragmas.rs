//! Fixture: malformed pragmas. Both must surface as `bad-pragma`.

// qntn-lint: allow(no-such-rule) -- the rule id does not exist
// qntn-lint: allow(determinism)
pub fn noop() {}

// qntn-lint: allow(unit-safty) -- typo of a semantic rule id
