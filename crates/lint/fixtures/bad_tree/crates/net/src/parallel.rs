//! Fixture: par_* closures capturing forbidden outer state.
//! `rayon-capture` must flag the `&mut` capture and the RefCell capture.

use std::cell::RefCell;

pub fn bad_accumulate(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    xs.par_iter().for_each(|x| add(&mut acc, *x));
    acc
}

pub fn bad_census(xs: &[f64]) -> usize {
    let hits = RefCell::new(0usize);
    xs.par_iter().for_each(|_x| bump(&hits));
    *hits.borrow()
}
