//! Fixture: nondeterminism in a sweep hot path.
//! `determinism` must flag the wall-clock read and every `HashMap` token.

use std::collections::HashMap;
use std::time::Instant;

pub fn sweep() -> f64 {
    let t = Instant::now();
    let m: HashMap<u32, f64> = HashMap::new();
    let s: f64 = m.values().sum();
    s + t.elapsed().as_secs_f64()
}

pub fn par_total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x + 1.0).sum::<f64>()
}
