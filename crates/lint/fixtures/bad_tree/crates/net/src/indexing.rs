//! Fixture: typed index families crossing without an `.index()` cast.
//! `typed-index` must flag both indexing sites.

use qntn_common::{SatId, StepId};

pub fn pick(hosts: &[f64], sat: SatId) -> f64 {
    hosts[sat]
}

pub fn window(host_windows: &[u32]) -> u32 {
    let step = StepId(3);
    host_windows[step]
}
