//! Fixture: dB values leaking into linear-eta expressions.
//! `unit-safety` must flag all four mixing sites in `mix`.

pub fn couple(eta: f64) -> f64 {
    eta
}

pub fn mix(loss_db: f64, eta: f64) -> f64 {
    let bad_product = loss_db * eta;
    let eta_total = linear_to_db(eta);
    let span_db = eta;
    let coupled = couple(loss_db);
    bad_product + eta_total + span_db + coupled
}
