//! Fixture: silently discarded Result-returning calls.
//! `result-swallow` must flag all three discards in `sloppy`.

use std::fs::remove_file;

pub fn cleanup(path: &std::path::Path) -> std::io::Result<()> {
    remove_file(path)
}

pub fn sloppy(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let _ = remove_file(path);
    cleanup(path);
}
