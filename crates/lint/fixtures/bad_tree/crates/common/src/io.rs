//! Fixture: direct artifact writes bypassing `atomic_write`.
//! Both calls below must be flagged by `atomic-writes-only`.

use std::fs;

pub fn dump(path: &std::path::Path, bytes: &[u8]) {
    let _ = fs::write(path, bytes);
    let _ = std::fs::File::create(path);
}
