//! Fixture: a panicking binary. All three sites below must be flagged by
//! `no-panic-bins`.

fn main() {
    let v: Option<u32> = None;
    v.unwrap();
    let _ = v.expect("boom");
    panic!("bad");
}
