//! CLI contract tests for the `reproduce` binary: argument validation
//! (unknown artifacts and flags are rejected with the usage text and exit
//! code 2), the `--no-parallel` escape hatch, and the `faults` artifact.
//!
//! Cargo builds the binary and exposes its path via
//! `CARGO_BIN_EXE_reproduce`, so these run on the exact bits `cargo run`
//! would use.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("failed to spawn reproduce")
}

#[test]
fn unknown_artifact_is_rejected_with_usage() {
    let out = reproduce(&["no-such-artifact"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact"), "{stderr}");
    assert!(stderr.contains("`no-such-artifact`"), "{stderr}");
    assert!(
        stderr.contains("reproduce [artifact]"),
        "usage follows the error"
    );
    assert!(stderr.contains("faults"), "usage lists the faults artifact");
}

#[test]
fn unknown_flag_is_rejected_with_usage() {
    let out = reproduce(&["table1", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("`--frobnicate`"), "{stderr}");
    assert!(stderr.contains("--no-parallel"), "usage lists the flags");
}

#[test]
fn help_prints_usage_and_succeeds() {
    for flag in ["--help", "-h"] {
        let out = reproduce(&[flag]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("reproduce [artifact]"), "{stdout}");
        assert!(stdout.contains("--quick"));
        assert!(stdout.contains("faults"));
    }
}

#[test]
fn no_parallel_flag_is_accepted() {
    let out = reproduce(&["table1", "--no-parallel"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
}

#[test]
fn faults_artifact_renders_the_degradation_ladder() {
    let out = reproduce(&["faults", "--quick"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fault injection"), "{stdout}");
    assert!(stdout.contains("intensity"), "{stdout}");
    assert!(stdout.contains("Space-Ground"), "{stdout}");
    assert!(stdout.contains("Air-Ground"), "{stdout}");
    assert!(
        stdout.contains("ideal-conditions assumption"),
        "the intensity-0 anchor line is part of the contract: {stdout}"
    );
}
