//! CLI contract tests for the `reproduce` binary: argument validation
//! (unknown artifacts and flags are rejected with the usage text and exit
//! code 2), the `--no-parallel` escape hatch, the `faults` artifact, and
//! the resilient `sweep`/`serve` artifacts' exit-code contract —
//! interrupt (5), resume to a bit-identical CSV (0), corrupt checkpoint
//! (4), chunk panic under fail-fast (6) and under `--quarantine` (0 with
//! `NA` rows) — plus the `serve` artifact's flag validation and artifact
//! outputs.
//!
//! Also covered: the `bench --scale` contract (flag validation, the
//! per-scale entries of `BENCH_sweep.json`) and the `perf_gate` binary's
//! exit-code contract (0 within tolerance, 1 regression, 2 usage, 3
//! unreadable input).
//!
//! Cargo builds the binaries and exposes their paths via
//! `CARGO_BIN_EXE_reproduce` / `CARGO_BIN_EXE_perf_gate`, so these run on
//! the exact bits `cargo run` would use.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("failed to spawn reproduce")
}

/// Run with `dir` as the working directory (the `serve` artifact writes
/// `BENCH_serve.json` relative to it; tests keep that out of the repo).
fn reproduce_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("failed to spawn reproduce")
}

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "qntn_cli_{}_{}_{tag}.{ext}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn unknown_artifact_is_rejected_with_usage() {
    let out = reproduce(&["no-such-artifact"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact"), "{stderr}");
    assert!(stderr.contains("`no-such-artifact`"), "{stderr}");
    assert!(
        stderr.contains("reproduce [artifact]"),
        "usage follows the error"
    );
    assert!(stderr.contains("faults"), "usage lists the faults artifact");
}

#[test]
fn unknown_flag_is_rejected_with_usage() {
    let out = reproduce(&["table1", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("`--frobnicate`"), "{stderr}");
    assert!(stderr.contains("--no-parallel"), "usage lists the flags");
}

#[test]
fn help_prints_usage_and_succeeds() {
    for flag in ["--help", "-h"] {
        let out = reproduce(&[flag]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("reproduce [artifact]"), "{stdout}");
        assert!(stdout.contains("--quick"));
        assert!(stdout.contains("faults"));
    }
}

#[test]
fn no_parallel_flag_is_accepted() {
    let out = reproduce(&["table1", "--no-parallel"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
}

#[test]
fn faults_artifact_renders_the_degradation_ladder() {
    let out = reproduce(&["faults", "--quick"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fault injection"), "{stdout}");
    assert!(stdout.contains("intensity"), "{stdout}");
    assert!(stdout.contains("Space-Ground"), "{stdout}");
    assert!(stdout.contains("Air-Ground"), "{stdout}");
    assert!(
        stdout.contains("ideal-conditions assumption"),
        "the intensity-0 anchor line is part of the contract: {stdout}"
    );
}

/// The `timeexp` artifact through the process boundary: a quick run exits
/// 0, prints the baseline and one row per horizon, and writes the JSON
/// comparison atomically at `--out`.
#[test]
fn timeexp_writes_the_comparison_artifact() {
    let out_path = temp_path("timeexp", "json");
    let out = reproduce(&["timeexp", "--quick", "--out", out_path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Store-and-forward serving"), "{stdout}");
    assert!(stdout.contains("per-step"), "{stdout}");
    let body = std::fs::read_to_string(&out_path).unwrap();
    assert!(body.contains("\"experiment\": \"timeexp\""), "{body}");
    assert!(body.contains("\"baseline\""), "{body}");
    assert!(body.contains("\"horizon_steps\": 6"), "{body}");
    std::fs::remove_file(&out_path).ok();
}

/// The `overload` artifact through the process boundary: a quick run
/// exits 0, prints one row per (load, intensity) cell, and writes the
/// JSON surface atomically at `--out`.
#[test]
fn overload_writes_the_surface_artifact() {
    let out_path = temp_path("overload", "json");
    let out = reproduce(&["overload", "--quick", "--out", out_path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Overload control"), "{stdout}");
    assert!(stdout.contains("shed_%"), "{stdout}");
    let body = std::fs::read_to_string(&out_path).unwrap();
    assert!(body.contains("\"experiment\": \"overload\""), "{body}");
    assert!(body.contains("\"shed_percent\""), "{body}");
    assert!(body.contains("\"degrade_mode_steps\""), "{body}");
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn sweep_flag_without_value_is_rejected() {
    let out = reproduce(&["sweep", "--sats"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs a value"), "{stderr}");
}

#[test]
fn sweep_flag_with_garbage_value_is_rejected() {
    let out = reproduce(&["sweep", "--sats", "many"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value"), "{stderr}");
    assert!(stderr.contains("`many`"), "{stderr}");
}

#[test]
fn help_documents_the_resilience_surface() {
    let out = reproduce(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "sweep",
        "serve",
        "--checkpoint",
        "--deadline-s",
        "--requests",
        "--workload",
        "exit codes:",
    ] {
        assert!(stdout.contains(needle), "help lacks `{needle}`: {stdout}");
    }
}

/// The `serve` artifact end to end through the process boundary: a small
/// run exits 0, prints the SLO summary, and leaves both artifacts —
/// the SLO JSON at `--out` and `BENCH_serve.json` in the working
/// directory — with the accounting fields present.
#[test]
fn serve_writes_slo_and_bench_artifacts() {
    let dir = temp_path("serve_cwd", "d");
    std::fs::create_dir_all(&dir).unwrap();
    let slo = temp_path("serve_slo", "json");
    let out = reproduce_in(
        &dir,
        &[
            "serve",
            "--sats",
            "2",
            "--requests",
            "400",
            "--out",
            slo.to_str().unwrap(),
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== SERVE:"), "{stdout}");
    assert!(stdout.contains("ingest: 400 accepted"), "{stdout}");
    assert!(stdout.contains("served "), "{stdout}");

    let slo_body = std::fs::read_to_string(&slo).unwrap();
    assert!(slo_body.contains("\"attempted\": 400"), "{slo_body}");
    assert!(slo_body.contains("\"classes\""), "{slo_body}");
    let bench = dir.join("BENCH_serve.json");
    let bench_body = std::fs::read_to_string(&bench).unwrap();
    assert!(
        bench_body.contains("\"benchmark\": \"serve_day\""),
        "{bench_body}"
    );
    assert!(bench_body.contains("\"requests\": 400"), "{bench_body}");
    assert!(bench_body.contains("\"wall_ms\""), "{bench_body}");
    std::fs::remove_file(&slo).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_an_unknown_workload_with_exit_2() {
    let out = reproduce(&["serve", "--workload", "bursty"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown kind"), "{stderr}");
    assert!(stderr.contains("`bursty`"), "{stderr}");
}

#[test]
fn serve_rejects_a_corrupt_checkpoint_with_exit_4() {
    let dir = temp_path("serve_corrupt_cwd", "d");
    std::fs::create_dir_all(&dir).unwrap();
    let slo = temp_path("serve_corrupt", "json");
    let ckpt = temp_path("serve_corrupt", "ckpt");
    // qntn-lint: allow(atomic-writes-only) -- plants a garbage checkpoint to prove the exit-4 rejection path
    std::fs::write(&ckpt, b"not a checkpoint frame at all").unwrap();
    let out = reproduce_in(
        &dir,
        &[
            "serve",
            "--sats",
            "2",
            "--requests",
            "400",
            "--out",
            slo.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ],
    );
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&slo).ok();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The headline resilience contract, end to end through the process
/// boundary: a run interrupted mid-sweep exits 5 with a checkpoint on
/// disk, rerunning the same command resumes and exits 0, and the final
/// CSV is byte-identical to an uninterrupted run's.
#[test]
fn sweep_interrupt_then_resume_matches_uninterrupted_run() {
    let baseline_csv = temp_path("baseline", "csv");
    let resumed_csv = temp_path("resumed", "csv");
    let ckpt = temp_path("resume", "ckpt");
    let baseline_s = baseline_csv.to_str().unwrap();
    let resumed_s = resumed_csv.to_str().unwrap();
    let ckpt_s = ckpt.to_str().unwrap();

    let out = reproduce(&["sweep", "--sats", "2", "--out", baseline_s]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "uninterrupted run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let interrupted = reproduce(&[
        "sweep",
        "--sats",
        "2",
        "--out",
        resumed_s,
        "--checkpoint",
        ckpt_s,
        "--cancel-after-steps",
        "200",
    ]);
    assert_eq!(
        interrupted.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&interrupted.stderr)
    );
    assert!(ckpt.exists(), "interrupted run left no checkpoint");
    assert!(!resumed_csv.exists(), "partial run must not write the CSV");

    let resumed = reproduce(&[
        "sweep",
        "--sats",
        "2",
        "--out",
        resumed_s,
        "--checkpoint",
        ckpt_s,
    ]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("resumed from checkpoint"), "{stdout}");
    assert!(!ckpt.exists(), "checkpoint survives a completed run");

    let a = std::fs::read(&baseline_csv).unwrap();
    let b = std::fs::read(&resumed_csv).unwrap();
    assert_eq!(a, b, "resumed CSV differs from uninterrupted CSV");
    std::fs::remove_file(&baseline_csv).ok();
    std::fs::remove_file(&resumed_csv).ok();
}

#[test]
fn sweep_rejects_a_corrupt_checkpoint_with_exit_4() {
    let csv = temp_path("corrupt", "csv");
    let ckpt = temp_path("corrupt", "ckpt");
    // qntn-lint: allow(atomic-writes-only) -- plants a garbage checkpoint to prove the exit-4 rejection path
    std::fs::write(&ckpt, b"not a checkpoint frame at all").unwrap();
    let out = reproduce(&[
        "sweep",
        "--sats",
        "2",
        "--out",
        csv.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&csv).ok();
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn sweep_panicking_chunk_fails_fast_with_exit_6() {
    let csv = temp_path("failfast", "csv");
    let out = reproduce(&[
        "sweep",
        "--sats",
        "2",
        "--out",
        csv.to_str().unwrap(),
        "--inject-panic-step",
        "100",
    ]);
    std::fs::remove_file(&csv).ok();
    assert_eq!(
        out.status.code(),
        Some(6),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("panicked"), "{stderr}");
}

fn perf_gate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .args(args)
        .output()
        .expect("failed to spawn perf_gate")
}

#[test]
fn bench_rejects_scale_zero_with_exit_2() {
    let out = reproduce(&["bench", "--quick", "--scale", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--scale"), "{stderr}");
    assert!(stderr.contains("at least 1"), "{stderr}");
}

#[test]
fn bench_rejects_a_garbage_scale_with_exit_2() {
    let out = reproduce(&["bench", "--quick", "--scale", "mega"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value"), "{stderr}");
    assert!(stderr.contains("`mega`"), "{stderr}");
}

/// `bench --scale` end to end: the run succeeds and BENCH_sweep.json
/// carries both the default ladder entry and a per-scale entry with the
/// schema `perf_gate` consumes (`satellites` before `engine_clean`).
#[test]
fn bench_scale_writes_per_scale_entries() {
    let dir = temp_path("bench_scale_cwd", "d");
    std::fs::create_dir_all(&dir).unwrap();
    let out = reproduce_in(&dir, &["bench", "--quick", "--scale", "16"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scale    16"), "{stdout}");
    let body = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    for needle in [
        "\"benchmark\": \"sweep_day\"",
        "\"satellites\": 12",
        "\"scales\": [",
        "\"satellites\": 16",
        "\"isl\": false",
        "\"setup\":",
        "\"engine_clean\":",
    ] {
        assert!(body.contains(needle), "missing `{needle}` in: {body}");
    }
    assert!(
        body.rfind("\"satellites\": 16") < body.rfind("\"engine_clean\":"),
        "scale entry must put satellites before engine_clean: {body}"
    );
}

/// A minimal bench-file fixture in `perf_gate`'s input schema.
fn bench_fixture(tag: &str, ms_108: f64, ms_1080: f64) -> PathBuf {
    let path = temp_path(tag, "json");
    let body = format!(
        "{{\n  \"benchmark\": \"sweep_day\",\n  \"satellites\": 108,\n  \"steps\": 2880,\n  \"parallel\": true,\n  \"wall_ms\": {{\n    \"engine_clean\": {ms_108:.1},\n    \"naive_clean\": 9000.0,\n    \"engine_faulted\": 2000.0\n  }},\n  \"scales\": [\n    {{\n      \"satellites\": 1080,\n      \"isl\": false,\n      \"wall_ms\": {{\n        \"setup\": 5000.0,\n        \"engine_clean\": {ms_1080:.1}\n      }}\n    }}\n  ]\n}}\n"
    );
    // qntn-lint: allow(atomic-writes-only) -- throwaway test fixture, not a build artifact
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn perf_gate_passes_within_tolerance_and_fails_beyond_it() {
    let baseline = bench_fixture("gate_base", 1000.0, 3000.0);
    let within = bench_fixture("gate_within", 1900.0, 5500.0);
    let beyond = bench_fixture("gate_beyond", 1000.0, 6100.0);

    let ok = perf_gate(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        within.to_str().unwrap(),
    ]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(
        stdout.contains("perf gate: ok (2 size(s) compared)"),
        "{stdout}"
    );

    let fail = perf_gate(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        beyond.to_str().unwrap(),
    ]);
    assert_eq!(fail.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&fail.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(
        stdout.contains("1080 sats"),
        "the regressed size is named: {stdout}"
    );

    // A looser tolerance turns the same comparison green.
    let loose = perf_gate(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        beyond.to_str().unwrap(),
        "--tolerance",
        "3.0",
    ]);
    assert_eq!(loose.status.code(), Some(0));

    std::fs::remove_file(&baseline).ok();
    std::fs::remove_file(&within).ok();
    std::fs::remove_file(&beyond).ok();
}

/// A minimal `BENCH_serve.json`-shaped fixture (the serve kind keys on
/// satellites x requests and gates the `serve` wall time).
fn serve_bench_fixture(tag: &str, serve_ms: f64) -> PathBuf {
    let path = temp_path(tag, "json");
    let body = format!(
        "{{\n  \"benchmark\": \"serve_day\",\n  \"satellites\": 108,\n  \"steps\": 2880,\n  \"requests\": 1000000,\n  \"workload\": \"uniform\",\n  \"seed\": 2024,\n  \"parallel\": true,\n  \"served_percent\": 97.6373,\n  \"wall_ms\": {{\n    \"engine_setup\": 31.6,\n    \"generate_ingest\": 363.9,\n    \"serve\": {serve_ms:.1}\n  }}\n}}\n"
    );
    // qntn-lint: allow(atomic-writes-only) -- throwaway test fixture, not a build artifact
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn perf_gate_gates_serve_baselines_and_rejects_kind_mixes() {
    let baseline = serve_bench_fixture("gate_serve_base", 2600.0);
    let within = serve_bench_fixture("gate_serve_within", 4900.0);
    let beyond = serve_bench_fixture("gate_serve_beyond", 5300.0);

    let ok = perf_gate(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        within.to_str().unwrap(),
    ]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(
        stdout.contains("108 sats x 1000000 req"),
        "serve entries are keyed on satellites x requests: {stdout}"
    );

    let fail = perf_gate(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        beyond.to_str().unwrap(),
    ]);
    assert_eq!(fail.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fail.stdout).contains("REGRESSED"));

    // A sweep baseline against a serve fresh run is a hard error, not a
    // silent "no common size" skip.
    let sweep = bench_fixture("gate_serve_mix", 1000.0, 3000.0);
    let mixed = perf_gate(&[
        "--baseline",
        sweep.to_str().unwrap(),
        "--fresh",
        within.to_str().unwrap(),
    ]);
    assert_eq!(mixed.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&mixed.stderr);
    assert!(stderr.contains("sweep_day"), "{stderr}");
    assert!(stderr.contains("serve_day"), "{stderr}");

    std::fs::remove_file(&baseline).ok();
    std::fs::remove_file(&within).ok();
    std::fs::remove_file(&beyond).ok();
    std::fs::remove_file(&sweep).ok();
}

#[test]
fn perf_gate_usage_errors_exit_2() {
    let out = perf_gate(&["--fresh", "only.json"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--baseline"), "{stderr}");

    let out = perf_gate(&[
        "--baseline",
        "a.json",
        "--fresh",
        "b.json",
        "--tolerance",
        "0.5",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("factor >= 1"), "{stderr}");
}

#[test]
fn perf_gate_unreadable_input_exits_3() {
    let baseline = bench_fixture("gate_io", 1000.0, 3000.0);
    let missing = temp_path("gate_missing", "json");
    let out = perf_gate(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--fresh",
        missing.to_str().unwrap(),
    ]);
    std::fs::remove_file(&baseline).ok();
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn sweep_quarantine_completes_and_marks_the_poisoned_step() {
    let csv = temp_path("quarantine", "csv");
    let out = reproduce(&[
        "sweep",
        "--sats",
        "2",
        "--out",
        csv.to_str().unwrap(),
        "--inject-panic-step",
        "100",
        "--quarantine",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined:"), "{stderr}");
    let body = std::fs::read_to_string(&csv).unwrap();
    std::fs::remove_file(&csv).ok();
    assert!(body.contains("100,NA"), "poisoned step not marked NA");
    assert_eq!(
        body.lines().count(),
        2881,
        "header plus one row per step, even with a quarantined chunk"
    );
}
