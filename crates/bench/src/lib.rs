//! # qntn-bench — benchmark harness for the QNTN reproduction
//!
//! Hosts the `reproduce` binary (regenerates every table and figure as
//! text/CSV) and the Criterion benches (`figures`, `tables`, `ablations`,
//! `extensions`, `microbench`). See EXPERIMENTS.md at the workspace root
//! for the paper-vs-measured record.
