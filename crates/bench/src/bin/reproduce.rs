//! `reproduce` — regenerate every table and figure of the QNTN paper.
//!
//! ```text
//! reproduce [artifact] [--quick]
//!
//! artifacts:
//!   fig5      transmissivity vs entanglement fidelity curve
//!   fig6      coverage % vs number of satellites (full day)
//!   fig7      served requests % vs number of satellites
//!   fig8      average fidelity vs number of satellites
//!   table1    ground-node coordinates (scenario dump)
//!   table2    the 108 satellite orbital slots
//!   table3    space-ground vs air-ground comparison
//!   topology  link maps of both architectures (Figs. 1-4 data)
//!   budgets   representative FSO link budgets
//!   extensions  night-ops / HAP-jitter / congestion / QKD extensions
//!   faults    degradation vs fault intensity (outages, flaps, weather)
//!   sweep     resilient full-day connectivity sweep: checkpoint/resume,
//!             cooperative cancellation, deadlines, panic isolation
//!   serve     batch entanglement-request service: seeded workload ->
//!             validated ingest -> amortized serve over the daily sweep,
//!             under the same resilient runtime contract
//!   bench     time the daily sweep (engine, naive, faulted) and write
//!             BENCH_sweep.json as a perf baseline
//!   export    write CSV/DOT artifacts for every figure into ./out/
//!   all       everything above except sweep, bench and export (default)
//!
//! --quick shrinks the workloads (for smoke tests); the default reproduces
//! the paper's full workload sizes.
//!
//! Every file this binary writes goes through the one atomic
//! write-temp-fsync-rename helper in `qntn-common`, so a crash mid-run
//! never leaves a torn artifact; every failure exits with a distinct code
//! (see `USAGE`) instead of a panic.
//! ```
//!
//! The panic-free bar is enforced mechanically by `qntn-lint`'s
//! `no-panic-bins` rule (`cargo lint`), which covers every workspace
//! binary — it replaced the in-source clippy `unwrap_used`/`expect_used`
//! deny attributes this file used to carry.

use qntn_channel::fso::{FsoChannel, FsoGeometry};
use qntn_channel::params::FsoParams;
use qntn_common::{atomic_write, frame, CancelToken, Deadline, QntnError, RunControl};
use qntn_core::architecture::{default_epoch, AirGround, SpaceGround};
use qntn_core::compare::ComparisonReport;
use qntn_core::experiments::faults::FaultExperiment;
use qntn_core::experiments::fidelity::FidelityExperiment;
use qntn_core::experiments::fig5::FidelityCurve;
use qntn_core::experiments::fig6::CoverageSweep;
use qntn_core::experiments::fig7::ServedSeries;
use qntn_core::experiments::fig8::FidelitySeries;
use qntn_core::experiments::overload::OverloadExperiment;
use qntn_core::experiments::paper_constellation_sizes;
use qntn_core::experiments::sweep::{ConstellationSweep, SweepSettings};
use qntn_core::experiments::timeexp::TimeexpExperiment;
use qntn_core::report;
use qntn_core::scenario::Qntn;
use qntn_net::faults::FaultModel;
use qntn_net::requests::RetryPolicy;
use qntn_net::runtime::{run_steps, PanicPolicy, RunPolicy};
use qntn_net::{SimConfig, SweepEngine};
use qntn_orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn_orbit::walker::paper_slots;
use qntn_orbit::{scaled_shell, Ephemeris, PerturbationModel, Propagator};
use qntn_routing::RouteMetric;
use qntn_serve::{generate, ingest, report_from_run, serve_resilient, WorkloadKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

const USAGE: &str = "\
reproduce [artifact] [--quick]

artifacts:
  fig5        transmissivity vs entanglement fidelity curve
  fig6        coverage % vs number of satellites (full day)
  fig7        served requests % vs number of satellites
  fig8        average fidelity vs number of satellites
  table1      ground-node coordinates (scenario dump)
  table2      the 108 satellite orbital slots
  table3      space-ground vs air-ground comparison
  topology    link maps of both architectures (Figs. 1-4 data)
  budgets     representative FSO link budgets
  extensions  night-ops / jitter / congestion / QKD / survivability /
              demand / heralded / sensitivity extensions
  faults      degradation vs fault intensity (outages, flaps, weather;
              seeded and deterministic, with retry-with-backoff service)
  timeexp     store-and-forward serving vs the memoryless baseline: the
              same seeded workload served per-step and over time-expanded
              graphs at a ladder of quantum-memory horizons; writes
              out/timeexp.json atomically (--out to override)
  overload    overload-control surface: flash-crowd loads x fault
              intensities served under capacity admission with retry
              budgets, load shedding and the degradation ladder; writes
              out/overload.json atomically (--out to override)
  sweep       resilient full-day connectivity sweep: checkpointed,
              resumable, Ctrl-C-safe, panic-isolated; writes the per-step
              flags CSV atomically
  serve       batch entanglement-request service: generate a seeded
              workload, ingest it through the validated request boundary,
              serve it over the daily sweep under the resilient runtime;
              writes the SLO report and BENCH_serve.json atomically
  bench       wall-time the 108-satellite daily sweep three ways (engine,
              naive, engine+faults) and write BENCH_sweep.json
  export      write CSV/DOT artifacts for every figure into ./out/
  all         everything except sweep, bench and export (default)

flags:
  --quick       reduced workloads (smoke test); default is the paper's sizes
  --no-parallel run the daily sweeps on the sequential engine path
                (bit-identical results; for debugging / single-core runs)
  --help        this text

bench flags:
  --scale N     additionally wall-time an engine-only daily sweep of an
                N-satellite Walker shell (N >= 1; repeatable). Each run
                appends a per-scale entry to the scales array of
                BENCH_sweep.json; ISLs are disabled at scale so the timing
                isolates the ground-visibility sweep machinery

sweep/serve runtime flags:
  --sats N              constellation size (sweep default 36, 6 with
                        --quick; serve default 108, 12 with --quick)
  --checkpoint PATH     checkpoint frame file; an interrupted run rerun
                        with the same command resumes from it and produces
                        output bit-identical to an uninterrupted run
  --checkpoint-every N  checkpoint cadence in chunks (default 1)
  --chunk-steps N       steps per chunk: the granularity of checkpoints,
                        cancellation and panic isolation (default 64)
  --deadline-s S        wall-clock budget in seconds
  --out PATH            output file (default out/sweep_flags.csv for
                        sweep, out/serve_slo.json for serve)
  --quarantine          on a panicking chunk, quarantine it and complete
                        the healthy chunks (default: fail fast, exit 6)
  --cancel-after-steps N  trip cancellation after N step evaluations
                        (sweep only; crash-injection testing)
  --inject-panic-step N panic while evaluating step N (sweep only; testing)

serve flags:
  --requests N          batch size (default 1000000; 5000 with --quick)
  --workload KIND       uniform | poisson | diurnal | hotspot | flash_crowd
                        (default uniform)
  --seed N              workload generator seed (default 2024)

exit codes:
  0  success
  2  usage error (unknown artifact / flag / bad value)
  3  I/O error
  4  corrupt or mismatched checkpoint
  5  interrupted (cancellation or deadline; progress checkpointed)
  6  sweep chunk panicked under fail-fast
  1  any other error
";

const ARTIFACTS: [&str; 18] = [
    "all",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table1",
    "table2",
    "table3",
    "topology",
    "budgets",
    "extensions",
    "faults",
    "timeexp",
    "overload",
    "sweep",
    "serve",
    "bench",
    "export",
];

/// Tripped by the SIGINT handler; observed through
/// [`CancelToken::from_static`] so Ctrl-C becomes a cooperative stop with
/// a checkpoint instead of a mid-write kill.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: one relaxed-ordering-free atomic store.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Options of the resilient-runtime artifacts (`sweep` and `serve`).
struct SweepOpts {
    sats: Option<usize>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    chunk_steps: usize,
    deadline_s: Option<f64>,
    cancel_after_steps: Option<usize>,
    inject_panic_step: Option<usize>,
    quarantine: bool,
    /// Output path; the default depends on the artifact.
    out: Option<PathBuf>,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            sats: None,
            checkpoint: None,
            checkpoint_every: 1,
            chunk_steps: 64,
            deadline_s: None,
            cancel_after_steps: None,
            inject_panic_step: None,
            quarantine: false,
            out: None,
        }
    }
}

/// Options specific to the `serve` artifact (which also honours the
/// shared runtime flags in [`SweepOpts`]).
struct ServeOpts {
    requests: Option<usize>,
    workload: WorkloadKind,
    seed: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            requests: None,
            workload: WorkloadKind::Uniform,
            seed: 2024,
        }
    }
}

struct Cli {
    artifact: String,
    quick: bool,
    parallel: bool,
    /// Extra constellation sizes for `bench` (the `--scale` flag, repeatable).
    scales: Vec<usize>,
    sweep: SweepOpts,
    serve: ServeOpts,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        artifact: String::from("all"),
        quick: false,
        parallel: true,
        scales: Vec::new(),
        sweep: SweepOpts::default(),
        serve: ServeOpts::default(),
    };
    let mut artifact: Option<String> = None;

    fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
        *i += 1;
        args.get(*i)
            .map(String::as_str)
            .ok_or_else(|| format!("flag `{flag}` needs a value"))
    }
    fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("flag `{flag}`: invalid value `{raw}`"))
    }

    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--quick" => cli.quick = true,
            "--no-parallel" => cli.parallel = false,
            "--quarantine" => cli.sweep.quarantine = true,
            "--sats" => cli.sweep.sats = Some(number(value(args, &mut i, a)?, a)?),
            "--scale" => {
                let n: usize = number(value(args, &mut i, a)?, a)?;
                if n == 0 {
                    return Err("flag `--scale`: a constellation needs at least 1 satellite".into());
                }
                cli.scales.push(n);
            }
            "--checkpoint" => cli.sweep.checkpoint = Some(PathBuf::from(value(args, &mut i, a)?)),
            "--checkpoint-every" => {
                cli.sweep.checkpoint_every = number(value(args, &mut i, a)?, a)?
            }
            "--chunk-steps" => cli.sweep.chunk_steps = number(value(args, &mut i, a)?, a)?,
            "--deadline-s" => cli.sweep.deadline_s = Some(number(value(args, &mut i, a)?, a)?),
            "--cancel-after-steps" => {
                cli.sweep.cancel_after_steps = Some(number(value(args, &mut i, a)?, a)?)
            }
            "--inject-panic-step" => {
                cli.sweep.inject_panic_step = Some(number(value(args, &mut i, a)?, a)?)
            }
            "--out" => cli.sweep.out = Some(PathBuf::from(value(args, &mut i, a)?)),
            "--requests" => cli.serve.requests = Some(number(value(args, &mut i, a)?, a)?),
            "--seed" => cli.serve.seed = number(value(args, &mut i, a)?, a)?,
            "--workload" => {
                let raw = value(args, &mut i, a)?;
                cli.serve.workload = WorkloadKind::parse(raw).ok_or_else(|| {
                    format!("flag `--workload`: unknown kind `{raw}` (uniform | poisson | diurnal | hotspot | flash_crowd)")
                })?;
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag `{a}`")),
            _ => {
                if artifact.is_some() {
                    return Err(format!("unexpected argument `{a}`"));
                }
                artifact = Some(a.to_string());
            }
        }
        i += 1;
    }
    if let Some(name) = artifact {
        if !ARTIFACTS.contains(&name.as_str()) {
            return Err(format!("unknown artifact `{name}`"));
        }
        cli.artifact = name;
    }
    Ok(cli)
}

/// Why a successful process run still didn't finish its work.
enum Exit {
    Success,
    /// Cancelled or deadline-expired: progress is checkpointed (when a
    /// checkpoint path was given) and the partial state is well-formed.
    Interrupted,
}

fn exit_code(err: &QntnError) -> i32 {
    match err {
        QntnError::Io { .. } => 3,
        QntnError::CorruptFrame { .. } | QntnError::CheckpointMismatch { .. } => 4,
        QntnError::ChunkPanic { .. } => 6,
        _ => 1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    install_sigint_handler();
    match run(&cli) {
        Ok(Exit::Success) => {}
        Ok(Exit::Interrupted) => std::process::exit(5),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code(&e));
        }
    }
}

fn run(cli: &Cli) -> Result<Exit, QntnError> {
    let scenario = Qntn::standard();
    let config = SimConfig::default();
    let (artifact, quick, parallel) = (cli.artifact.as_str(), cli.quick, cli.parallel);

    let wants = |name: &str| artifact == "all" || artifact == name;

    if wants("table1") {
        table1(&scenario);
    }
    if wants("table2") {
        table2();
    }
    if wants("fig5") {
        fig5()?;
    }
    if wants("budgets") {
        budgets();
    }
    if wants("topology") {
        topology(&scenario, &config);
    }
    if wants("fig6") {
        fig6(&scenario, config, quick, parallel);
    }
    if wants("fig7") || wants("fig8") {
        fig78(&scenario, config, quick, parallel, artifact);
    }
    if wants("table3") {
        table3(&scenario, config, quick);
    }
    if wants("extensions") {
        extensions(&scenario, config, quick);
    }
    if wants("faults") {
        faults(&scenario, config, quick, parallel);
    }
    if wants("timeexp") {
        timeexp(&scenario, config, cli)?;
    }
    if wants("overload") {
        overload(&scenario, config, cli)?;
    }
    if artifact == "sweep" {
        return sweep(&scenario, config, cli);
    }
    if artifact == "serve" {
        return serve(&scenario, config, cli);
    }
    if artifact == "bench" {
        bench_sweep(&scenario, config, quick, parallel, &cli.scales)?;
    }
    if artifact == "export" {
        export(&scenario, config, quick, parallel)?;
    }
    Ok(Exit::Success)
}

/// The `sweep` artifact: the full-day connectivity sweep under the
/// resilient runtime. Checkpointed and resumable (interrupted-then-resumed
/// output is bit-identical to an uninterrupted run), cooperatively
/// cancellable (Ctrl-C / `--deadline-s`), panic-isolated per chunk, and
/// every byte of output written atomically.
fn sweep(scenario: &Qntn, config: SimConfig, cli: &Cli) -> Result<Exit, QntnError> {
    let o = &cli.sweep;
    let n_sats = o.sats.unwrap_or(if cli.quick { 6 } else { 36 });
    let arch = SpaceGround::new(scenario, n_sats, config, PerturbationModel::TwoBody);
    let sim = arch.sim();
    println!(
        "== SWEEP: {n_sats}-satellite resilient daily sweep ({} steps, parallel: {}) ==",
        sim.steps(),
        cli.parallel
    );

    let sigint = CancelToken::from_static(&INTERRUPTED);
    let deadline = o
        .deadline_s
        .map(|s| Deadline::after(Duration::from_secs_f64(s)));
    let with_deadline = |mut control: RunControl| {
        if let Some(d) = deadline {
            control = control.with_deadline(d);
        }
        control
    };

    // The window precompute is the one setup phase long enough to honour
    // the budget; a stop here has no partial result worth keeping.
    let setup = with_deadline(RunControl::unlimited().with_cancel(sigint.clone()));
    let engine = match SweepEngine::try_new(sim, &setup) {
        Ok(engine) => engine.with_parallel(cli.parallel),
        Err(cause) => {
            println!("interrupted during window precompute ({cause}); nothing written");
            return Ok(Exit::Interrupted);
        }
    };

    // One shared token drives the run; the SIGINT static and the
    // crash-injection counter both bridge into it from the eval closure.
    let run_token = CancelToken::new();
    let control = with_deadline(RunControl::unlimited().with_cancel(run_token.clone()));
    let mut policy = RunPolicy::default()
        .with_chunk_steps(o.chunk_steps)
        .with_checkpoint_every(o.checkpoint_every)
        .with_control(control)
        .with_panic_policy(if o.quarantine {
            PanicPolicy::Quarantine
        } else {
            PanicPolicy::FailFast
        });
    if let Some(path) = &o.checkpoint {
        policy = policy.with_checkpoint(path);
    }

    // Everything the per-step outputs depend on; a checkpoint from any
    // other configuration is refused, not resumed.
    let fingerprint = frame::fingerprint(&[
        n_sats as u64,
        sim.steps() as u64,
        config.threshold.to_bits(),
    ]);
    let steps: Vec<usize> = (0..sim.steps()).collect();
    let evals = AtomicUsize::new(0);
    let report = run_steps(&engine, &steps, fingerprint, &policy, |scratch, step| {
        if o.inject_panic_step == Some(step) {
            // qntn-lint: allow(no-panic-bins) -- the --inject-panic-step crash-injection knob panics by design
            panic!("injected panic at step {step}");
        }
        if sigint.is_cancelled() {
            run_token.cancel();
        }
        if let Some(n) = o.cancel_after_steps {
            if evals.fetch_add(1, Ordering::SeqCst) + 1 >= n {
                run_token.cancel();
            }
        }
        engine.active_graph_into(step, scratch);
        engine.sim().lans_interconnected(&scratch.active)
    })?;

    let total = report.outputs.len();
    if report.resumed_from > 0 {
        println!(
            "resumed from checkpoint at step {}/{total}",
            report.resumed_from
        );
    }
    if let Some(cause) = report.stopped {
        match &o.checkpoint {
            Some(path) => {
                println!(
                    "interrupted ({cause}) at step {}/{total}; progress checkpointed to {}",
                    report.completed,
                    path.display()
                );
                println!(
                    "resume: rerun the same command to continue from step {}",
                    report.completed
                );
            }
            None => println!(
                "interrupted ({cause}) at step {}/{total}; no --checkpoint, progress discarded",
                report.completed
            ),
        }
        return Ok(Exit::Interrupted);
    }
    for p in &report.panics {
        eprintln!("quarantined: {}", p.to_error());
    }

    let out = o
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("out/sweep_flags.csv"));
    ensure_parent_dir(&out)?;
    let mut csv = String::from("step,connected\n");
    for (step, slot) in report.outputs.iter().enumerate() {
        match slot {
            Some(connected) => {
                csv.push_str(&format!("{step},{}\n", u8::from(*connected)));
            }
            // Quarantined steps have no value; NA keeps the row count
            // stable so downstream diffs stay aligned.
            None => csv.push_str(&format!("{step},NA\n")),
        }
    }
    atomic_write(&out, csv.as_bytes())?;
    println!("wrote {}", out.display());

    let connected = report.outputs.iter().flatten().filter(|&&c| c).count();
    println!(
        "coverage: {connected}/{total} steps connected ({:.2}%)",
        100.0 * connected as f64 / total as f64
    );
    if let Some(path) = &o.checkpoint {
        if path.exists() {
            let _ = std::fs::remove_file(path);
            println!("run complete; checkpoint {} removed", path.display());
        }
    }
    Ok(Exit::Success)
}

/// Wait percentiles are `None` when nothing was served (distinguishing
/// "no data" from a genuine 0-step wait).
fn fmt_wait(v: Option<u64>) -> String {
    match v {
        Some(w) => w.to_string(),
        None => "n/a".to_string(),
    }
}

fn ensure_parent_dir(path: &Path) -> Result<(), QntnError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| QntnError::io("create_dir", dir, &e))?;
        }
    }
    Ok(())
}

/// The `serve` artifact: the batch entanglement-request service. A seeded
/// workload is generated, pushed through the validated ingest boundary
/// (per-request rejection, never a panic), then served over the daily
/// sweep with amortized routing — one SSSP per distinct source per attempt
/// round — under the same resilient runtime contract as `sweep`:
/// checkpointed per chunk of arrival groups, cooperatively cancellable,
/// panic-isolated, with every artifact byte written atomically. The run
/// ends with the SLO report JSON and a `BENCH_serve.json` wall-time
/// baseline.
fn serve(scenario: &Qntn, config: SimConfig, cli: &Cli) -> Result<Exit, QntnError> {
    use std::time::Instant;

    let o = &cli.sweep;
    let s = &cli.serve;
    let n_sats = o.sats.unwrap_or(if cli.quick { 12 } else { 108 });
    let n_requests = s
        .requests
        .unwrap_or(if cli.quick { 5_000 } else { 1_000_000 });
    let kind = s.workload;
    let arch = SpaceGround::new(scenario, n_sats, config, PerturbationModel::TwoBody);
    let sim = arch.sim();
    println!(
        "== SERVE: {n_requests} {} requests over the {n_sats}-satellite day ({} steps, parallel: {}) ==",
        kind.name(),
        sim.steps(),
        cli.parallel
    );

    let sigint = CancelToken::from_static(&INTERRUPTED);
    let deadline = o
        .deadline_s
        .map(|secs| Deadline::after(Duration::from_secs_f64(secs)));
    let with_deadline = |mut control: RunControl| {
        if let Some(d) = deadline {
            control = control.with_deadline(d);
        }
        control
    };

    let t = Instant::now();
    let setup = with_deadline(RunControl::unlimited().with_cancel(sigint.clone()));
    let engine = match SweepEngine::try_new(sim, &setup) {
        Ok(engine) => engine.with_parallel(cli.parallel),
        Err(cause) => {
            println!("interrupted during window precompute ({cause}); nothing written");
            return Ok(Exit::Interrupted);
        }
    };
    let setup_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let stream = generate(sim, kind, n_requests, s.seed);
    let (queue, rejected) = ingest(sim.hosts().len(), sim.steps(), &stream);
    drop(stream);
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "ingest: {} accepted, {} rejected, {} arrival groups",
        queue.len(),
        rejected.len(),
        queue.groups().len()
    );

    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let control = with_deadline(RunControl::unlimited().with_cancel(sigint.clone()));
    let mut run_policy = RunPolicy::default()
        .with_chunk_steps(o.chunk_steps)
        .with_checkpoint_every(o.checkpoint_every)
        .with_control(control)
        .with_panic_policy(if o.quarantine {
            PanicPolicy::Quarantine
        } else {
            PanicPolicy::FailFast
        });
    if let Some(path) = &o.checkpoint {
        run_policy = run_policy.with_checkpoint(path);
    }

    // Everything the per-group aggregates depend on; a checkpoint from
    // any other serve configuration is refused, not resumed.
    const SERVE_TAG: u64 = 0x5e7e;
    let fingerprint = frame::fingerprint(&[
        SERVE_TAG,
        n_sats as u64,
        sim.steps() as u64,
        config.threshold.to_bits(),
        n_requests as u64,
        s.seed,
        kind.id(),
        policy.max_attempts as u64,
        policy.backoff_steps as u64,
        policy.deadline_steps as u64,
    ]);

    let t = Instant::now();
    let run = serve_resilient(&engine, &queue, policy, metric, fingerprint, &run_policy)?;
    let serve_ms = t.elapsed().as_secs_f64() * 1e3;

    let total = run.outputs.len();
    if run.resumed_from > 0 {
        println!(
            "resumed from checkpoint at arrival group {}/{total}",
            run.resumed_from
        );
    }
    if let Some(cause) = run.stopped {
        match &o.checkpoint {
            Some(path) => {
                println!(
                    "interrupted ({cause}) at arrival group {}/{total}; progress checkpointed to {}",
                    run.completed,
                    path.display()
                );
                println!(
                    "resume: rerun the same command to continue from group {}",
                    run.completed
                );
            }
            None => println!(
                "interrupted ({cause}) at arrival group {}/{total}; no --checkpoint, progress discarded",
                run.completed
            ),
        }
        return Ok(Exit::Interrupted);
    }
    for p in &run.panics {
        eprintln!("quarantined: {}", p.to_error());
    }

    let report = report_from_run(&run, rejected.len() as u64);
    println!(
        "served {:.2}% of {} attempted ({:.2}% first try, {:.2}% retry-rescued, {:.2}% expired)",
        report.served_percent(),
        report.attempted,
        report.first_try_percent(),
        report.rescued_percent(),
        report.expired_percent()
    );
    println!(
        "wait: p50 {} steps, p95 {} steps; mean fidelity {:.4}, mean attempts {:.2}",
        fmt_wait(report.p50_wait_steps),
        fmt_wait(report.p95_wait_steps),
        report.mean_fidelity,
        report.mean_attempts
    );
    for (c, class) in report.classes.iter().enumerate() {
        println!(
            "class {c}: {:>7} attempted, {:>6.2}% served, mean fidelity {:.4}",
            class.attempted, class.served_percent, class.mean_fidelity
        );
    }

    let out = o
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("out/serve_slo.json"));
    ensure_parent_dir(&out)?;
    atomic_write(&out, report.to_json().as_bytes())?;
    println!("wrote {}", out.display());

    let json = format!(
        "{{\n  \"benchmark\": \"serve_day\",\n  \"satellites\": {n_sats},\n  \"steps\": {},\n  \"requests\": {n_requests},\n  \"workload\": \"{}\",\n  \"seed\": {},\n  \"parallel\": {},\n  \"served_percent\": {:.4},\n  \"wall_ms\": {{\n    \"engine_setup\": {setup_ms:.1},\n    \"generate_ingest\": {ingest_ms:.1},\n    \"serve\": {serve_ms:.1}\n  }}\n}}\n",
        sim.steps(),
        kind.name(),
        s.seed,
        cli.parallel,
        report.served_percent()
    );
    atomic_write(Path::new("BENCH_serve.json"), json.as_bytes())?;
    println!("wrote BENCH_serve.json");

    if let Some(path) = &o.checkpoint {
        if path.exists() {
            let _ = std::fs::remove_file(path);
            println!("run complete; checkpoint {} removed", path.display());
        }
    }
    Ok(Exit::Success)
}

/// The `bench` artifact: wall-time the full-day connectivity sweep on the
/// paper's headline constellation three ways — the window-pruned engine,
/// the naive per-step evaluator, and the engine under a standard
/// intensity-2.0 fault mask — and record the timings in `BENCH_sweep.json`
/// so future changes have a baseline to regress against. The engine and
/// naive flag vectors are asserted equal before anything is written
/// (timing a wrong answer would be worthless).
///
/// Each `--scale N` additionally times an engine-only sweep of an
/// N-satellite Walker shell (the mega-constellation path: spatial window
/// pruning, incremental topology, batched η). ISLs are disabled there —
/// the O(N²) ISL pair loop is a different workload and would swamp the
/// ground-visibility machinery being measured — and the naive oracle is
/// skipped (at 1000+ satellites it takes minutes; the bit-identity of
/// engine vs naive is pinned by `tests/pipeline_goldens.rs` instead).
/// The per-scale timings land in the `"scales"` array of the JSON, which
/// `perf_gate` compares run-over-run in CI.
fn bench_sweep(
    scenario: &Qntn,
    config: SimConfig,
    quick: bool,
    parallel: bool,
    scales: &[usize],
) -> Result<(), QntnError> {
    use std::sync::Arc;
    use std::time::Instant;

    let n_sats = if quick { 12 } else { 108 };
    let arch = SpaceGround::new(scenario, n_sats, config, PerturbationModel::TwoBody);
    let sim = arch.sim();
    println!(
        "== BENCH: {n_sats}-satellite daily sweep ({} steps, parallel: {parallel}) ==",
        sim.steps()
    );

    let t = Instant::now();
    let engine = SweepEngine::new(sim).with_parallel(parallel);
    let engine_flags = engine.connectivity_flags();
    let engine_clean_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("engine_clean    {engine_clean_ms:>10.1} ms");

    let t = Instant::now();
    let naive_flags: Vec<bool> = (0..sim.steps())
        .map(|step| sim.lans_interconnected(&sim.active_graph_at(step)))
        .collect();
    let naive_clean_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("naive_clean     {naive_clean_ms:>10.1} ms");
    assert_eq!(
        engine_flags, naive_flags,
        "engine and naive sweeps disagree; refusing to record timings"
    );

    let t = Instant::now();
    let faults = Arc::new(FaultModel::standard(42).with_intensity(2.0).compile(sim));
    let faulted = SweepEngine::new(sim)
        .with_parallel(parallel)
        .with_faults(faults);
    let _ = faulted.connectivity_flags();
    let engine_faulted_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("engine_faulted  {engine_faulted_ms:>10.1} ms (incl. mask compile)");

    let mut scale_entries = String::new();
    for &n in scales {
        let t = Instant::now();
        let epoch = default_epoch();
        let props: Vec<Propagator> = scaled_shell(n)
            .elements()
            .into_iter()
            .map(|k| Propagator::new(k, epoch, PerturbationModel::TwoBody))
            .collect();
        let ephemerides = Ephemeris::generate_many(&props, epoch, PAPER_STEP_S, PAPER_DURATION_S);
        let shell = SpaceGround::from_ephemerides(
            scenario,
            ephemerides,
            SimConfig {
                enable_isl: false,
                ..config
            },
        );
        let setup_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let engine = SweepEngine::new(shell.sim()).with_parallel(parallel);
        let flags = engine.connectivity_flags();
        let scale_clean_ms = t.elapsed().as_secs_f64() * 1e3;
        let connected = flags.iter().filter(|&&c| c).count();
        println!(
            "scale {n:>5}     {scale_clean_ms:>10.1} ms engine-only ({setup_ms:.1} ms setup, {connected}/{} steps connected)",
            flags.len()
        );
        if !scale_entries.is_empty() {
            scale_entries.push_str(",\n");
        }
        scale_entries.push_str(&format!(
            "    {{\n      \"satellites\": {n},\n      \"isl\": false,\n      \"wall_ms\": {{\n        \"setup\": {setup_ms:.1},\n        \"engine_clean\": {scale_clean_ms:.1}\n      }}\n    }}"
        ));
    }

    let scales_json = if scale_entries.is_empty() {
        String::from("[]")
    } else {
        format!("[\n{scale_entries}\n  ]")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"sweep_day\",\n  \"satellites\": {n_sats},\n  \"steps\": {},\n  \"parallel\": {parallel},\n  \"wall_ms\": {{\n    \"engine_clean\": {engine_clean_ms:.1},\n    \"naive_clean\": {naive_clean_ms:.1},\n    \"engine_faulted\": {engine_faulted_ms:.1}\n  }},\n  \"scales\": {scales_json}\n}}\n",
        sim.steps()
    );
    atomic_write(Path::new("BENCH_sweep.json"), json.as_bytes())?;
    println!("wrote BENCH_sweep.json");
    Ok(())
}

fn export(
    scenario: &Qntn,
    config: SimConfig,
    quick: bool,
    parallel: bool,
) -> Result<(), QntnError> {
    use qntn_core::report;
    let dir = Path::new("out");
    std::fs::create_dir_all(dir).map_err(|e| QntnError::io("create_dir", dir, &e))?;
    let write = |name: &str, contents: String| -> Result<(), QntnError> {
        let path = dir.join(name);
        atomic_write(&path, contents.as_bytes())?;
        println!("wrote {}", path.display());
        Ok(())
    };

    write("fig5.csv", report::fig5_csv(&FidelityCurve::paper()))?;

    let sizes = if quick {
        vec![6, 36, 108]
    } else {
        paper_constellation_sizes()
    };
    let cov = CoverageSweep::run_with_options(
        scenario,
        config,
        &sizes,
        PerturbationModel::TwoBody,
        parallel,
    );
    write("fig6.csv", report::fig6_csv(&cov))?;

    let settings = if quick {
        SweepSettings {
            sampled_steps: 20,
            requests_per_step: 25,
            ..SweepSettings::paper()
        }
    } else {
        SweepSettings::paper()
    };
    let sweep = ConstellationSweep::run_with_options(
        scenario,
        config,
        &sizes,
        settings,
        PerturbationModel::TwoBody,
        parallel,
    );
    write("fig7_fig8.csv", report::sweep_csv(&sweep))?;

    let experiment = if quick {
        FidelityExperiment {
            sampled_steps: 20,
            requests_per_step: 25,
            ..FidelityExperiment::paper()
        }
    } else {
        FidelityExperiment::paper()
    };
    let largest = sizes.last().copied().unwrap_or(108);
    let cmp = ComparisonReport::run(scenario, config, largest, experiment);
    write("table3.txt", report::table3(&cmp))?;

    let air = AirGround::new(scenario, config);
    let g = air.sim().active_graph_at(0);
    write(
        "topology_air_ground.dot",
        report::topology_dot(air.sim(), &g, "QNTN air-ground (t=0)"),
    )?;
    let space = SpaceGround::new(scenario, 36, config, PerturbationModel::TwoBody);
    let g = space.sim().active_graph_at(0);
    write(
        "topology_space_ground_36.dot",
        report::topology_dot(space.sim(), &g, "QNTN space-ground, 36 satellites (t=0)"),
    )?;

    let fault_exp = if quick {
        FaultExperiment::quick()
    } else {
        FaultExperiment::standard()
    };
    let faults = fault_exp.run_with_options(scenario, config, parallel);
    write("faults.csv", report::faults_csv(&faults))?;

    // One satellite movement sheet, as the paper's STK workflow produced.
    let eph = SpaceGround::ephemerides(1, PerturbationModel::TwoBody);
    write("movement_sheet_sat000.csv", eph[0].to_csv())?;
    Ok(())
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn table1(scenario: &Qntn) {
    banner("Table I — ground node coordinates");
    for lan in &scenario.lans {
        println!("{} ({} nodes):", lan.name, lan.nodes.len());
        for (k, n) in lan.nodes.iter().enumerate() {
            println!(
                "  {}-{k}: ({:.5}, {:.5})",
                lan.name,
                n.lat_deg(),
                n.lon_deg()
            );
        }
    }
    println!(
        "HAP: ({:.4}, {:.4}) @ {:.0} km",
        scenario.hap.lat_deg(),
        scenario.hap.lon_deg(),
        scenario.hap.alt_m / 1000.0
    );
}

fn table2() {
    banner("Table II — satellite orbital configurations (RAAN, true anomaly)");
    let slots = paper_slots();
    for (i, s) in slots.iter().enumerate() {
        print!("({:>3.0},{:>3.0}) ", s.raan_deg, s.true_anomaly_deg);
        if (i + 1) % 6 == 0 {
            println!();
        }
    }
    println!("total: {} satellites, a = 6871 km, i = 53 deg", slots.len());
}

fn fig5() -> Result<(), QntnError> {
    banner("Fig. 5 — transmissivity vs entanglement fidelity");
    let curve = FidelityCurve::paper();
    print!("{}", report::fig5_csv(&curve));
    let th = curve
        .threshold_for_fidelity(0.9)
        .ok_or_else(|| QntnError::Other("fig5: no sampled eta reaches F >= 0.9".into()))?;
    println!("# first eta with F >= 0.9: {th:.2} (paper threshold: 0.70)");
    Ok(())
}

fn budgets() {
    banner("Representative FSO link budgets");
    let p = FsoParams::ideal();
    let cases = [
        (
            "satellite zenith (500 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 500e3, 90f64.to_radians()),
        ),
        (
            "satellite 45 deg (690 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 690e3, 45f64.to_radians()),
        ),
        (
            "satellite 25 deg (1050 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 1050e3, 25f64.to_radians()),
        ),
        (
            "satellite 20 deg (1220 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 1220e3, 20f64.to_radians()),
        ),
        (
            "HAP->Cookeville (~78 km)",
            FsoGeometry::downlink(0.3, 30e3, 1.2, 300.0, 78e3, 22f64.to_radians()),
        ),
        (
            "ISL in-plane (6871 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 500e3, 6.871e6, 0.0),
        ),
    ];
    for (name, geom) in cases {
        let b = FsoChannel::new(geom, p).budget();
        println!("{name}:\n{b}\n");
    }
}

fn topology(scenario: &Qntn, config: &SimConfig) {
    use qntn_net::Snapshot;
    banner("Topology (Figs. 1-4 data)");
    let air = AirGround::new(scenario, *config);
    println!("air-ground census:");
    print!("{}", Snapshot::take(air.sim(), 0).render());
    let hap = air.hap_node();
    println!(
        "HAP links {} ground nodes (threshold {})\n",
        air.sim().active_graph_at(0).neighbors(hap).len(),
        config.threshold
    );

    let space = SpaceGround::new(scenario, 36, *config, PerturbationModel::TwoBody);
    println!("space-ground (36 sats) census:");
    print!("{}", Snapshot::take(space.sim(), 0).render());
}

fn fig6(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool) {
    banner("Fig. 6 — coverage % vs number of satellites");
    let sizes = if quick {
        vec![6, 36, 108]
    } else {
        paper_constellation_sizes()
    };
    let sweep = CoverageSweep::run_with_options(
        scenario,
        config,
        &sizes,
        PerturbationModel::TwoBody,
        parallel,
    );
    print!("{}", report::fig6_table(&sweep));
    println!(
        "# paper: 108 satellites -> 55.17% coverage; measured: {:.2}%",
        sweep.final_point().coverage_percent
    );
}

fn fig78(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool, artifact: &str) {
    banner("Fig. 7/8 — served requests and fidelity vs number of satellites");
    let sizes = if quick {
        vec![6, 36, 108]
    } else {
        paper_constellation_sizes()
    };
    let settings = if quick {
        SweepSettings {
            sampled_steps: 20,
            requests_per_step: 25,
            ..SweepSettings::paper()
        }
    } else {
        SweepSettings::paper()
    };
    let sweep = ConstellationSweep::run_with_options(
        scenario,
        config,
        &sizes,
        settings,
        PerturbationModel::TwoBody,
        parallel,
    );
    print!("{}", report::sweep_table(&sweep));
    let served = ServedSeries::from_sweep(&sweep);
    let fid = FidelitySeries::from_sweep(&sweep);
    if artifact == "fig7" || artifact == "all" {
        if let Some(last) = served.served_percent.last() {
            println!("# paper Fig. 7: 108 satellites -> 57.75% served; measured: {last:.2}%");
        }
    }
    if artifact == "fig8" || artifact == "all" {
        if let (Some(end2end), Some(per_link)) =
            (fid.mean_fidelity.last(), fid.mean_link_fidelity.last())
        {
            println!(
                "# paper Fig. 8: average fidelity 0.96; measured at 108: end-to-end {end2end:.4}, per-link {per_link:.4}"
            );
        }
    }
}

fn extensions(scenario: &Qntn, _config: SimConfig, quick: bool) {
    use qntn_core::experiments::congestion::CongestionSweep;
    use qntn_core::experiments::night::NightOps;
    use qntn_core::experiments::stability::StabilitySweep;
    use qntn_orbit::Twilight;

    banner("Extension: darkness-gated quantum links (night ops)");
    let night = NightOps {
        twilight: Twilight::Astronomical,
        satellites: if quick { 24 } else { 108 },
    }
    .run(scenario, SimConfig::default());
    println!(
        "all-cities-dark fraction (astronomical, July 1): {:.2}%",
        night.dark_percent
    );
    println!(
        "space-ground coverage: nominal {:.2}% -> night-gated {:.2}%",
        night.space_nominal_percent, night.space_night_percent
    );
    println!(
        "air-ground coverage:   nominal 100.00% -> night-gated {:.2}%",
        night.air_night_percent
    );

    banner("Extension: HAP pointing jitter (stability)");
    let experiment = if quick {
        FidelityExperiment {
            sampled_steps: 2,
            requests_per_step: 20,
            ..FidelityExperiment::quick()
        }
    } else {
        FidelityExperiment {
            sampled_steps: 10,
            requests_per_step: 50,
            ..FidelityExperiment::paper()
        }
    };
    let sweep = StabilitySweep::run(
        scenario,
        &StabilitySweep::standard_jitters_urad(),
        experiment,
    );
    println!(
        "{:>12} {:>9} {:>11} {:>9}",
        "jitter_urad", "served_%", "F_end2end", "mean_eta"
    );
    for p in &sweep.points {
        println!(
            "{:>12.1} {:>9.2} {:>11.4} {:>9.4}",
            p.jitter_urad, p.report.served_percent, p.report.mean_fidelity, p.report.mean_eta
        );
    }
    match sweep.tolerable_jitter_urad() {
        Some(j) => println!("# largest jitter still serving 100%: {j:.1} urad"),
        None => println!("# no tested jitter level served 100%"),
    }

    banner("Extension: finite pair rates (congestion)");
    let rates = [0.05, 0.2, 1.0, 5.0, 20.0];
    let sweep = CongestionSweep::run(scenario, &rates, 100, 2024);
    println!("{:>10} {:>9} {:>13}", "rate_hz", "served_%", "congested_%");
    for p in &sweep.points {
        println!(
            "{:>10.2} {:>9.2} {:>13.2}",
            p.attempt_rate_hz, p.served_percent, p.congestion_percent
        );
    }
    println!(
        "# air-ground's 100% headline needs roughly {} pair-attempts/s per link at 100 simultaneous requests",
        sweep.saturation_rate_hz().map_or("> tested".into(), |r| format!("{r:.1}"))
    );

    banner("Extension: QKD-grade service (BBM92 one-way key)");
    use qntn_core::experiments::qkd::QkdExperiment;
    let exp = if quick {
        QkdExperiment {
            sampled_steps: 5,
            requests_per_step: 20,
            ..QkdExperiment::standard()
        }
    } else {
        QkdExperiment::standard()
    };
    let air = AirGround::new(scenario, SimConfig::default());
    let ra = exp.run_air_ground(&air);
    let space = SpaceGround::new(
        scenario,
        if quick { 24 } else { 108 },
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let rs = exp.run_space_ground(&space);
    println!(
        "{:>14} {:>8} {:>8} {:>12} {:>14}",
        "architecture", "served", "w/ key", "key-capable%", "mean key frac"
    );
    for (name, r) in [("space-ground", &rs), ("air-ground", &ra)] {
        println!(
            "{name:>14} {:>8} {:>8} {:>12.2} {:>14.4}",
            r.served,
            r.key_capable,
            r.key_capable_percent(),
            r.mean_key_fraction
        );
    }
    println!("# at the paper's 0.7 threshold, 'entanglement served' is NOT 'QKD served'");

    banner("Extension: purification-rescued QKD");
    use qntn_core::experiments::purified_qkd;
    println!(
        "{:>9} {:>7} {:>10} {:>16} {:>16}",
        "eta_path", "rounds", "key_frac", "raw_pairs/output", "key_bits/raw"
    );
    for (eta, outcome) in purified_qkd::sweep(&[0.55, 0.63, 0.70, 0.80, 0.92], 8) {
        match outcome {
            Some(o) => println!(
                "{eta:>9.2} {:>7} {:>10.4} {:>16.1} {:>16.4}",
                o.rounds, o.key_fraction, o.raw_pairs_per_output, o.key_per_raw_pair
            ),
            None => println!(
                "{eta:>9.2} {:>7} {:>10} {:>16} {:>16}",
                "-", "dead", "-", "-"
            ),
        }
    }
    println!("# BBPSSW+twirl rescues satellite-path key at a multi-pair price");

    banner("Extension: heralded link layer with quantum memories");
    use qntn_net::HeraldedLink;
    // Representative relays: HAP (strong links) vs satellite (threshold-ish).
    let trials = if quick { 300 } else { 2_000 };
    println!(
        "{:>12} {:>7} {:>7} {:>10} {:>12} {:>11} {:>9}",
        "relay", "eta_a", "eta_b", "T1_s", "latency_ms", "F_delivered", "F_ideal"
    );
    for (name, ea, eb, t1) in [
        ("HAP", 0.96, 0.96, 0.05),
        ("HAP", 0.96, 0.96, 0.005),
        ("satellite", 0.75, 0.75, 0.05),
        ("satellite", 0.75, 0.75, 0.005),
    ] {
        let link = HeraldedLink {
            eta_a: ea,
            eta_b: eb,
            attempt_rate_hz: 1000.0,
            memory_t1_s: t1,
        };
        let stats = link.simulate(trials, 2024);
        println!(
            "{name:>12} {ea:>7.2} {eb:>7.2} {t1:>10.3} {:>12.3} {:>11.4} {:>9.4}",
            stats.mean_latency_s * 1000.0,
            stats.mean_fidelity,
            stats.ideal_fidelity
        );
    }
    println!("# the paper's instantaneous-distribution assumption = the T1 -> inf row");

    banner("Extension: survivability (vertex-disjoint inter-city paths)");
    use qntn_core::experiments::survivability::SurvivabilityExperiment;
    let surv = if quick {
        SurvivabilityExperiment {
            sampled_steps: 5,
            pairs_per_step: 10,
            ..SurvivabilityExperiment::standard()
        }
    } else {
        SurvivabilityExperiment::standard()
    };
    let air = AirGround::new(scenario, SimConfig::default());
    let ra = surv.run_air_ground(&air);
    let space = SpaceGround::new(
        scenario,
        if quick { 36 } else { 108 },
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let rs = surv.run_space_ground(&space);
    println!(
        "{:>14} {:>11} {:>11} {:>11} {:>8}",
        "architecture", "connected%", "redundant%", "mean_paths", "max"
    );
    for (name, r) in [("space-ground", &rs), ("air-ground", &ra)] {
        println!(
            "{name:>14} {:>11.2} {:>11.2} {:>11.2} {:>8}",
            r.connected_percent, r.redundant_percent, r.mean_disjoint_paths, r.max_disjoint_paths
        );
    }
    println!("# neither architecture offers platform redundancy: the HAP is a single\n# point of failure by construction, and Walker spacing makes simultaneous\n# double-coverage of one city pair rare even at 108 satellites");

    banner("Extension: demand alignment (business-hours weighting)");
    use qntn_core::experiments::demand;
    let r = demand::analyze(scenario, SimConfig::default(), if quick { 24 } else { 108 });
    println!(
        "space-ground coverage:            {:.2}% plain, {:.2}% demand-weighted",
        r.space_percent, r.space_weighted_percent
    );
    println!(
        "space-ground night-gated:         {:.2}% demand-weighted",
        r.space_night_weighted_percent
    );
    println!(
        "air-ground night-gated:           {:.2}% demand-weighted",
        r.air_night_weighted_percent
    );
    println!("# darkness-gated quantum service is anti-correlated with demand");

    banner("Extension: calibration sensitivity (coverage response)");
    use qntn_core::experiments::sensitivity::SensitivityTable;
    let n = if quick { 24 } else { 108 };
    let table = SensitivityTable::compute(scenario, n, 0.1);
    print!("{}", table.render());
}

fn table3(scenario: &Qntn, config: SimConfig, quick: bool) {
    banner("Table III — architecture comparison");
    let experiment = if quick {
        FidelityExperiment {
            sampled_steps: 20,
            requests_per_step: 25,
            ..FidelityExperiment::paper()
        }
    } else {
        FidelityExperiment::paper()
    };
    let r = ComparisonReport::run(scenario, config, 108, experiment);
    print!("{}", report::table3(&r));
    println!("# paper: space 55.17%/57.75%/0.96, air 100%/100%/0.98");
}

fn faults(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool) {
    banner("Fault injection — degradation vs intensity (seeded, deterministic)");
    let experiment = if quick {
        FaultExperiment::quick()
    } else {
        FaultExperiment::standard()
    };
    let sweep = experiment.run_with_options(scenario, config, parallel);
    print!("{}", report::faults_table(&sweep));
    println!("# intensity 0 = the paper's ideal-conditions assumption (bit-identical to table3);");
    println!(
        "# rates at intensity 1: {:.2} sat outages/day, {:.2} ground outages/day, {:.1} weather fronts/day",
        FaultModel::standard(0).sat_outages_per_day,
        FaultModel::standard(0).ground_outages_per_day,
        FaultModel::standard(0).weather_fronts_per_day
    );
}

/// The `timeexp` artifact: the same seeded workload served twice over the
/// identical day — per-step (the paper's simultaneous-links routing) and
/// hold-aware over time-expanded graphs at a ladder of quantum-memory
/// horizons — reporting how served percentage, waits and delivered
/// fidelity trade off. The JSON body is written atomically; horizon 0
/// with zero memory reproduces the baseline bit for bit (the differential
/// contract behind the ladder).
fn timeexp(scenario: &Qntn, config: SimConfig, cli: &Cli) -> Result<(), QntnError> {
    banner("Store-and-forward serving - memory horizons vs the per-step baseline");
    let experiment = if cli.quick {
        TimeexpExperiment::quick()
    } else {
        TimeexpExperiment::standard()
    };
    let sweep = experiment.run_with_options(scenario, config, cli.parallel);
    print!("{}", report::timeexp_table(&sweep));
    println!(
        "# {} {} requests, fidelity floor {:.2}; rescued_% counts retry- and memory-saved requests",
        experiment.requests,
        experiment.workload.name(),
        experiment.fidelity_floor
    );
    let out = cli
        .sweep
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("out/timeexp.json"));
    ensure_parent_dir(&out)?;
    atomic_write(&out, report::timeexp_json(&sweep).as_bytes())?;
    println!("wrote {}", out.display());
    Ok(())
}

/// The `overload` artifact: the overload-control surface. A flash-crowd
/// workload at a ladder of offered loads is served under capacity
/// admission and the standard overload policy (retry budgets, load
/// shedding, the degradation ladder) against fault masks at a ladder of
/// intensities. The JSON body is written atomically; with the policy
/// disabled every cell reproduces the plain admission serve bit for bit
/// (the zero-config differential contract, pinned in the serve and core
/// test suites).
fn overload(scenario: &Qntn, config: SimConfig, cli: &Cli) -> Result<(), QntnError> {
    banner("Overload control - offered load x fault intensity surface");
    let experiment = if cli.quick {
        OverloadExperiment::quick()
    } else {
        OverloadExperiment::standard()
    };
    let surface = experiment.run(scenario, config);
    print!("{}", report::overload_table(&surface));
    println!(
        "# flash-crowd workload (seed {}), capacity {:.1} pair-attempts/s per link;",
        experiment.seed, experiment.capacity.attempt_rate_hz
    );
    println!("# shed_% counts requests dropped by the overload layer (inside expired_%);");
    println!(
        "# deg_steps counts steps on any degradation rung (of {} total)",
        {
            // The surface shares one day; every cell reports the same total.
            surface
                .points
                .first()
                .map_or(0, |p| p.degrade_mode_steps.iter().sum::<u64>())
        }
    );
    let out = cli
        .sweep
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("out/overload.json"));
    ensure_parent_dir(&out)?;
    atomic_write(&out, report::overload_json(&surface).as_bytes())?;
    println!("wrote {}", out.display());
    Ok(())
}
