//! `reproduce` — regenerate every table and figure of the QNTN paper.
//!
//! ```text
//! reproduce [artifact] [--quick]
//!
//! artifacts:
//!   fig5      transmissivity vs entanglement fidelity curve
//!   fig6      coverage % vs number of satellites (full day)
//!   fig7      served requests % vs number of satellites
//!   fig8      average fidelity vs number of satellites
//!   table1    ground-node coordinates (scenario dump)
//!   table2    the 108 satellite orbital slots
//!   table3    space-ground vs air-ground comparison
//!   topology  link maps of both architectures (Figs. 1-4 data)
//!   budgets   representative FSO link budgets
//!   extensions  night-ops / HAP-jitter / congestion / QKD extensions
//!   faults    degradation vs fault intensity (outages, flaps, weather)
//!   bench     time the daily sweep (engine, naive, faulted) and write
//!             BENCH_sweep.json as a perf baseline
//!   export    write CSV/DOT artifacts for every figure into ./out/
//!   all       everything above except bench and export (default)
//!
//! --quick shrinks the workloads (for smoke tests); the default reproduces
//! the paper's full workload sizes.
//! ```

use qntn_channel::fso::{FsoChannel, FsoGeometry};
use qntn_channel::params::FsoParams;
use qntn_core::architecture::{AirGround, SpaceGround};
use qntn_core::compare::ComparisonReport;
use qntn_core::experiments::faults::FaultExperiment;
use qntn_core::experiments::fidelity::FidelityExperiment;
use qntn_core::experiments::fig5::FidelityCurve;
use qntn_core::experiments::fig6::CoverageSweep;
use qntn_core::experiments::fig7::ServedSeries;
use qntn_core::experiments::fig8::FidelitySeries;
use qntn_core::experiments::paper_constellation_sizes;
use qntn_core::experiments::sweep::{ConstellationSweep, SweepSettings};
use qntn_core::report;
use qntn_core::scenario::Qntn;
use qntn_net::faults::FaultModel;
use qntn_net::SimConfig;
use qntn_orbit::walker::paper_slots;
use qntn_orbit::PerturbationModel;

const USAGE: &str = "\
reproduce [artifact] [--quick]

artifacts:
  fig5        transmissivity vs entanglement fidelity curve
  fig6        coverage % vs number of satellites (full day)
  fig7        served requests % vs number of satellites
  fig8        average fidelity vs number of satellites
  table1      ground-node coordinates (scenario dump)
  table2      the 108 satellite orbital slots
  table3      space-ground vs air-ground comparison
  topology    link maps of both architectures (Figs. 1-4 data)
  budgets     representative FSO link budgets
  extensions  night-ops / jitter / congestion / QKD / survivability /
              demand / heralded / sensitivity extensions
  faults      degradation vs fault intensity (outages, flaps, weather;
              seeded and deterministic, with retry-with-backoff service)
  bench       wall-time the 108-satellite daily sweep three ways (engine,
              naive, engine+faults) and write BENCH_sweep.json
  export      write CSV/DOT artifacts for every figure into ./out/
  all         everything except bench and export (default)

flags:
  --quick       reduced workloads (smoke test); default is the paper's sizes
  --no-parallel run the daily sweeps on the sequential engine path
                (bit-identical results; for debugging / single-core runs)
  --help        this text
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if let Some(flag) = args
        .iter()
        .find(|a| a.starts_with("--") && *a != "--quick" && *a != "--no-parallel")
    {
        eprintln!("error: unknown flag `{flag}`\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let parallel = !args.iter().any(|a| a == "--no-parallel");
    let artifact = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);
    const ARTIFACTS: [&str; 14] = [
        "all",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table1",
        "table2",
        "table3",
        "topology",
        "budgets",
        "extensions",
        "faults",
        "bench",
        "export",
    ];
    if !ARTIFACTS.contains(&artifact) {
        eprintln!("error: unknown artifact `{artifact}`\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }

    let scenario = Qntn::standard();
    let config = SimConfig::default();

    let run = |name: &str| artifact == "all" || artifact == name;

    if run("table1") {
        table1(&scenario);
    }
    if run("table2") {
        table2();
    }
    if run("fig5") {
        fig5();
    }
    if run("budgets") {
        budgets();
    }
    if run("topology") {
        topology(&scenario, &config);
    }
    if run("fig6") {
        fig6(&scenario, config, quick, parallel);
    }
    if run("fig7") || run("fig8") {
        fig78(&scenario, config, quick, parallel, artifact);
    }
    if run("table3") {
        table3(&scenario, config, quick);
    }
    if run("extensions") {
        extensions(&scenario, config, quick);
    }
    if run("faults") {
        faults(&scenario, config, quick, parallel);
    }
    if artifact == "bench" {
        bench_sweep(&scenario, config, quick, parallel);
    }
    if artifact == "export" {
        export(&scenario, config, quick, parallel);
    }
}

/// The `bench` artifact: wall-time the full-day connectivity sweep on the
/// paper's headline constellation three ways — the window-pruned engine,
/// the naive per-step evaluator, and the engine under a standard
/// intensity-2.0 fault mask — and record the timings in `BENCH_sweep.json`
/// so future changes have a baseline to regress against. The engine and
/// naive flag vectors are asserted equal before anything is written
/// (timing a wrong answer would be worthless).
fn bench_sweep(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool) {
    use qntn_net::SweepEngine;
    use std::sync::Arc;
    use std::time::Instant;

    let n_sats = if quick { 12 } else { 108 };
    let arch = SpaceGround::new(scenario, n_sats, config, PerturbationModel::TwoBody);
    let sim = arch.sim();
    println!(
        "== BENCH: {n_sats}-satellite daily sweep ({} steps, parallel: {parallel}) ==",
        sim.steps()
    );

    let t = Instant::now();
    let engine = SweepEngine::new(sim).with_parallel(parallel);
    let engine_flags = engine.connectivity_flags();
    let engine_clean_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("engine_clean    {engine_clean_ms:>10.1} ms");

    let t = Instant::now();
    let naive_flags: Vec<bool> = (0..sim.steps())
        .map(|step| sim.lans_interconnected(&sim.active_graph_at(step)))
        .collect();
    let naive_clean_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("naive_clean     {naive_clean_ms:>10.1} ms");
    assert_eq!(
        engine_flags, naive_flags,
        "engine and naive sweeps disagree; refusing to record timings"
    );

    let t = Instant::now();
    let faults = Arc::new(FaultModel::standard(42).with_intensity(2.0).compile(sim));
    let faulted = SweepEngine::new(sim)
        .with_parallel(parallel)
        .with_faults(faults);
    let _ = faulted.connectivity_flags();
    let engine_faulted_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("engine_faulted  {engine_faulted_ms:>10.1} ms (incl. mask compile)");

    let json = format!(
        "{{\n  \"benchmark\": \"sweep_day\",\n  \"satellites\": {n_sats},\n  \"steps\": {},\n  \"parallel\": {parallel},\n  \"wall_ms\": {{\n    \"engine_clean\": {engine_clean_ms:.1},\n    \"naive_clean\": {naive_clean_ms:.1},\n    \"engine_faulted\": {engine_faulted_ms:.1}\n  }}\n}}\n",
        sim.steps()
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
}

fn export(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool) {
    use qntn_core::report;
    use std::fs;
    let dir = std::path::Path::new("out");
    fs::create_dir_all(dir).expect("create out/");
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        fs::write(&path, contents).expect("write artifact");
        println!("wrote {}", path.display());
    };

    write("fig5.csv", report::fig5_csv(&FidelityCurve::paper()));

    let sizes = if quick {
        vec![6, 36, 108]
    } else {
        paper_constellation_sizes()
    };
    let cov = CoverageSweep::run_with_options(
        scenario,
        config,
        &sizes,
        PerturbationModel::TwoBody,
        parallel,
    );
    write("fig6.csv", report::fig6_csv(&cov));

    let settings = if quick {
        SweepSettings {
            sampled_steps: 20,
            requests_per_step: 25,
            ..SweepSettings::paper()
        }
    } else {
        SweepSettings::paper()
    };
    let sweep = ConstellationSweep::run_with_options(
        scenario,
        config,
        &sizes,
        settings,
        PerturbationModel::TwoBody,
        parallel,
    );
    write("fig7_fig8.csv", report::sweep_csv(&sweep));

    let experiment = if quick {
        FidelityExperiment {
            sampled_steps: 20,
            requests_per_step: 25,
            ..FidelityExperiment::paper()
        }
    } else {
        FidelityExperiment::paper()
    };
    let cmp = ComparisonReport::run(scenario, config, *sizes.last().unwrap(), experiment);
    write("table3.txt", report::table3(&cmp));

    let air = AirGround::new(scenario, config);
    let g = air.sim().active_graph_at(0);
    write(
        "topology_air_ground.dot",
        report::topology_dot(air.sim(), &g, "QNTN air-ground (t=0)"),
    );
    let space = SpaceGround::new(scenario, 36, config, PerturbationModel::TwoBody);
    let g = space.sim().active_graph_at(0);
    write(
        "topology_space_ground_36.dot",
        report::topology_dot(space.sim(), &g, "QNTN space-ground, 36 satellites (t=0)"),
    );

    let fault_exp = if quick {
        FaultExperiment::quick()
    } else {
        FaultExperiment::standard()
    };
    let faults = fault_exp.run_with_options(scenario, config, parallel);
    write("faults.csv", report::faults_csv(&faults));

    // One satellite movement sheet, as the paper's STK workflow produced.
    let eph = SpaceGround::ephemerides(1, PerturbationModel::TwoBody);
    write("movement_sheet_sat000.csv", eph[0].to_csv());
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn table1(scenario: &Qntn) {
    banner("Table I — ground node coordinates");
    for lan in &scenario.lans {
        println!("{} ({} nodes):", lan.name, lan.nodes.len());
        for (k, n) in lan.nodes.iter().enumerate() {
            println!(
                "  {}-{k}: ({:.5}, {:.5})",
                lan.name,
                n.lat_deg(),
                n.lon_deg()
            );
        }
    }
    println!(
        "HAP: ({:.4}, {:.4}) @ {:.0} km",
        scenario.hap.lat_deg(),
        scenario.hap.lon_deg(),
        scenario.hap.alt_m / 1000.0
    );
}

fn table2() {
    banner("Table II — satellite orbital configurations (RAAN, true anomaly)");
    let slots = paper_slots();
    for (i, s) in slots.iter().enumerate() {
        print!("({:>3.0},{:>3.0}) ", s.raan_deg, s.true_anomaly_deg);
        if (i + 1) % 6 == 0 {
            println!();
        }
    }
    println!("total: {} satellites, a = 6871 km, i = 53 deg", slots.len());
}

fn fig5() {
    banner("Fig. 5 — transmissivity vs entanglement fidelity");
    let curve = FidelityCurve::paper();
    print!("{}", report::fig5_csv(&curve));
    let th = curve.threshold_for_fidelity(0.9).unwrap();
    println!("# first eta with F >= 0.9: {th:.2} (paper threshold: 0.70)");
}

fn budgets() {
    banner("Representative FSO link budgets");
    let p = FsoParams::ideal();
    let cases = [
        (
            "satellite zenith (500 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 500e3, 90f64.to_radians()),
        ),
        (
            "satellite 45 deg (690 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 690e3, 45f64.to_radians()),
        ),
        (
            "satellite 25 deg (1050 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 1050e3, 25f64.to_radians()),
        ),
        (
            "satellite 20 deg (1220 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 1220e3, 20f64.to_radians()),
        ),
        (
            "HAP->Cookeville (~78 km)",
            FsoGeometry::downlink(0.3, 30e3, 1.2, 300.0, 78e3, 22f64.to_radians()),
        ),
        (
            "ISL in-plane (6871 km)",
            FsoGeometry::downlink(1.2, 500e3, 1.2, 500e3, 6.871e6, 0.0),
        ),
    ];
    for (name, geom) in cases {
        let b = FsoChannel::new(geom, p).budget();
        println!("{name}:\n{b}\n");
    }
}

fn topology(scenario: &Qntn, config: &SimConfig) {
    use qntn_net::Snapshot;
    banner("Topology (Figs. 1-4 data)");
    let air = AirGround::new(scenario, *config);
    println!("air-ground census:");
    print!("{}", Snapshot::take(air.sim(), 0).render());
    let hap = air.hap_node();
    println!(
        "HAP links {} ground nodes (threshold {})\n",
        air.sim().active_graph_at(0).neighbors(hap).len(),
        config.threshold
    );

    let space = SpaceGround::new(scenario, 36, *config, PerturbationModel::TwoBody);
    println!("space-ground (36 sats) census:");
    print!("{}", Snapshot::take(space.sim(), 0).render());
}

fn fig6(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool) {
    banner("Fig. 6 — coverage % vs number of satellites");
    let sizes = if quick {
        vec![6, 36, 108]
    } else {
        paper_constellation_sizes()
    };
    let sweep = CoverageSweep::run_with_options(
        scenario,
        config,
        &sizes,
        PerturbationModel::TwoBody,
        parallel,
    );
    print!("{}", report::fig6_table(&sweep));
    println!(
        "# paper: 108 satellites -> 55.17% coverage; measured: {:.2}%",
        sweep.final_point().coverage_percent
    );
}

fn fig78(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool, artifact: &str) {
    banner("Fig. 7/8 — served requests and fidelity vs number of satellites");
    let sizes = if quick {
        vec![6, 36, 108]
    } else {
        paper_constellation_sizes()
    };
    let settings = if quick {
        SweepSettings {
            sampled_steps: 20,
            requests_per_step: 25,
            ..SweepSettings::paper()
        }
    } else {
        SweepSettings::paper()
    };
    let sweep = ConstellationSweep::run_with_options(
        scenario,
        config,
        &sizes,
        settings,
        PerturbationModel::TwoBody,
        parallel,
    );
    print!("{}", report::sweep_table(&sweep));
    let served = ServedSeries::from_sweep(&sweep);
    let fid = FidelitySeries::from_sweep(&sweep);
    if artifact == "fig7" || artifact == "all" {
        println!(
            "# paper Fig. 7: 108 satellites -> 57.75% served; measured: {:.2}%",
            served.served_percent.last().unwrap()
        );
    }
    if artifact == "fig8" || artifact == "all" {
        println!(
            "# paper Fig. 8: average fidelity 0.96; measured at 108: end-to-end {:.4}, per-link {:.4}",
            fid.mean_fidelity.last().unwrap(),
            fid.mean_link_fidelity.last().unwrap()
        );
    }
}

fn extensions(scenario: &Qntn, _config: SimConfig, quick: bool) {
    use qntn_core::experiments::congestion::CongestionSweep;
    use qntn_core::experiments::night::NightOps;
    use qntn_core::experiments::stability::StabilitySweep;
    use qntn_orbit::Twilight;

    banner("Extension: darkness-gated quantum links (night ops)");
    let night = NightOps {
        twilight: Twilight::Astronomical,
        satellites: if quick { 24 } else { 108 },
    }
    .run(scenario, SimConfig::default());
    println!(
        "all-cities-dark fraction (astronomical, July 1): {:.2}%",
        night.dark_percent
    );
    println!(
        "space-ground coverage: nominal {:.2}% -> night-gated {:.2}%",
        night.space_nominal_percent, night.space_night_percent
    );
    println!(
        "air-ground coverage:   nominal 100.00% -> night-gated {:.2}%",
        night.air_night_percent
    );

    banner("Extension: HAP pointing jitter (stability)");
    let experiment = if quick {
        FidelityExperiment {
            sampled_steps: 2,
            requests_per_step: 20,
            ..FidelityExperiment::quick()
        }
    } else {
        FidelityExperiment {
            sampled_steps: 10,
            requests_per_step: 50,
            ..FidelityExperiment::paper()
        }
    };
    let sweep = StabilitySweep::run(
        scenario,
        &StabilitySweep::standard_jitters_urad(),
        experiment,
    );
    println!(
        "{:>12} {:>9} {:>11} {:>9}",
        "jitter_urad", "served_%", "F_end2end", "mean_eta"
    );
    for p in &sweep.points {
        println!(
            "{:>12.1} {:>9.2} {:>11.4} {:>9.4}",
            p.jitter_urad, p.report.served_percent, p.report.mean_fidelity, p.report.mean_eta
        );
    }
    match sweep.tolerable_jitter_urad() {
        Some(j) => println!("# largest jitter still serving 100%: {j:.1} urad"),
        None => println!("# no tested jitter level served 100%"),
    }

    banner("Extension: finite pair rates (congestion)");
    let rates = [0.05, 0.2, 1.0, 5.0, 20.0];
    let sweep = CongestionSweep::run(scenario, &rates, 100, 2024);
    println!("{:>10} {:>9} {:>13}", "rate_hz", "served_%", "congested_%");
    for p in &sweep.points {
        println!(
            "{:>10.2} {:>9.2} {:>13.2}",
            p.attempt_rate_hz, p.served_percent, p.congestion_percent
        );
    }
    println!(
        "# air-ground's 100% headline needs roughly {} pair-attempts/s per link at 100 simultaneous requests",
        sweep.saturation_rate_hz().map_or("> tested".into(), |r| format!("{r:.1}"))
    );

    banner("Extension: QKD-grade service (BBM92 one-way key)");
    use qntn_core::experiments::qkd::QkdExperiment;
    let exp = if quick {
        QkdExperiment {
            sampled_steps: 5,
            requests_per_step: 20,
            ..QkdExperiment::standard()
        }
    } else {
        QkdExperiment::standard()
    };
    let air = AirGround::new(scenario, SimConfig::default());
    let ra = exp.run_air_ground(&air);
    let space = SpaceGround::new(
        scenario,
        if quick { 24 } else { 108 },
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let rs = exp.run_space_ground(&space);
    println!(
        "{:>14} {:>8} {:>8} {:>12} {:>14}",
        "architecture", "served", "w/ key", "key-capable%", "mean key frac"
    );
    for (name, r) in [("space-ground", &rs), ("air-ground", &ra)] {
        println!(
            "{name:>14} {:>8} {:>8} {:>12.2} {:>14.4}",
            r.served,
            r.key_capable,
            r.key_capable_percent(),
            r.mean_key_fraction
        );
    }
    println!("# at the paper's 0.7 threshold, 'entanglement served' is NOT 'QKD served'");

    banner("Extension: purification-rescued QKD");
    use qntn_core::experiments::purified_qkd;
    println!(
        "{:>9} {:>7} {:>10} {:>16} {:>16}",
        "eta_path", "rounds", "key_frac", "raw_pairs/output", "key_bits/raw"
    );
    for (eta, outcome) in purified_qkd::sweep(&[0.55, 0.63, 0.70, 0.80, 0.92], 8) {
        match outcome {
            Some(o) => println!(
                "{eta:>9.2} {:>7} {:>10.4} {:>16.1} {:>16.4}",
                o.rounds, o.key_fraction, o.raw_pairs_per_output, o.key_per_raw_pair
            ),
            None => println!(
                "{eta:>9.2} {:>7} {:>10} {:>16} {:>16}",
                "-", "dead", "-", "-"
            ),
        }
    }
    println!("# BBPSSW+twirl rescues satellite-path key at a multi-pair price");

    banner("Extension: heralded link layer with quantum memories");
    use qntn_net::HeraldedLink;
    // Representative relays: HAP (strong links) vs satellite (threshold-ish).
    let trials = if quick { 300 } else { 2_000 };
    println!(
        "{:>12} {:>7} {:>7} {:>10} {:>12} {:>11} {:>9}",
        "relay", "eta_a", "eta_b", "T1_s", "latency_ms", "F_delivered", "F_ideal"
    );
    for (name, ea, eb, t1) in [
        ("HAP", 0.96, 0.96, 0.05),
        ("HAP", 0.96, 0.96, 0.005),
        ("satellite", 0.75, 0.75, 0.05),
        ("satellite", 0.75, 0.75, 0.005),
    ] {
        let link = HeraldedLink {
            eta_a: ea,
            eta_b: eb,
            attempt_rate_hz: 1000.0,
            memory_t1_s: t1,
        };
        let stats = link.simulate(trials, 2024);
        println!(
            "{name:>12} {ea:>7.2} {eb:>7.2} {t1:>10.3} {:>12.3} {:>11.4} {:>9.4}",
            stats.mean_latency_s * 1000.0,
            stats.mean_fidelity,
            stats.ideal_fidelity
        );
    }
    println!("# the paper's instantaneous-distribution assumption = the T1 -> inf row");

    banner("Extension: survivability (vertex-disjoint inter-city paths)");
    use qntn_core::experiments::survivability::SurvivabilityExperiment;
    let surv = if quick {
        SurvivabilityExperiment {
            sampled_steps: 5,
            pairs_per_step: 10,
            ..SurvivabilityExperiment::standard()
        }
    } else {
        SurvivabilityExperiment::standard()
    };
    let air = AirGround::new(scenario, SimConfig::default());
    let ra = surv.run_air_ground(&air);
    let space = SpaceGround::new(
        scenario,
        if quick { 36 } else { 108 },
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let rs = surv.run_space_ground(&space);
    println!(
        "{:>14} {:>11} {:>11} {:>11} {:>8}",
        "architecture", "connected%", "redundant%", "mean_paths", "max"
    );
    for (name, r) in [("space-ground", &rs), ("air-ground", &ra)] {
        println!(
            "{name:>14} {:>11.2} {:>11.2} {:>11.2} {:>8}",
            r.connected_percent, r.redundant_percent, r.mean_disjoint_paths, r.max_disjoint_paths
        );
    }
    println!("# neither architecture offers platform redundancy: the HAP is a single\n# point of failure by construction, and Walker spacing makes simultaneous\n# double-coverage of one city pair rare even at 108 satellites");

    banner("Extension: demand alignment (business-hours weighting)");
    use qntn_core::experiments::demand;
    let r = demand::analyze(scenario, SimConfig::default(), if quick { 24 } else { 108 });
    println!(
        "space-ground coverage:            {:.2}% plain, {:.2}% demand-weighted",
        r.space_percent, r.space_weighted_percent
    );
    println!(
        "space-ground night-gated:         {:.2}% demand-weighted",
        r.space_night_weighted_percent
    );
    println!(
        "air-ground night-gated:           {:.2}% demand-weighted",
        r.air_night_weighted_percent
    );
    println!("# darkness-gated quantum service is anti-correlated with demand");

    banner("Extension: calibration sensitivity (coverage response)");
    use qntn_core::experiments::sensitivity::SensitivityTable;
    let n = if quick { 24 } else { 108 };
    let table = SensitivityTable::compute(scenario, n, 0.1);
    print!("{}", table.render());
}

fn table3(scenario: &Qntn, config: SimConfig, quick: bool) {
    banner("Table III — architecture comparison");
    let experiment = if quick {
        FidelityExperiment {
            sampled_steps: 20,
            requests_per_step: 25,
            ..FidelityExperiment::paper()
        }
    } else {
        FidelityExperiment::paper()
    };
    let r = ComparisonReport::run(scenario, config, 108, experiment);
    print!("{}", report::table3(&r));
    println!("# paper: space 55.17%/57.75%/0.96, air 100%/100%/0.98");
}

fn faults(scenario: &Qntn, config: SimConfig, quick: bool, parallel: bool) {
    banner("Fault injection — degradation vs intensity (seeded, deterministic)");
    let experiment = if quick {
        FaultExperiment::quick()
    } else {
        FaultExperiment::standard()
    };
    let sweep = experiment.run_with_options(scenario, config, parallel);
    print!("{}", report::faults_table(&sweep));
    println!("# intensity 0 = the paper's ideal-conditions assumption (bit-identical to table3);");
    println!(
        "# rates at intensity 1: {:.2} sat outages/day, {:.2} ground outages/day, {:.1} weather fronts/day",
        FaultModel::standard(0).sat_outages_per_day,
        FaultModel::standard(0).ground_outages_per_day,
        FaultModel::standard(0).weather_fronts_per_day
    );
}
