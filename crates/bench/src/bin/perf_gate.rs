//! `perf_gate` — the CI performance-regression gate over the committed
//! `BENCH_sweep.json` / `BENCH_serve.json` wall-time baselines.
//!
//! ```text
//! perf_gate --baseline PATH --fresh PATH [--tolerance X]
//! ```
//!
//! The file kind is detected from the `"benchmark"` tag. For sweep files
//! the gate compares the `engine_clean` wall time of every constellation
//! size that appears in *both* files (the top-level paper entry and each
//! `"scales"` entry); for serve files it compares the `serve` wall time
//! keyed on `(satellites, requests)`. Either way it fails when any fresh
//! time exceeds `tolerance ×` its baseline (default 2.0). The generous
//! factor is deliberate: CI machines are noisy, shared, and
//! heterogeneous, so a tight gate would flap — the gate exists to catch
//! *algorithmic* regressions (an accidental O(N²) rescan, a lost pruning
//! layer), which show up as integer multiples, not percentages. Sizes
//! present in only one file are reported and skipped, never failed:
//! adding a new `--scale` must not break the gate before a baseline
//! exists. Comparing a sweep file against a serve file is a hard error —
//! the timings measure different work.
//!
//! Exit codes: 0 within tolerance, 1 regression, 2 usage error, 3 file
//! unreadable, unparseable, or the two files are different kinds.
//!
//! The parser is a deliberately tiny hand scan over the keys it needs
//! (`"satellites"`, then the next `"engine_clean"` or `"requests"` +
//! `"serve"`), matching the hand-formatted JSON `reproduce` writes; it
//! depends on no JSON crate and, like every workspace binary, is
//! panic-free under `qntn-lint`'s `no-panic-bins` rule.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
perf_gate --baseline PATH --fresh PATH [--tolerance X]

Compares wall times per size between two bench baseline files of the
same kind (BENCH_sweep.json: engine_clean per constellation size;
BENCH_serve.json: serve time per satellites x requests cell); exits 1
when the fresh run regresses by more than the tolerance factor
(default 2.0) at any size.

exit codes:
  0  every common size is within tolerance
  1  at least one size regressed
  2  usage error
  3  a file could not be read or parsed, or the kinds differ
";

struct Args {
    baseline: PathBuf,
    fresh: PathBuf,
    tolerance: f64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
        *i += 1;
        args.get(*i)
            .map(String::as_str)
            .ok_or_else(|| format!("flag `{flag}` needs a value"))
    }

    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 2.0;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--baseline" => baseline = Some(PathBuf::from(value(args, &mut i, a)?)),
            "--fresh" => fresh = Some(PathBuf::from(value(args, &mut i, a)?)),
            "--tolerance" => {
                let raw = value(args, &mut i, a)?;
                tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 1.0)
                    .ok_or_else(|| {
                        format!("flag `--tolerance`: need a finite factor >= 1, got `{raw}`")
                    })?;
            }
            _ => return Err(format!("unknown argument `{a}`")),
        }
        i += 1;
    }
    Ok(Args {
        baseline: baseline.ok_or("missing required flag `--baseline`")?,
        fresh: fresh.ok_or("missing required flag `--fresh`")?,
        tolerance,
    })
}

/// One measurement: a sweep entry keys on `satellites` alone
/// (`requests` is 0), a serve entry on `(satellites, requests)`.
struct Entry {
    satellites: u64,
    requests: u64,
    wall_ms: f64,
}

impl Entry {
    fn label(&self) -> String {
        if self.requests == 0 {
            format!("{:>6} sats", self.satellites)
        } else {
            format!("{:>6} sats x {} req", self.satellites, self.requests)
        }
    }
}

/// Scan for `key` at or after `from`; returns the offset just past the
/// key and the raw number token that follows its colon.
fn number_after<'a>(text: &'a str, key: &str, from: usize) -> Option<(usize, &'a str)> {
    let at = text[from..].find(key)? + from + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let len = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    Some((at, &rest[..len]))
}

fn parse_u64(raw: &str, key: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("bad {key} value `{raw}`"))
}

fn parse_f64(raw: &str, key: &str) -> Result<f64, String> {
    raw.parse::<f64>()
        .map_err(|_| format!("bad {key} value `{raw}`"))
}

/// Pair every `"satellites": N` with the next `"engine_clean": X` — the
/// shape `reproduce bench` writes (the top-level paper entry and each
/// scales entry both put the size before the timing block).
fn parse_sweep(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    let mut from = 0;
    while let Some((at, sats_raw)) = number_after(text, "\"satellites\"", from) {
        let satellites = parse_u64(sats_raw, "\"satellites\"")?;
        let (clean_at, clean_raw) = number_after(text, "\"engine_clean\"", at)
            .ok_or_else(|| format!("no \"engine_clean\" after \"satellites\": {satellites}"))?;
        entries.push(Entry {
            satellites,
            requests: 0,
            wall_ms: parse_f64(clean_raw, "\"engine_clean\"")?,
        });
        from = clean_at;
    }
    if entries.is_empty() {
        return Err("no (satellites, engine_clean) entries found".into());
    }
    Ok(entries)
}

/// Pair every `"satellites": N` with the following `"requests": M` and
/// `"serve": X` — the shape `reproduce serve` writes to
/// `BENCH_serve.json` (one entry per file today, but the scan is a loop
/// so a future multi-cell baseline keeps working).
fn parse_serve(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    let mut from = 0;
    while let Some((at, sats_raw)) = number_after(text, "\"satellites\"", from) {
        let satellites = parse_u64(sats_raw, "\"satellites\"")?;
        let (_, req_raw) = number_after(text, "\"requests\"", at)
            .ok_or_else(|| format!("no \"requests\" after \"satellites\": {satellites}"))?;
        let (serve_at, serve_raw) = number_after(text, "\"serve\"", at)
            .ok_or_else(|| format!("no \"serve\" after \"satellites\": {satellites}"))?;
        entries.push(Entry {
            satellites,
            requests: parse_u64(req_raw, "\"requests\"")?,
            wall_ms: parse_f64(serve_raw, "\"serve\"")?,
        });
        from = serve_at;
    }
    if entries.is_empty() {
        return Err("no (satellites, requests, serve) entries found".into());
    }
    Ok(entries)
}

fn load(path: &Path) -> Result<(&'static str, Vec<Entry>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let with_path = |e: String| format!("{}: {e}", path.display());
    if text.contains("\"benchmark\": \"serve_day\"") {
        Ok(("serve_day", parse_serve(&text).map_err(with_path)?))
    } else {
        Ok(("sweep_day", parse_sweep(&text).map_err(with_path)?))
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let ((base_kind, baseline), (fresh_kind, fresh)) =
        match (load(&args.baseline), load(&args.fresh)) {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        };
    if base_kind != fresh_kind {
        eprintln!("error: cannot compare a {base_kind} baseline against a {fresh_kind} fresh run");
        return ExitCode::from(3);
    }

    let mut regressed = false;
    let mut compared = 0;
    for f in &fresh {
        let Some(b) = baseline
            .iter()
            .find(|b| b.satellites == f.satellites && b.requests == f.requests)
        else {
            println!(
                "{}: no baseline entry, skipped (fresh {:.1} ms)",
                f.label(),
                f.wall_ms
            );
            continue;
        };
        compared += 1;
        let limit = b.wall_ms * args.tolerance;
        let ratio = if b.wall_ms > 0.0 {
            f.wall_ms / b.wall_ms
        } else {
            f64::INFINITY
        };
        let verdict = if f.wall_ms > limit {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{}: baseline {:.1} ms, fresh {:.1} ms ({ratio:.2}x, limit {:.1}x) {verdict}",
            f.label(),
            b.wall_ms,
            f.wall_ms,
            args.tolerance
        );
    }
    if compared == 0 {
        eprintln!("error: the two files share no constellation size");
        return ExitCode::from(3);
    }
    if regressed {
        eprintln!("perf gate: FAILED (>{}x regression)", args.tolerance);
        ExitCode::from(1)
    } else {
        println!("perf gate: ok ({compared} size(s) compared)");
        ExitCode::SUCCESS
    }
}
