//! `perf_gate` — the CI performance-regression gate over `BENCH_sweep.json`.
//!
//! ```text
//! perf_gate --baseline PATH --fresh PATH [--tolerance X]
//! ```
//!
//! Compares the `engine_clean` wall time of every constellation size that
//! appears in *both* files (the top-level paper entry and each `"scales"`
//! entry) and fails when any fresh time exceeds `tolerance ×` its baseline
//! (default 2.0). The generous factor is deliberate: CI machines are
//! noisy, shared, and heterogeneous, so a tight gate would flap — the gate
//! exists to catch *algorithmic* regressions (an accidental O(N²) rescan,
//! a lost pruning layer), which show up as integer multiples, not
//! percentages. Sizes present in only one file are reported and skipped,
//! never failed: adding a new `--scale` must not break the gate before a
//! baseline exists.
//!
//! Exit codes: 0 within tolerance, 1 regression, 2 usage error, 3 file
//! unreadable or unparseable.
//!
//! The parser is a deliberately tiny hand scan over the two keys it needs
//! (`"satellites"`, then the next `"engine_clean"`), matching the
//! hand-formatted JSON `reproduce bench` writes; it depends on no JSON
//! crate and, like every workspace binary, is panic-free under
//! `qntn-lint`'s `no-panic-bins` rule.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
perf_gate --baseline PATH --fresh PATH [--tolerance X]

Compares engine_clean wall times per constellation size between two
BENCH_sweep.json files; exits 1 when the fresh run regresses by more
than the tolerance factor (default 2.0) at any size.

exit codes:
  0  every common size is within tolerance
  1  at least one size regressed
  2  usage error
  3  a file could not be read or parsed
";

struct Args {
    baseline: PathBuf,
    fresh: PathBuf,
    tolerance: f64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
        *i += 1;
        args.get(*i)
            .map(String::as_str)
            .ok_or_else(|| format!("flag `{flag}` needs a value"))
    }

    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 2.0;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--baseline" => baseline = Some(PathBuf::from(value(args, &mut i, a)?)),
            "--fresh" => fresh = Some(PathBuf::from(value(args, &mut i, a)?)),
            "--tolerance" => {
                let raw = value(args, &mut i, a)?;
                tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 1.0)
                    .ok_or_else(|| {
                        format!("flag `--tolerance`: need a finite factor >= 1, got `{raw}`")
                    })?;
            }
            _ => return Err(format!("unknown argument `{a}`")),
        }
        i += 1;
    }
    Ok(Args {
        baseline: baseline.ok_or("missing required flag `--baseline`")?,
        fresh: fresh.ok_or("missing required flag `--fresh`")?,
        tolerance,
    })
}

/// One `(satellites, engine_clean_ms)` measurement of a bench file.
struct Entry {
    satellites: u64,
    engine_clean_ms: f64,
}

/// Scan `text` for every `"satellites": N` and pair it with the next
/// `"engine_clean": X`. This is exactly the shape `reproduce bench`
/// writes: the top-level paper entry and each scales entry both put the
/// size before the timing block.
fn parse_entries(text: &str) -> Result<Vec<Entry>, String> {
    fn number_after<'a>(text: &'a str, key: &str, from: usize) -> Option<(usize, &'a str)> {
        let at = text[from..].find(key)? + from + key.len();
        let rest = text[at..].trim_start_matches([':', ' ']);
        let len = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        Some((at, &rest[..len]))
    }

    let mut entries = Vec::new();
    let mut from = 0;
    while let Some((at, sats_raw)) = number_after(text, "\"satellites\"", from) {
        let satellites = sats_raw
            .parse::<u64>()
            .map_err(|_| format!("bad \"satellites\" value `{sats_raw}`"))?;
        let (clean_at, clean_raw) = number_after(text, "\"engine_clean\"", at)
            .ok_or_else(|| format!("no \"engine_clean\" after \"satellites\": {satellites}"))?;
        let engine_clean_ms = clean_raw
            .parse::<f64>()
            .map_err(|_| format!("bad \"engine_clean\" value `{clean_raw}`"))?;
        entries.push(Entry {
            satellites,
            engine_clean_ms,
        });
        from = clean_at;
    }
    if entries.is_empty() {
        return Err("no (satellites, engine_clean) entries found".into());
    }
    Ok(entries)
}

fn load(path: &Path) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_entries(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (baseline, fresh) = match (load(&args.baseline), load(&args.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };

    let mut regressed = false;
    let mut compared = 0;
    for f in &fresh {
        let Some(b) = baseline.iter().find(|b| b.satellites == f.satellites) else {
            println!(
                "{:>6} sats: no baseline entry, skipped (fresh {:.1} ms)",
                f.satellites, f.engine_clean_ms
            );
            continue;
        };
        compared += 1;
        let limit = b.engine_clean_ms * args.tolerance;
        let ratio = if b.engine_clean_ms > 0.0 {
            f.engine_clean_ms / b.engine_clean_ms
        } else {
            f64::INFINITY
        };
        let verdict = if f.engine_clean_ms > limit {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:>6} sats: baseline {:.1} ms, fresh {:.1} ms ({ratio:.2}x, limit {:.1}x) {verdict}",
            f.satellites, b.engine_clean_ms, f.engine_clean_ms, args.tolerance
        );
    }
    if compared == 0 {
        eprintln!("error: the two files share no constellation size");
        return ExitCode::from(3);
    }
    if regressed {
        eprintln!("perf gate: FAILED (>{}x regression)", args.tolerance);
        ExitCode::from(1)
    } else {
        println!("perf gate: ok ({compared} size(s) compared)");
        ExitCode::SUCCESS
    }
}
