//! Benches for the extension experiments: night ops, stability,
//! congestion, QKD, purification, heralded link layer, fleet and
//! sensitivity — each on a reduced workload, same code path as the
//! `reproduce extensions` artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qntn_core::architecture::AirGround;
use qntn_core::experiments::congestion::CongestionSweep;
use qntn_core::experiments::fidelity::FidelityExperiment;
use qntn_core::experiments::fleet::HapFleet;
use qntn_core::experiments::purified_qkd;
use qntn_core::experiments::qkd::QkdExperiment;
use qntn_core::experiments::sensitivity::SensitivityTable;
use qntn_core::experiments::stability::StabilitySweep;
use qntn_core::scenario::Qntn;
use qntn_net::{HeraldedLink, SimConfig};

fn ext_stability(c: &mut Criterion) {
    let q = Qntn::standard();
    let mut g = c.benchmark_group("ext_stability");
    g.sample_size(10);
    g.bench_function("three_jitters_quick", |b| {
        let exp = FidelityExperiment {
            sampled_steps: 2,
            requests_per_step: 10,
            ..FidelityExperiment::quick()
        };
        b.iter(|| {
            black_box(
                StabilitySweep::run(&q, black_box(&[0.0, 4.0, 16.0]), exp)
                    .points
                    .len(),
            )
        })
    });
    g.finish();
}

fn ext_congestion(c: &mut Criterion) {
    let q = Qntn::standard();
    let mut g = c.benchmark_group("ext_congestion");
    g.sample_size(10);
    g.bench_function("rate_sweep_60req", |b| {
        b.iter(|| {
            black_box(
                CongestionSweep::run(&q, black_box(&[0.1, 1.0, 10.0]), 60, 7)
                    .points
                    .len(),
            )
        })
    });
    g.finish();
}

fn ext_qkd(c: &mut Criterion) {
    let q = Qntn::standard();
    let air = AirGround::standard(&q);
    let mut g = c.benchmark_group("ext_qkd");
    g.sample_size(10);
    g.bench_function("air_ground_quick", |b| {
        let exp = QkdExperiment {
            sampled_steps: 3,
            requests_per_step: 15,
            seed: 7,
        };
        b.iter(|| black_box(exp.run_air_ground(&air).mean_key_fraction))
    });
    g.bench_function("purification_pump_eta063", |b| {
        b.iter(|| black_box(purified_qkd::pump_until_key(black_box(0.63), 8)))
    });
    g.finish();
}

fn ext_heralded(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_heralded");
    g.sample_size(10);
    let link = HeraldedLink {
        eta_a: 0.8,
        eta_b: 0.7,
        attempt_rate_hz: 1000.0,
        memory_t1_s: 0.05,
    };
    g.bench_function("simulate_200_deliveries", |b| {
        b.iter(|| black_box(link.simulate(200, 42).mean_fidelity))
    });
    g.finish();
}

fn ext_fleet_and_sensitivity(c: &mut Criterion) {
    let q = Qntn::standard();
    let mut g = c.benchmark_group("ext_fleet_sensitivity");
    g.sample_size(10);
    g.bench_function("fleet_construction", |b| {
        b.iter(|| {
            black_box(
                HapFleet::per_city(&q, 30_000.0, SimConfig::default())
                    .hap_nodes()
                    .len(),
            )
        })
    });
    g.bench_function("sensitivity_6sats", |b| {
        b.iter(|| black_box(SensitivityTable::compute(&q, 6, 0.1).responses.len()))
    });
    g.finish();
}

criterion_group!(
    extensions,
    ext_stability,
    ext_congestion,
    ext_qkd,
    ext_heralded,
    ext_fleet_and_sensitivity
);
criterion_main!(extensions);
