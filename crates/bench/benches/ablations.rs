//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **A1 routing metric**: the paper's additive 1/(η+ε) vs the
//!   fidelity-optimal max-product metric vs hop count.
//! - **A2 elevation mode**: geometric per-pass elevation vs the paper's
//!   fixed π/9 parameter.
//! - **A3 propagation**: two-body vs J2-secular force models.
//! - **weather**: ideal vs degraded conditions (the paper's future work).
//!
//! Besides timing, each ablation prints its *quality* deltas once (via
//! eprintln) so `cargo bench` output doubles as the ablation record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

use qntn_channel::params::FsoParams;
use qntn_core::architecture::SpaceGround;
use qntn_core::experiments::fidelity::FidelityExperiment;
use qntn_core::experiments::fig6::CoverageSweep;
use qntn_core::scenario::Qntn;
use qntn_net::requests::{sample_steps, sweep};
use qntn_net::SimConfig;
use qntn_orbit::PerturbationModel;
use qntn_routing::RouteMetric;

fn ablation_routing_metric(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let arch = SpaceGround::new(
        &scenario,
        36,
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let steps = sample_steps(arch.sim().steps(), 12);

    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!("\n[A1 routing metric @ 36 sats, 12 steps x 40 req]");
        for metric in [
            RouteMetric::PaperInverseEta,
            RouteMetric::NegLogEta,
            RouteMetric::HopCount,
        ] {
            let s = sweep(arch.sim(), &steps, 40, 2024, metric);
            eprintln!(
                "  {:<24} served {:>5.1}%  F_end2end {:.4}  eta {:.4}  hops {:.2}",
                metric.label(),
                s.served_percent(),
                s.mean_fidelity,
                s.mean_eta,
                s.mean_hops
            );
        }
    });

    let mut g = c.benchmark_group("ablation_routing_metric");
    g.sample_size(10);
    for metric in [
        RouteMetric::PaperInverseEta,
        RouteMetric::NegLogEta,
        RouteMetric::HopCount,
    ] {
        g.bench_function(metric.label(), |b| {
            b.iter(|| black_box(sweep(arch.sim(), &steps, 40, 2024, metric).served))
        });
    }
    g.finish();
}

fn ablation_elevation_mode(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let geometric = SimConfig::default();
    let fixed = SimConfig {
        fso: FsoParams::ideal_fixed_elevation(),
        ..SimConfig::default()
    };

    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!("\n[A2 elevation mode @ 12 sats, full-day coverage]");
        for (name, cfg) in [
            ("geometric", geometric),
            ("fixed pi/9 (paper's parameter)", fixed),
        ] {
            let sweep = CoverageSweep::run(&scenario, cfg, &[12], PerturbationModel::TwoBody);
            eprintln!(
                "  {:<32} coverage {:>5.2}%",
                name,
                sweep.final_point().coverage_percent
            );
        }
    });

    let mut g = c.benchmark_group("ablation_elevation_mode");
    g.sample_size(10);
    g.bench_function("geometric", |b| {
        b.iter(|| {
            black_box(
                CoverageSweep::run(&scenario, geometric, &[6], PerturbationModel::TwoBody)
                    .final_point()
                    .coverage_percent,
            )
        })
    });
    g.bench_function("fixed_pi_9", |b| {
        b.iter(|| {
            black_box(
                CoverageSweep::run(&scenario, fixed, &[6], PerturbationModel::TwoBody)
                    .final_point()
                    .coverage_percent,
            )
        })
    });
    g.finish();
}

fn ablation_propagation(c: &mut Criterion) {
    let scenario = Qntn::standard();

    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!("\n[A3 propagation model @ 12 sats, full-day coverage]");
        for (name, model) in [
            ("two-body", PerturbationModel::TwoBody),
            ("J2 secular", PerturbationModel::J2Secular),
        ] {
            let sweep = CoverageSweep::run(&scenario, SimConfig::default(), &[12], model);
            eprintln!(
                "  {:<12} coverage {:>5.2}%",
                name,
                sweep.final_point().coverage_percent
            );
        }
    });

    let mut g = c.benchmark_group("ablation_propagation");
    g.sample_size(10);
    for (name, model) in [
        ("two_body", PerturbationModel::TwoBody),
        ("j2_secular", PerturbationModel::J2Secular),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(SpaceGround::ephemerides(6, model).len()))
        });
    }
    g.finish();
}

fn ablation_weather(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let experiment = FidelityExperiment {
        sampled_steps: 6,
        requests_per_step: 25,
        ..FidelityExperiment::quick()
    };

    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!("\n[weather sensitivity @ air-ground]");
        for w in [1.0, 4.0, 16.0] {
            let cfg = SimConfig {
                fso: FsoParams::ideal().with_weather(w),
                ..SimConfig::default()
            };
            let air = qntn_core::architecture::AirGround::new(&scenario, cfg);
            let r = experiment.run_air_ground(&air);
            eprintln!(
                "  weather x{:<4} served {:>5.1}%  F {:.4}",
                w, r.served_percent, r.mean_fidelity
            );
        }
    });

    let mut g = c.benchmark_group("ablation_weather");
    g.sample_size(10);
    for w in [1.0_f64, 16.0] {
        let cfg = SimConfig {
            fso: FsoParams::ideal().with_weather(w),
            ..SimConfig::default()
        };
        g.bench_function(format!("weather_x{w}"), |b| {
            let air = qntn_core::architecture::AirGround::new(&scenario, cfg);
            b.iter(|| black_box(experiment.run_air_ground(&air).served_percent))
        });
    }
    g.finish();
}

fn ablation_night_ops(c: &mut Criterion) {
    use qntn_core::experiments::night::NightOps;
    use qntn_orbit::Twilight;
    let scenario = Qntn::standard();

    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!("\n[night ops @ 24 sats]");
        let r = NightOps {
            twilight: Twilight::Astronomical,
            satellites: 24,
        }
        .run(&scenario, SimConfig::default());
        eprintln!(
            "  dark {:.1}%  space nominal {:.2}% -> gated {:.2}%  air gated {:.2}%",
            r.dark_percent, r.space_nominal_percent, r.space_night_percent, r.air_night_percent
        );
    });

    let mut g = c.benchmark_group("ablation_night_ops");
    g.sample_size(10);
    g.bench_function("astro_12sats", |b| {
        b.iter(|| {
            black_box(
                NightOps {
                    twilight: Twilight::Astronomical,
                    satellites: 12,
                }
                .run(&scenario, SimConfig::default())
                .space_night_percent,
            )
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_routing_metric,
    ablation_elevation_mode,
    ablation_propagation,
    ablation_weather,
    ablation_night_ops
);
criterion_main!(ablations);
