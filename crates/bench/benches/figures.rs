//! One bench per figure of the paper's evaluation section. Each bench runs
//! the same code path as the `reproduce` binary on a reduced workload (the
//! full paper workload is a multi-second batch job, not a microbenchmark;
//! `reproduce` regenerates the actual numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qntn_core::experiments::fig5::FidelityCurve;
use qntn_core::experiments::fig6::CoverageSweep;
use qntn_core::experiments::sweep::{ConstellationSweep, SweepSettings};
use qntn_core::scenario::Qntn;
use qntn_net::SimConfig;
use qntn_orbit::PerturbationModel;

fn fig5_fidelity_curve(c: &mut Criterion) {
    c.bench_function("fig5_fidelity_curve_101pts", |b| {
        b.iter(|| {
            let curve = FidelityCurve::paper();
            black_box(curve.points.len())
        })
    });
}

fn fig6_coverage_sweep(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let mut g = c.benchmark_group("fig6_coverage_sweep");
    g.sample_size(10);
    g.bench_function("n6_full_day", |b| {
        b.iter(|| {
            let sweep = CoverageSweep::run(
                &scenario,
                SimConfig::default(),
                black_box(&[6]),
                PerturbationModel::TwoBody,
            );
            black_box(sweep.final_point().coverage_percent)
        })
    });
    g.finish();
}

fn fig7_served_requests(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let mut g = c.benchmark_group("fig7_served_requests");
    g.sample_size(10);
    g.bench_function("n12_quick_workload", |b| {
        b.iter(|| {
            let sweep = ConstellationSweep::run(
                &scenario,
                SimConfig::default(),
                black_box(&[12]),
                SweepSettings::quick(),
                PerturbationModel::TwoBody,
            );
            black_box(sweep.final_point().stats.served)
        })
    });
    g.finish();
}

fn fig8_fidelity_sweep(c: &mut Criterion) {
    let scenario = Qntn::standard();
    // The fidelity series shares the sweep with fig7; bench the projection
    // plus the sweep's routing-heavy inner loop on a denser step sample.
    let mut g = c.benchmark_group("fig8_fidelity_sweep");
    g.sample_size(10);
    let settings = SweepSettings {
        sampled_steps: 16,
        requests_per_step: 25,
        ..SweepSettings::quick()
    };
    g.bench_function("n18_16steps_25req", |b| {
        b.iter(|| {
            let sweep = ConstellationSweep::run(
                &scenario,
                SimConfig::default(),
                black_box(&[18]),
                settings,
                PerturbationModel::TwoBody,
            );
            black_box(sweep.final_point().stats.mean_fidelity)
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig5_fidelity_curve,
    fig6_coverage_sweep,
    fig7_served_requests,
    fig8_fidelity_sweep
);
criterion_main!(figures);
