//! Kernel microbenchmarks: the hot functions the experiments are built on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use qntn_channel::fso::{FsoChannel, FsoGeometry};
use qntn_channel::params::FsoParams;
use qntn_core::architecture::{AirGround, SpaceGround};
use qntn_core::scenario::Qntn;
use qntn_geo::{Epoch, Geodetic};
use qntn_net::faults::FaultModel;
use qntn_net::{SimConfig, SweepEngine};
use qntn_orbit::{kepler, Keplerian, PerturbationModel, Propagator};
use qntn_quantum::channels::amplitude_damping;
use qntn_quantum::eigen::hermitian_eigen;
use qntn_quantum::fidelity::{sqrt_fidelity, sqrt_fidelity_to_pure};
use qntn_quantum::protocols::{entanglement_swap, purify_bbpssw, teleport_fidelity};
use qntn_quantum::qkd::bbm92_key_fraction;
use qntn_quantum::state::{bell_phi_plus, Ket};
use qntn_routing::{bellman_ford, dijkstra, DistanceVectorRouter, RouteMetric};

fn orbit_kernels(c: &mut Criterion) {
    c.bench_function("kepler_solve_e0.3", |b| {
        let mut m = 0.0;
        b.iter(|| {
            m += 0.1;
            black_box(kepler::solve_kepler(black_box(m), 0.3))
        })
    });
    let prop = Propagator::new(
        Keplerian::circular(6_871_000.0, 0.925, 0.3, 1.0),
        Epoch::J2000,
        PerturbationModel::J2Secular,
    );
    c.bench_function("propagate_j2", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 30.0;
            black_box(prop.propagate(black_box(t)).position)
        })
    });
    c.bench_function("geodetic_from_ecef", |b| {
        let ecef = Geodetic::from_deg(36.0, -85.0, 500_000.0).to_ecef_wgs84();
        b.iter(|| black_box(Geodetic::from_ecef_wgs84(black_box(ecef))))
    });
}

fn quantum_kernels(c: &mut Criterion) {
    let bell = bell_phi_plus();
    let damped = amplitude_damping(0.8).on_qubit(1, 2).apply(&bell.density());
    c.bench_function("ad_channel_apply_2q", |b| {
        let ch = amplitude_damping(0.8).on_qubit(1, 2);
        let rho = bell.density();
        b.iter(|| black_box(ch.apply(black_box(&rho))))
    });
    c.bench_function("fidelity_pure_shortcut", |b| {
        b.iter(|| black_box(sqrt_fidelity_to_pure(black_box(&damped), &bell)))
    });
    c.bench_function("fidelity_full_uhlmann_4x4", |b| {
        let sigma = bell.density();
        b.iter(|| black_box(sqrt_fidelity(black_box(&damped), &sigma)))
    });
    c.bench_function("hermitian_eigen_4x4", |b| {
        b.iter(|| black_box(hermitian_eigen(black_box(damped.matrix())).values[0]))
    });
}

fn protocol_kernels(c: &mut Criterion) {
    let bell = bell_phi_plus();
    let damped = amplitude_damping(0.8).on_qubit(1, 2).apply(&bell.density());
    c.bench_function("entanglement_swap_16x16", |b| {
        b.iter(|| black_box(entanglement_swap(black_box(&damped), &damped)))
    });
    c.bench_function("purify_bbpssw_round", |b| {
        b.iter(|| black_box(purify_bbpssw(black_box(&damped)).success_probability))
    });
    c.bench_function("teleport_fidelity_8x8", |b| {
        let psi = Ket::plus();
        b.iter(|| black_box(teleport_fidelity(black_box(&psi), &damped)))
    });
    c.bench_function("bbm92_key_fraction", |b| {
        b.iter(|| black_box(bbm92_key_fraction(black_box(&damped))))
    });
}

fn channel_kernels(c: &mut Criterion) {
    let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, 900_000.0, 0.5);
    let ch = FsoChannel::new(geom, FsoParams::ideal());
    c.bench_function("fso_budget_exact_rytov", |b| {
        b.iter(|| black_box(ch.budget().eta_total()))
    });
    c.bench_function("fso_budget_cached_rytov", |b| {
        b.iter(|| black_box(ch.budget_with_rytov(Some(0.02)).eta_total()))
    });
}

fn network_kernels(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let air = AirGround::standard(&scenario);
    let mut g = c.benchmark_group("network");
    g.sample_size(20);
    g.bench_function("graph_build_air_ground", |b| {
        b.iter(|| black_box(air.sim().active_graph_at(black_box(100)).edge_count()))
    });
    let space = SpaceGround::new(
        &scenario,
        36,
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    g.bench_function("graph_build_space_36", |b| {
        b.iter(|| black_box(space.sim().active_graph_at(black_box(100)).edge_count()))
    });
    let graph = air.sim().active_graph_at(0);
    g.bench_function("bellman_ford_route", |b| {
        b.iter(|| black_box(bellman_ford(&graph, 0, 16, RouteMetric::PaperInverseEta)))
    });
    g.bench_function("dijkstra_route", |b| {
        b.iter(|| black_box(dijkstra(&graph, 0, 16, RouteMetric::PaperInverseEta)))
    });
    g.bench_function("algorithm1_full_tables", |b| {
        b.iter(|| {
            black_box(DistanceVectorRouter::build(&graph, RouteMetric::PaperInverseEta).cost(0, 16))
        })
    });
    g.finish();
}

fn sweep_engine_kernels(c: &mut Criterion) {
    // The tentpole benchmark: a full day (2880 steps) of LAN-connectivity
    // flags for the paper's 108-satellite constellation. `naive` rebuilds
    // and re-evaluates every host pair at every step; `engine` is the
    // contact-window-pruned, scratch-reusing SweepEngine path (its timing
    // includes the window precompute). The engine must win by >= 2x even
    // on one core, because the pruning — not the thread fan-out — carries
    // the speedup.
    let scenario = Qntn::standard();
    let space = SpaceGround::standard(&scenario);
    let sim = space.sim();
    let mut g = c.benchmark_group("sweep_day_108");
    g.sample_size(10);
    g.bench_function("naive", |b| {
        b.iter(|| {
            let flags: Vec<bool> = (0..sim.steps())
                .map(|t| sim.lans_interconnected(&sim.active_graph_at(t)))
                .collect();
            black_box(flags.iter().filter(|&&f| f).count())
        })
    });
    g.bench_function("engine", |b| {
        b.iter(|| {
            let flags = SweepEngine::new(sim).connectivity_flags();
            black_box(flags.iter().filter(|&&f| f).count())
        })
    });
    g.finish();
}

fn fault_mask_kernels(c: &mut Criterion) {
    // The fault layer's two costs: compiling a day-long schedule into the
    // per-step mask (one-off per intensity rung), and the masked full-day
    // connectivity sweep (every graph consults the mask). The masked sweep
    // should track the clean `sweep_day_108/engine` benchmark closely —
    // the mask adds O(1) bit tests per edge, not new link budgets.
    let scenario = Qntn::standard();
    let space = SpaceGround::standard(&scenario);
    let sim = space.sim();
    let model = FaultModel::standard(777);
    let mut g = c.benchmark_group("fault_mask_108");
    g.sample_size(10);
    g.bench_function("compile_day", |b| {
        b.iter(|| black_box(model.compile(black_box(sim))))
    });
    let faults = Arc::new(model.compile(sim));
    g.bench_function("masked_day_engine", |b| {
        b.iter(|| {
            let flags = SweepEngine::new(sim)
                .with_faults(faults.clone())
                .connectivity_flags();
            black_box(flags.iter().filter(|&&f| f).count())
        })
    });
    g.finish();
}

criterion_group!(
    microbench,
    orbit_kernels,
    quantum_kernels,
    protocol_kernels,
    channel_kernels,
    network_kernels,
    sweep_engine_kernels,
    fault_mask_kernels
);
criterion_main!(microbench);
