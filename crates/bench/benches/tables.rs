//! Benches for the paper's tables: scenario/constellation construction
//! (Tables I–II) and the architecture comparison (Table III).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qntn_core::architecture::{AirGround, SpaceGround};
use qntn_core::compare::ComparisonReport;
use qntn_core::experiments::fidelity::FidelityExperiment;
use qntn_core::scenario::Qntn;
use qntn_net::SimConfig;
use qntn_orbit::{paper_constellation, walker::paper_slots, PerturbationModel};

fn table1_scenario(c: &mut Criterion) {
    c.bench_function("table1_scenario_build", |b| {
        b.iter(|| {
            let q = Qntn::standard();
            black_box(q.node_count())
        })
    });
}

fn table2_constellation(c: &mut Criterion) {
    c.bench_function("table2_slots_108", |b| {
        b.iter(|| black_box(paper_slots().len()))
    });
    c.bench_function("table2_elements_108", |b| {
        b.iter(|| black_box(paper_constellation(108).len()))
    });
}

fn table3_comparison(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let mut g = c.benchmark_group("table3_comparison");
    g.sample_size(10);
    g.bench_function("n12_quick", |b| {
        b.iter(|| {
            let r = ComparisonReport::run(
                &scenario,
                SimConfig::default(),
                black_box(12),
                FidelityExperiment::quick(),
            );
            black_box(r.fidelity_gain())
        })
    });
    g.finish();
}

fn architecture_construction(c: &mut Criterion) {
    let scenario = Qntn::standard();
    let mut g = c.benchmark_group("architecture_construction");
    g.sample_size(10);
    g.bench_function("air_ground_full_day", |b| {
        b.iter(|| {
            let a = AirGround::standard(&scenario);
            black_box(a.sim().hosts().len())
        })
    });
    g.bench_function("space_ground_12sats_full_day", |b| {
        b.iter(|| {
            let s = SpaceGround::new(
                &scenario,
                12,
                SimConfig::default(),
                PerturbationModel::TwoBody,
            );
            black_box(s.sim().hosts().len())
        })
    });
    g.finish();
}

criterion_group!(
    tables,
    table1_scenario,
    table2_constellation,
    table3_comparison,
    architecture_construction
);
criterion_main!(tables);
