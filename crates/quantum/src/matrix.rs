//! Dense complex matrices.
//!
//! Row-major storage over [`Complex`]. Sizes in this workspace are tiny
//! (2×2 Kraus operators, 4×4 two-qubit density matrices, occasionally 8×8
//! for three-qubit extension tests), so clarity beats blocking; the only
//! performance-sensitive consumer is the Jacobi eigensolver, which works
//! in-place.

use crate::complex::{c, Complex};
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Build from a row-major slice of complex entries.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Build from a row-major slice of real entries.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Matrix {
            rows,
            cols,
            data: data.iter().map(|&x| Complex::real(x)).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[Complex] {
        &self.data
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace needs a square matrix");
        (0..self.rows).fold(Complex::ZERO, |acc, i| acc + self[(i, i)])
    }

    /// Scale every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Scale every entry by a real factor.
    pub fn scale_real(&self, k: f64) -> Matrix {
        self.scale(Complex::real(k))
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `sqrt(Σ|a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sq()).sum::<f64>().sqrt()
    }

    /// Largest absolute off-diagonal magnitude (square matrices).
    pub fn max_off_diagonal(&self) -> f64 {
        assert!(self.is_square());
        let mut m = 0.0_f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// True when `‖A − A†‖∞ ≤ tol` entrywise.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !(self[(i, j)].conj()).approx_eq(self[(j, i)], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// True when `‖A†A − I‖ ≤ tol` entrywise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let p = self.dagger() * self.clone();
        let id = Matrix::identity(self.rows);
        p.approx_eq(&id, tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(self.cols, v.len(), "shape mismatch in mat-vec product");
        let mut out = vec![Complex::ZERO; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks(self.cols)) {
            let mut acc = Complex::ZERO;
            for (a, &x) in row.iter().zip(v) {
                acc += *a * x;
            }
            *o = acc;
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for Matrix {
    type Output = Matrix;
    fn add(self, rhs: Matrix) -> Matrix {
        &self + &rhs
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for Matrix {
    type Output = Matrix;
    fn sub(self, rhs: Matrix) -> Matrix {
        &self - &rhs
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for Matrix {
    type Output = Matrix;
    fn mul(self, rhs: Matrix) -> Matrix {
        &self * &rhs
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: stride-1 access on both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

/// The Pauli matrices and friends, used across tests and channels.
pub mod pauli {
    use super::*;

    /// Pauli X.
    pub fn x() -> Matrix {
        Matrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    /// Pauli Y.
    pub fn y() -> Matrix {
        Matrix::from_rows(
            2,
            2,
            &[Complex::ZERO, c(0.0, -1.0), c(0.0, 1.0), Complex::ZERO],
        )
    }

    /// Pauli Z.
    pub fn z() -> Matrix {
        Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    /// Hadamard.
    pub fn h() -> Matrix {
        let s = 1.0 / 2.0_f64.sqrt();
        Matrix::from_real(2, 2, &[s, s, s, -s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let id = Matrix::identity(2);
        assert!((&a * &id).approx_eq(&a, 1e-15));
        assert!((&id * &a).approx_eq(&a, 1e-15));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_real(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_real(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let p = &a * &b;
        let expect = Matrix::from_real(2, 2, &[58.0, 64.0, 139.0, 154.0]);
        assert!(p.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn complex_matmul() {
        // (iI)·(iI) = -I
        let i_mat = Matrix::identity(2).scale(Complex::I);
        let p = &i_mat * &i_mat;
        assert!(p.approx_eq(&Matrix::identity(2).scale_real(-1.0), 1e-15));
    }

    #[test]
    fn dagger_involution_and_antihomomorphism() {
        let a = Matrix::from_rows(2, 2, &[c(1.0, 1.0), c(0.0, 2.0), c(3.0, 0.0), c(1.0, -1.0)]);
        let b = Matrix::from_rows(2, 2, &[c(0.5, 0.0), c(1.0, 1.0), c(0.0, -1.0), c(2.0, 2.0)]);
        assert!(a.dagger().dagger().approx_eq(&a, 1e-15));
        // (AB)† = B†A†
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_linearity_and_cyclicity() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_real(2, 2, &[0.0, 1.0, -1.0, 2.0]);
        let tr_ab = (&a * &b).trace();
        let tr_ba = (&b * &a).trace();
        assert!(tr_ab.approx_eq(tr_ba, 1e-12));
        let tr_sum = (&a + &b).trace();
        assert!(tr_sum.approx_eq(a.trace() + b.trace(), 1e-12));
    }

    #[test]
    fn kron_shapes_and_values() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let id = Matrix::identity(2);
        let k = a.kron(&id);
        assert_eq!(k.rows(), 4);
        assert_eq!(k[(0, 0)], c(1.0, 0.0));
        assert_eq!(k[(1, 1)], c(1.0, 0.0));
        assert_eq!(k[(0, 2)], c(2.0, 0.0));
        assert_eq!(k[(2, 0)], c(3.0, 0.0));
        assert_eq!(k[(2, 2)], c(4.0, 0.0));
        assert_eq!(k[(0, 1)], Complex::ZERO);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = Matrix::from_real(2, 2, &[1.0, 0.5, -1.0, 2.0]);
        let b = pauli::x();
        let c_m = pauli::z();
        let d = pauli::h();
        let lhs = &a.kron(&b) * &c_m.kron(&d);
        let rhs = (&a * &c_m).kron(&(&b * &d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli::x(), pauli::y(), pauli::z());
        // X² = Y² = Z² = I
        for p in [&x, &y, &z] {
            assert!((p * p).approx_eq(&Matrix::identity(2), 1e-15));
            assert!(p.is_hermitian(1e-15));
            assert!(p.is_unitary(1e-15));
        }
        // XY = iZ
        assert!((&x * &y).approx_eq(&z.scale(Complex::I), 1e-15));
        // Tr(X) = 0
        assert!(x.trace().approx_eq(Complex::ZERO, 1e-15));
    }

    #[test]
    fn hadamard_diagonalizes_x() {
        let h = pauli::h();
        let hxh = &(&h * &pauli::x()) * &h;
        assert!(hxh.approx_eq(&pauli::z(), 1e-12));
    }

    #[test]
    fn hermitian_and_unitary_checks() {
        let herm = Matrix::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, 1.0), c(0.0, -1.0), c(2.0, 0.0)]);
        assert!(herm.is_hermitian(1e-15));
        let not_herm = Matrix::from_rows(
            2,
            2,
            &[c(1.0, 0.1), Complex::ZERO, Complex::ZERO, Complex::ONE],
        );
        assert!(!not_herm.is_hermitian(1e-15));
        assert!(!Matrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]).is_unitary(1e-12));
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let v = [c(1.0, 0.0), c(0.0, 1.0)];
        let got = a.mul_vec(&v);
        assert!(got[0].approx_eq(c(1.0, 2.0), 1e-15));
        assert!(got[1].approx_eq(c(3.0, 4.0), 1e-15));
    }

    #[test]
    fn frobenius_norm_value() {
        let a = Matrix::from_real(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "shape mismatch in matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn max_off_diagonal_value() {
        let a = Matrix::from_real(2, 2, &[5.0, -3.0, 2.0, 7.0]);
        assert_eq!(a.max_off_diagonal(), 3.0);
    }
}
