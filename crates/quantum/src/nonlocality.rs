//! CHSH nonlocality of distributed pairs.
//!
//! Whether a distributed pair can violate the CHSH inequality is the
//! operational test behind device-independent protocols — and a second,
//! stricter notion of "useful entanglement" than fidelity. The
//! Horodecki criterion gives the maximum CHSH value of a two-qubit state in
//! closed form: with the correlation matrix `T_ij = Tr(ρ·σᵢ⊗σⱼ)`,
//!
//! ```text
//! S_max = 2·√(t₁ + t₂)
//! ```
//!
//! where `t₁ ≥ t₂` are the two largest eigenvalues of `TᵀT`. `S_max > 2`
//! means the state violates CHSH with optimally chosen settings.

use crate::eigen::hermitian_eigen;
use crate::matrix::{pauli, Matrix};
use crate::state::DensityMatrix;

/// The 3×3 correlation matrix `T_ij = Tr(ρ·σᵢ⊗σⱼ)` of a two-qubit state.
pub fn correlation_matrix(rho: &DensityMatrix) -> [[f64; 3]; 3] {
    assert_eq!(rho.dim(), 4, "correlation matrix needs a two-qubit state");
    let sigmas = [pauli::x(), pauli::y(), pauli::z()];
    let mut t = [[0.0; 3]; 3];
    for (i, si) in sigmas.iter().enumerate() {
        for (j, sj) in sigmas.iter().enumerate() {
            let op = si.kron(sj);
            t[i][j] = (&op * rho.matrix()).trace().re;
        }
    }
    t
}

/// Maximum CHSH value `S_max` over all measurement settings (Horodecki).
pub fn chsh_max(rho: &DensityMatrix) -> f64 {
    let t = correlation_matrix(rho);
    // M = TᵀT, symmetric 3×3; reuse the complex Hermitian eigensolver.
    let mut m = Matrix::zeros(3, 3);
    for i in 0..3 {
        for j in 0..3 {
            let mut acc = 0.0;
            for row in &t {
                acc += row[i] * row[j];
            }
            m[(i, j)] = crate::complex::Complex::real(acc);
        }
    }
    let eig = hermitian_eigen(&m);
    let n = eig.values.len();
    let (t1, t2) = (eig.values[n - 1].max(0.0), eig.values[n - 2].max(0.0));
    2.0 * (t1 + t2).sqrt()
}

/// True when the state can violate CHSH (`S_max > 2`).
pub fn violates_chsh(rho: &DensityMatrix) -> bool {
    chsh_max(rho) > 2.0 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::amplitude_damping;
    use crate::state::{bell_phi_plus, DensityMatrix};

    fn damped(eta: f64) -> DensityMatrix {
        amplitude_damping(eta)
            .on_qubit(1, 2)
            .apply(&bell_phi_plus().density())
    }

    #[test]
    fn bell_state_reaches_tsirelson() {
        // |Φ+⟩: S_max = 2√2 (the Tsirelson bound).
        let s = chsh_max(&bell_phi_plus().density());
        assert!((s - 2.0 * 2.0_f64.sqrt()).abs() < 1e-9, "{s}");
        assert!(violates_chsh(&bell_phi_plus().density()));
    }

    #[test]
    fn bell_correlation_matrix_is_diag_1_m1_1() {
        // T(|Φ+⟩) = diag(1, −1, 1).
        let t = correlation_matrix(&bell_phi_plus().density());
        assert!((t[0][0] - 1.0).abs() < 1e-12);
        assert!((t[1][1] + 1.0).abs() < 1e-12);
        assert!((t[2][2] - 1.0).abs() < 1e-12);
        for (i, row) in t.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    assert!(v.abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn maximally_mixed_has_zero_correlations() {
        let rho = DensityMatrix::maximally_mixed(2);
        let s = chsh_max(&rho);
        assert!(s < 1e-9, "{s}");
        assert!(!violates_chsh(&rho));
    }

    #[test]
    fn product_state_never_violates() {
        use crate::state::Ket;
        let rho = Ket::plus().density().tensor(&Ket::basis(1, 0).density());
        let s = chsh_max(&rho);
        assert!(s <= 2.0 + 1e-9, "{s}");
    }

    #[test]
    fn damped_pair_chsh_closed_form() {
        // One-sided AD(η) on |Φ+⟩: T = diag(√η, −√η, η) (plus a local z
        // offset that doesn't enter T's singular values beyond these).
        // TᵀT eigenvalues: {η, η, η²}; the two largest are η and η, so
        // S_max = 2√(2η).
        for eta in [0.1, 0.4, 0.7, 0.9, 1.0] {
            let s = chsh_max(&damped(eta));
            let expect = 2.0 * (2.0 * eta).sqrt();
            assert!((s - expect).abs() < 1e-9, "eta {eta}: {s} vs {expect}");
        }
    }

    #[test]
    fn chsh_violation_threshold_is_eta_half() {
        // S_max = 2√(2η) > 2 ⇔ η > 1/2 — so every above-threshold QNTN
        // *link* (η ≥ 0.7) violates CHSH…
        assert!(violates_chsh(&damped(0.51)));
        assert!(!violates_chsh(&damped(0.49)));
        assert!(violates_chsh(&damped(0.7)));
        // …but a two-hop satellite relay path (η ≈ 0.5·…) sits right at the
        // classical boundary: nonlocality dies before fidelity looks bad.
        assert!(!violates_chsh(&damped(0.45)));
    }

    #[test]
    fn chsh_monotone_under_damping() {
        let mut prev = 3.0;
        for eta in [1.0, 0.8, 0.6, 0.4, 0.2] {
            let s = chsh_max(&damped(eta));
            assert!(s < prev + 1e-12);
            prev = s;
        }
    }
}
