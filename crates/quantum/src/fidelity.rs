//! Entanglement fidelity (the paper's Eq. 5) in both conventions.
//!
//! For states ρ, σ the Uhlmann transition probability is
//! `F(ρ,σ) = (Tr√(√ρ σ √ρ))²` (Jozsa's convention, the form printed in the
//! paper), and its square root `√F = Tr√(√ρ σ √ρ)` is the *square-root
//! fidelity*. As derived in the crate docs, the paper's reported numbers
//! (Fig. 5: η = 0.7 ⇒ F ≈ 0.92; Table III: 0.96 / 0.98) are only
//! consistent with the square-root convention, so the experiments report
//! [`sqrt_fidelity`] while [`fidelity`] remains available.

use crate::eigen::{hermitian_eigen, psd_sqrt};
use crate::state::{DensityMatrix, Ket};

/// Square-root (Uhlmann) fidelity `Tr√(√ρ σ √ρ)` between two mixed states.
pub fn sqrt_fidelity(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), sigma.dim(), "state dimension mismatch");
    let sr = psd_sqrt(rho.matrix());
    let inner = &(&sr * sigma.matrix()) * &sr;
    // Tr√M = Σ √λᵢ over the (PSD) eigenvalues of M.
    hermitian_eigen(&inner)
        .values
        .iter()
        .map(|&v| v.max(0.0).sqrt())
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// Jozsa fidelity `(Tr√(√ρ σ √ρ))²` — the square of [`sqrt_fidelity`].
pub fn fidelity(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    let s = sqrt_fidelity(rho, sigma);
    s * s
}

/// Jozsa fidelity against a pure target: `⟨ψ|ρ|ψ⟩` (cheap special case).
pub fn fidelity_to_pure(rho: &DensityMatrix, psi: &Ket) -> f64 {
    rho.expectation(psi).clamp(0.0, 1.0)
}

/// Square-root fidelity against a pure target: `√⟨ψ|ρ|ψ⟩`.
pub fn sqrt_fidelity_to_pure(rho: &DensityMatrix, psi: &Ket) -> f64 {
    fidelity_to_pure(rho, psi).sqrt()
}

/// Closed form used throughout the QNTN experiments: the square-root
/// fidelity of one half of `|Φ+⟩` sent through an amplitude-damping channel
/// of transmissivity `eta` equals `(1 + √η)/2`.
///
/// This is the curve of the paper's Fig. 5 (η = 0.7 ⇒ 0.918 > 0.9;
/// η = 0 ⇒ 0.5; η = 1 ⇒ 1). Exactness against the full density-matrix
/// pipeline is covered by tests.
#[inline]
pub fn bell_ad_sqrt_fidelity(eta: f64) -> f64 {
    (1.0 + eta.sqrt()) / 2.0
}

/// Closed form for the Jozsa convention on the same state: `((1+√η)/2)²`.
#[inline]
pub fn bell_ad_fidelity(eta: f64) -> f64 {
    let s = bell_ad_sqrt_fidelity(eta);
    s * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::amplitude_damping;
    use crate::state::{bell_phi_minus, bell_phi_plus, DensityMatrix, Ket};

    #[test]
    fn identical_states_have_unit_fidelity() {
        let rho = bell_phi_plus().density();
        assert!((fidelity(&rho, &rho) - 1.0).abs() < 1e-9);
        assert!((sqrt_fidelity(&rho, &rho) - 1.0).abs() < 1e-9);
        let mixed = DensityMatrix::maximally_mixed(2);
        assert!((fidelity(&mixed, &mixed) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_pure_states_have_zero_fidelity() {
        let a = Ket::basis(1, 0).density();
        let b = Ket::basis(1, 1).density();
        assert!(fidelity(&a, &b) < 1e-9);
    }

    #[test]
    fn symmetry() {
        let rho = amplitude_damping(0.5)
            .on_qubit(1, 2)
            .apply(&bell_phi_plus().density());
        let sigma = bell_phi_plus().density();
        let f1 = fidelity(&rho, &sigma);
        let f2 = fidelity(&sigma, &rho);
        assert!((f1 - f2).abs() < 1e-7);
    }

    #[test]
    fn pure_shortcut_matches_general_formula() {
        let bell = bell_phi_plus();
        for eta in [0.0, 0.2, 0.7, 0.95, 1.0] {
            let rho = amplitude_damping(eta).on_qubit(1, 2).apply(&bell.density());
            let general = fidelity(&rho, &bell.density());
            let shortcut = fidelity_to_pure(&rho, &bell);
            assert!(
                (general - shortcut).abs() < 1e-7,
                "eta={eta}: {general} vs {shortcut}"
            );
        }
    }

    #[test]
    fn closed_form_matches_density_matrix_pipeline() {
        let bell = bell_phi_plus();
        for k in 0..=20 {
            let eta = f64::from(k) / 20.0;
            let rho = amplitude_damping(eta).on_qubit(1, 2).apply(&bell.density());
            let measured = sqrt_fidelity_to_pure(&rho, &bell);
            let closed = bell_ad_sqrt_fidelity(eta);
            assert!(
                (measured - closed).abs() < 1e-10,
                "eta={eta}: measured {measured}, closed {closed}"
            );
        }
    }

    #[test]
    fn paper_calibration_point() {
        // Fig. 5: transmissivity 0.7 yields fidelity > 0.9.
        let f = bell_ad_sqrt_fidelity(0.7);
        assert!(f > 0.9, "{f}");
        assert!((f - 0.918_33).abs() < 1e-4, "{f}");
        // Whereas the Jozsa convention would fall below 0.9 — the reason we
        // report the square-root convention (see crate docs).
        assert!(bell_ad_fidelity(0.7) < 0.9);
    }

    #[test]
    fn fidelity_bounds() {
        let states = [
            bell_phi_plus().density(),
            bell_phi_minus().density(),
            DensityMatrix::maximally_mixed(2),
            amplitude_damping(0.3)
                .on_qubit(0, 2)
                .apply(&bell_phi_plus().density()),
        ];
        for a in &states {
            for b in &states {
                let f = fidelity(a, b);
                assert!((0.0..=1.0 + 1e-9).contains(&f), "{f}");
            }
        }
    }

    #[test]
    fn fidelity_between_mixed_states_known_value() {
        // F(I/2, |0⟩⟨0|) = 1/2 (qubit).
        let mixed = DensityMatrix::maximally_mixed(1);
        let zero = Ket::basis(1, 0).density();
        assert!((fidelity(&mixed, &zero) - 0.5).abs() < 1e-9);
        assert!((sqrt_fidelity(&mixed, &zero) - 0.5_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_eta() {
        let bell = bell_phi_plus();
        let mut prev = -1.0;
        for k in 0..=50 {
            let eta = f64::from(k) / 50.0;
            let rho = amplitude_damping(eta).on_qubit(1, 2).apply(&bell.density());
            let f = sqrt_fidelity_to_pure(&rho, &bell);
            assert!(f >= prev - 1e-12, "eta={eta}");
            prev = f;
        }
    }

    #[test]
    fn endpoint_values() {
        assert!((bell_ad_sqrt_fidelity(0.0) - 0.5).abs() < 1e-15);
        assert!((bell_ad_sqrt_fidelity(1.0) - 1.0).abs() < 1e-15);
    }
}
