//! Complex Hermitian eigendecomposition via cyclic Jacobi rotations.
//!
//! Uhlmann fidelity needs the square root of a positive semi-definite
//! matrix, which we get from the spectral decomposition `A = VΛV†`.
//! Matrices here are at most 8×8 (three qubits), where Jacobi is simple,
//! numerically excellent and plenty fast.
//!
//! The complex rotation zeroing `a_pq = m·e^{iφ}` uses
//! `tan(2θ) = 2m / (a_pp − a_qq)` with the unitary
//!
//! ```text
//! R_pp = cosθ    R_pq = −sinθ·e^{iφ}
//! R_qp = sinθ·e^{−iφ}    R_qq = cosθ
//! ```
//!
//! so that `A ← R†AR` kills the (p,q) element while preserving hermiticity.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Result of a Hermitian eigendecomposition: `a = vectors · diag(values) · vectors†`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in ascending order (real, since the input is Hermitian).
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the matching eigenvectors.
    pub vectors: Matrix,
}

/// Eigendecompose a Hermitian matrix.
///
/// # Panics
/// Panics if `a` is not square or departs from hermiticity by more than
/// `1e-9` entrywise (catching accidental misuse early).
pub fn hermitian_eigen(a: &Matrix) -> Eigen {
    assert!(a.is_square(), "eigendecomposition needs a square matrix");
    assert!(a.is_hermitian(1e-9), "matrix is not Hermitian");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let scale = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale;
    const MAX_SWEEPS: usize = 100;

    for _ in 0..MAX_SWEEPS {
        if m.max_off_diagonal() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let mag = apq.abs();
                if mag <= tol {
                    continue;
                }
                let phi = apq.arg();
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let theta = 0.5 * (2.0 * mag).atan2(app - aqq);
                let (s, c_) = theta.sin_cos();
                let e_pos = Complex::from_polar(1.0, phi); // e^{+iφ}
                let e_neg = e_pos.conj();

                // A ← A·R (update columns p and q).
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = akp * c_ + akq * (e_neg * s);
                    m[(k, q)] = akq * c_ - akp * (e_pos * s);
                }
                // A ← R†·A (update rows p and q).
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = apk * c_ + aqk * (e_pos * s);
                    m[(q, k)] = aqk * c_ - apk * (e_neg * s);
                }
                // V ← V·R.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * c_ + vkq * (e_neg * s);
                    v[(k, q)] = vkq * c_ - vkp * (e_pos * s);
                }
            }
        }
    }

    // Extract and sort eigenpairs ascending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut vectors = Matrix::zeros(n, n);
    let mut values = Vec::with_capacity(n);
    for (col, (val, src)) in pairs.into_iter().enumerate() {
        values.push(val);
        for k in 0..n {
            vectors[(k, col)] = v[(k, src)];
        }
    }
    Eigen { values, vectors }
}

/// Apply a real function to a Hermitian matrix through its spectrum:
/// `f(A) = V·diag(f(λ))·V†`.
pub fn hermitian_function(a: &Matrix, f: impl Fn(f64) -> f64) -> Matrix {
    let eig = hermitian_eigen(a);
    let n = a.rows();
    let mut lam = Matrix::zeros(n, n);
    for (i, &val) in eig.values.iter().enumerate() {
        lam[(i, i)] = Complex::real(f(val));
    }
    &(&eig.vectors * &lam) * &eig.vectors.dagger()
}

/// Principal square root of a positive semi-definite Hermitian matrix.
///
/// Eigenvalues slightly below zero (numerical noise from channel
/// applications) are clamped to zero rather than producing NaNs.
pub fn psd_sqrt(a: &Matrix) -> Matrix {
    hermitian_function(a, |lam| lam.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;
    use crate::matrix::pauli;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut lam = Matrix::zeros(n, n);
        for (i, &v) in e.values.iter().enumerate() {
            lam[(i, i)] = Complex::real(v);
        }
        &(&e.vectors * &lam) * &e.vectors.dagger()
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_real(3, 3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = hermitian_eigen(&a);
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_spectrum() {
        let e = hermitian_eigen(&pauli::x());
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&e).approx_eq(&pauli::x(), 1e-10));
    }

    #[test]
    fn pauli_y_spectrum_complex_entries() {
        let e = hermitian_eigen(&pauli::y());
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-10));
        assert!(reconstruct(&e).approx_eq(&pauli::y(), 1e-10));
    }

    #[test]
    fn known_2x2_hermitian() {
        // [[2, 1+i], [1-i, 3]]: eigenvalues (5 ± sqrt(9))/2 = { (5-3)/2=1, 4 }.
        let a = Matrix::from_rows(2, 2, &[c(2.0, 0.0), c(1.0, 1.0), c(1.0, -1.0), c(3.0, 0.0)]);
        let e = hermitian_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-10, "{:?}", e.values);
        assert!((e.values[1] - 4.0).abs() < 1e-10, "{:?}", e.values);
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }

    #[test]
    fn random_hermitian_reconstruction() {
        // Deterministic pseudo-random Hermitian matrices of sizes 2..8.
        let mut seed = 0x9e3779b9_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in 2..=8 {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                a[(i, i)] = Complex::real(next());
                for j in (i + 1)..n {
                    let z = c(next(), next());
                    a[(i, j)] = z;
                    a[(j, i)] = z.conj();
                }
            }
            let e = hermitian_eigen(&a);
            assert!(e.vectors.is_unitary(1e-9), "n={n}");
            assert!(reconstruct(&e).approx_eq(&a, 1e-9), "n={n}");
            // Eigenvalues ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            // Trace preserved.
            let tr: f64 = e.values.iter().sum();
            assert!((tr - a.trace().re).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = Matrix::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, -2.0), c(0.0, 2.0), c(1.0, 0.0)]);
        let e = hermitian_eigen(&a);
        for (i, &lam) in e.values.iter().enumerate() {
            let v: Vec<Complex> = (0..2).map(|k| e.vectors[(k, i)]).collect();
            let av = a.mul_vec(&v);
            for k in 0..2 {
                assert!(av[k].approx_eq(v[k] * lam, 1e-10), "pair {i}");
            }
        }
    }

    #[test]
    fn sqrt_squares_back() {
        // A PSD matrix: B†B for random B.
        let b = Matrix::from_rows(2, 2, &[c(1.0, 0.5), c(0.2, -0.3), c(0.0, 1.0), c(0.7, 0.1)]);
        let a = &b.dagger() * &b;
        let s = psd_sqrt(&a);
        assert!(s.is_hermitian(1e-10));
        assert!((&s * &s).approx_eq(&a, 1e-9));
    }

    #[test]
    fn sqrt_clamps_tiny_negatives() {
        let a = Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1e-15]);
        let s = psd_sqrt(&a);
        assert!(s[(1, 1)].re.abs() < 1e-7);
        assert!(s[(0, 0)].re > 0.999_999);
    }

    #[test]
    fn hermitian_function_exponential() {
        // exp of diag(0, ln 2) = diag(1, 2).
        let a = Matrix::from_real(2, 2, &[0.0, 0.0, 0.0, std::f64::consts::LN_2]);
        let e = hermitian_function(&a, f64::exp);
        assert!((e[(0, 0)].re - 1.0).abs() < 1e-12);
        assert!((e[(1, 1)].re - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not Hermitian")]
    fn rejects_non_hermitian() {
        hermitian_eigen(&Matrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]));
    }
}
