//! Choi–Jamiołkowski representations and channel diagnostics.
//!
//! A production quantum library needs a way to *verify* that an object
//! claiming to be a channel actually is one. The Choi matrix
//! `J(Φ) = (Φ ⊗ I)(|Ω⟩⟨Ω|)` (with `|Ω⟩ = Σᵢ|ii⟩`, unnormalized) makes the
//! two defining properties checkable by linear algebra:
//!
//! - complete positivity  ⇔  `J(Φ) ⪰ 0`;
//! - trace preservation   ⇔  `Tr_out J(Φ) = I_in`.
//!
//! It also yields the average-input channel fidelity used by the
//! diagnostics below.

use crate::channels::KrausChannel;
use crate::complex::Complex;
use crate::eigen::hermitian_eigen;
use crate::matrix::Matrix;

/// The Choi matrix of a channel with input/output dimension `d`:
/// `J = Σᵢⱼ Φ(|i⟩⟨j|) ⊗ |i⟩⟨j|`, a `d² × d²` Hermitian matrix with
/// trace `d` for trace-preserving channels.
pub fn choi_matrix(channel: &KrausChannel) -> Matrix {
    let d = channel.dim();
    // J = Σ_k (K_k ⊗ I) |Ω⟩⟨Ω| (K_k ⊗ I)† with |Ω⟩ = Σ_i |i⟩|i⟩.
    let mut j = Matrix::zeros(d * d, d * d);
    for k in channel.kraus() {
        // v_k = (K ⊗ I)|Ω⟩ has amplitudes v[(a,b)] = K[a][b] at index a*d+b.
        let mut v = vec![Complex::ZERO; d * d];
        for a in 0..d {
            for b in 0..d {
                v[a * d + b] = k[(a, b)];
            }
        }
        for r in 0..d * d {
            for c in 0..d * d {
                j[(r, c)] += v[r] * v[c].conj();
            }
        }
    }
    j
}

/// Diagnostics extracted from a channel's Choi matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelDiagnostics {
    /// Smallest Choi eigenvalue (≥ 0 ⇔ completely positive).
    pub min_choi_eigenvalue: f64,
    /// Entrywise deviation of `Tr_out J` from identity (0 ⇔ trace
    /// preserving).
    pub trace_preservation_error: f64,
    /// Entanglement fidelity with the identity channel:
    /// `F_e = ⟨Ω|J|Ω⟩ / d²` — 1 only for the identity.
    pub entanglement_fidelity: f64,
    /// Average input-state fidelity `F_avg = (d·F_e + 1)/(d + 1)`
    /// (the Horodecki–Nielsen relation).
    pub average_fidelity: f64,
}

/// Run the diagnostics on a channel.
pub fn diagnose(channel: &KrausChannel) -> ChannelDiagnostics {
    let d = channel.dim();
    let j = choi_matrix(channel);

    let min_eig = hermitian_eigen(&j)
        .values
        .first()
        .copied()
        .unwrap_or(f64::NAN);

    // Tr_out: contract the first (output) factor of J ∈ (out ⊗ in).
    let mut reduced = Matrix::zeros(d, d);
    for i in 0..d {
        for jdx in 0..d {
            let mut acc = Complex::ZERO;
            for a in 0..d {
                acc += j[(a * d + i, a * d + jdx)];
            }
            reduced[(i, jdx)] = acc;
        }
    }
    let mut tp_err = 0.0f64;
    for i in 0..d {
        for jdx in 0..d {
            let expect = if i == jdx {
                Complex::ONE
            } else {
                Complex::ZERO
            };
            tp_err = tp_err.max((reduced[(i, jdx)] - expect).abs());
        }
    }

    // ⟨Ω|J|Ω⟩ = Σ_{i,j} J[(i,i),(j,j)].
    let mut omega = Complex::ZERO;
    for i in 0..d {
        for jdx in 0..d {
            omega += j[(i * d + i, jdx * d + jdx)];
        }
    }
    let f_e = omega.re / (d * d) as f64;
    let f_avg = ((d as f64) * f_e + 1.0) / (d as f64 + 1.0);

    ChannelDiagnostics {
        min_choi_eigenvalue: min_eig,
        trace_preservation_error: tp_err,
        entanglement_fidelity: f_e,
        average_fidelity: f_avg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{amplitude_damping, depolarizing, phase_damping, KrausChannel};
    use crate::matrix::pauli;

    #[test]
    fn identity_channel_diagnostics() {
        let id = KrausChannel::new("id", vec![Matrix::identity(2)]);
        let d = diagnose(&id);
        assert!(d.min_choi_eigenvalue > -1e-10);
        assert!(d.trace_preservation_error < 1e-12);
        assert!((d.entanglement_fidelity - 1.0).abs() < 1e-12);
        assert!((d.average_fidelity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn choi_trace_equals_dimension() {
        for ch in [
            amplitude_damping(0.6),
            phase_damping(0.3),
            depolarizing(0.2),
        ] {
            let j = choi_matrix(&ch);
            assert!((j.trace().re - 2.0).abs() < 1e-12, "{}", ch.name());
            assert!(j.is_hermitian(1e-12));
        }
    }

    #[test]
    fn physical_channels_are_cp_and_tp() {
        for eta in [0.0, 0.35, 0.7, 1.0] {
            let d = diagnose(&amplitude_damping(eta));
            assert!(
                d.min_choi_eigenvalue > -1e-10,
                "eta {eta}: {}",
                d.min_choi_eigenvalue
            );
            assert!(d.trace_preservation_error < 1e-10);
        }
    }

    #[test]
    fn transpose_map_is_not_cp() {
        // The canonical non-CP positive map: K-decomposition of transpose
        // does not exist; emulate by feeding "Kraus" operators that encode
        // ρ → ρ^T − which cannot be CP. We fake it with a non-physical
        // operator set and confirm the Choi test catches it.
        // ρ → XρᵀX as a "channel" via K = X·(transposition trick) is not
        // expressible; instead directly test a known non-CP Choi: the swap
        // matrix has eigenvalue −1.
        let mut swap = Matrix::zeros(4, 4);
        swap[(0, 0)] = Complex::ONE;
        swap[(3, 3)] = Complex::ONE;
        swap[(1, 2)] = Complex::ONE;
        swap[(2, 1)] = Complex::ONE;
        let eig = hermitian_eigen(&swap);
        assert!(
            eig.values[0] < -0.99,
            "swap (= Choi of transpose) has a negative eigenvalue"
        );
    }

    #[test]
    fn depolarizing_average_fidelity_closed_form() {
        // F_avg of Dep(p) = 1 − p/2 ... derive: F_e = 1 − p + p/4 ... check
        // against the Horodecki relation with the measured F_e.
        for p in [0.0, 0.25, 0.6, 1.0] {
            let d = diagnose(&depolarizing(p));
            // Entanglement fidelity of Dep(p): (1−p) + p/4... the Choi
            // overlap of the X/Y/Z terms with |Ω⟩ is 0 except Z? Compute
            // expected F_e directly: |⟨Ω|(K⊗I)|Ω⟩|²/d² summed.
            // K0 = sqrt(1-p) I -> contributes (1-p)·d²/d² ... = (1-p)
            // KX,KY: trace 0 -> 0; KZ: trace 0 -> 0.
            let expect_fe = 1.0 - p;
            assert!((d.entanglement_fidelity - expect_fe).abs() < 1e-10, "p {p}");
            let expect_avg = (2.0 * expect_fe + 1.0) / 3.0;
            assert!((d.average_fidelity - expect_avg).abs() < 1e-10);
        }
    }

    #[test]
    fn ad_entanglement_fidelity_closed_form() {
        // F_e of AD(η): |Tr K0|²/4 + |Tr K1|²/4 = (1+√η)²/4.
        for eta in [0.0, 0.4, 0.81, 1.0] {
            let d = diagnose(&amplitude_damping(eta));
            let expect = (1.0 + eta.sqrt()).powi(2) / 4.0;
            assert!(
                (d.entanglement_fidelity - expect).abs() < 1e-10,
                "eta {eta}"
            );
        }
    }

    #[test]
    fn unitary_channels_have_rank_one_choi() {
        let u = KrausChannel::new("X", vec![pauli::x()]);
        let j = choi_matrix(&u);
        let eig = hermitian_eigen(&j);
        let nonzero = eig.values.iter().filter(|v| v.abs() > 1e-9).count();
        assert_eq!(nonzero, 1, "unitary Choi rank");
        assert!((eig.values.last().unwrap() - 2.0).abs() < 1e-9);
    }
}
