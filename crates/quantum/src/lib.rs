//! # qntn-quantum — quantum states, channels and fidelity
//!
//! The paper degrades entangled states with an **amplitude-damping channel**
//! whose damping parameter is the optical transmissivity η (its Eq. 3–4) and
//! scores links by **entanglement fidelity** against the ideal Bell state
//! (its Eq. 5). This crate implements that machinery from scratch:
//!
//! - [`complex::Complex`] — complex arithmetic (no external crates).
//! - [`matrix::Matrix`] — dense complex matrices: products, adjoints,
//!   tensor (Kronecker) products, traces.
//! - [`state`] — kets, density matrices, Bell states, partial trace.
//! - [`eigen`] — complex Hermitian eigendecomposition (cyclic Jacobi),
//!   which powers the matrix square root inside Uhlmann fidelity.
//! - [`channels`] — Kraus-operator channels: amplitude damping (the paper's
//!   Eq. 3), plus phase damping, depolarizing and Pauli channels for
//!   extensions; single-qubit channels lift onto any qubit of a register.
//! - [`fidelity()`] — Uhlmann/Jozsa fidelity and the square-root fidelity.
//!
//! ## Fidelity convention
//!
//! For one half of a Bell pair through AD(η), the Jozsa fidelity
//! (Tr√(√ρ′σ√ρ′))² equals ((1+√η)/2)² — only 0.843 at η = 0.7 — while the
//! *square-root* fidelity Tr√(√ρ′σ√ρ′) equals (1+√η)/2 = 0.918, matching
//! the paper's Fig. 5 calibration ("transmissivity of 0.7 yields fidelity
//! greater than 90%"). The QNTN experiments therefore report
//! [`fidelity::sqrt_fidelity`]; both are available and tested against the
//! closed forms.

pub mod channels;
pub mod choi;
pub mod complex;
pub mod eigen;
pub mod fidelity;
pub mod gates;
pub mod matrix;
pub mod memory;
pub mod nonlocality;
pub mod protocols;
pub mod qkd;
pub mod state;

pub use channels::{amplitude_damping, depolarizing, phase_damping, KrausChannel};
pub use choi::{choi_matrix, diagnose, ChannelDiagnostics};
pub use complex::Complex;
pub use eigen::hermitian_eigen;
pub use fidelity::{fidelity, sqrt_fidelity};
pub use matrix::Matrix;
pub use memory::{ClassMemory, MemoryParams};
pub use nonlocality::{chsh_max, violates_chsh};
pub use protocols::{entanglement_swap, purify_bbpssw, teleport_fidelity};
pub use qkd::{bbm92_key_fraction, qber_x, qber_z};
pub use state::{bell_phi_plus, DensityMatrix, Ket};
