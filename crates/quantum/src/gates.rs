//! Unitary gates on multi-qubit registers.
//!
//! The repeater protocols (entanglement swapping, purification,
//! teleportation) need a handful of gates applied to specific qubits of a
//! 2–4 qubit register. Registers are tiny, so gates are materialized as full
//! `2^n × 2^n` matrices; qubit 0 is the leftmost tensor factor, matching
//! [`crate::state::Ket::tensor`].

use crate::complex::Complex;
use crate::matrix::{pauli, Matrix};
use crate::state::DensityMatrix;

/// Lift a single-qubit unitary onto qubit `target` of an `n`-qubit register.
pub fn lift_single(u: &Matrix, target: usize, n: usize) -> Matrix {
    assert_eq!(u.rows(), 2, "lift_single expects a single-qubit operator");
    assert!(target < n, "target out of range");
    let mut acc = if target == 0 {
        u.clone()
    } else {
        Matrix::identity(2)
    };
    for q in 1..n {
        let f = if q == target {
            u.clone()
        } else {
            Matrix::identity(2)
        };
        acc = acc.kron(&f);
    }
    acc
}

/// CNOT with the given control and target qubits on an `n`-qubit register,
/// built as a basis permutation.
pub fn cnot(control: usize, target: usize, n: usize) -> Matrix {
    assert!(control < n && target < n && control != target);
    let dim = 1 << n;
    let c_bit = n - 1 - control; // bit position from LSB
    let t_bit = n - 1 - target;
    let mut m = Matrix::zeros(dim, dim);
    for x in 0..dim {
        let y = if (x >> c_bit) & 1 == 1 {
            x ^ (1 << t_bit)
        } else {
            x
        };
        m[(y, x)] = Complex::ONE;
    }
    m
}

/// Hadamard on one qubit of an `n`-qubit register.
pub fn hadamard(target: usize, n: usize) -> Matrix {
    lift_single(&pauli::h(), target, n)
}

/// Pauli-X on one qubit of a register.
pub fn x_on(target: usize, n: usize) -> Matrix {
    lift_single(&pauli::x(), target, n)
}

/// Pauli-Z on one qubit of a register.
pub fn z_on(target: usize, n: usize) -> Matrix {
    lift_single(&pauli::z(), target, n)
}

/// Conjugate a density matrix by a unitary: `ρ → UρU†`.
pub fn apply_unitary(rho: &DensityMatrix, u: &Matrix) -> DensityMatrix {
    assert_eq!(u.rows(), rho.dim(), "unitary/state dimension mismatch");
    debug_assert!(u.is_unitary(1e-9), "operator is not unitary");
    DensityMatrix::new(&(u * rho.matrix()) * &u.dagger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{bell_phi_plus, Ket};

    #[test]
    fn lifted_gates_are_unitary() {
        for n in 1..=4 {
            for t in 0..n {
                assert!(hadamard(t, n).is_unitary(1e-12), "H@{t}/{n}");
                assert!(x_on(t, n).is_unitary(1e-12));
                assert!(z_on(t, n).is_unitary(1e-12));
            }
        }
        assert!(cnot(0, 1, 2).is_unitary(1e-12));
        assert!(cnot(2, 0, 3).is_unitary(1e-12));
    }

    #[test]
    fn cnot_truth_table() {
        let g = cnot(0, 1, 2);
        // |00> -> |00>, |01> -> |01>, |10> -> |11>, |11> -> |10>.
        for (input, expect) in [(0usize, 0usize), (1, 1), (2, 3), (3, 2)] {
            let v = g.mul_vec(Ket::basis(2, input).amps());
            assert!(
                v[expect].approx_eq(Complex::ONE, 1e-12),
                "{input}->{expect}"
            );
        }
    }

    #[test]
    fn cnot_reversed_control() {
        let g = cnot(1, 0, 2);
        // |01> -> |11>, |11> -> |01>.
        let v = g.mul_vec(Ket::basis(2, 0b01).amps());
        assert!(v[0b11].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn h_then_cnot_makes_bell_state() {
        // The canonical circuit: H on qubit 0 of |00>, then CNOT(0->1).
        let circuit = &cnot(0, 1, 2) * &hadamard(0, 2);
        let out = circuit.mul_vec(Ket::basis(2, 0).amps());
        let bell = bell_phi_plus();
        let overlap = out
            .iter()
            .zip(bell.amps())
            .fold(Complex::ZERO, |acc, (a, b)| acc + b.conj() * *a);
        assert!((overlap.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_unitary_preserves_state_validity() {
        let rho = bell_phi_plus().density();
        let out = apply_unitary(&rho, &cnot(0, 1, 2));
        assert!((out.matrix().trace().re - 1.0).abs() < 1e-12);
        assert!((out.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_on_flips_population() {
        let rho = Ket::basis(2, 0).density();
        let out = apply_unitary(&rho, &x_on(1, 2));
        assert!(
            (out.matrix()[(1, 1)].re - 1.0).abs() < 1e-12,
            "|00> -> |01>"
        );
    }

    #[test]
    #[should_panic(expected = "control != target")]
    fn cnot_rejects_same_qubit() {
        cnot(1, 1, 2);
    }
}
