//! Entanglement-manipulation protocols: swapping, purification,
//! teleportation.
//!
//! These are the building blocks of the quantum-repeater extension (the
//! paper's network distributes raw pairs only; its future-work section
//! points at longer chains, which need exactly these primitives):
//!
//! - [`entanglement_swap`] — Bell-state measurement on the middle qubits of
//!   two pairs, with Pauli corrections, leaving the outer qubits entangled.
//! - [`purify_bbpssw`] — one round of BBPSSW purification: two noisy pairs
//!   are consumed to (probabilistically) produce one better pair.
//! - [`teleport_fidelity`] — fidelity of teleporting an arbitrary qubit
//!   through a (possibly degraded) resource pair.
//!
//! Everything works on exact density matrices (up to 16×16), so the tests
//! can pin the textbook closed forms.

use crate::complex::Complex;
use crate::gates::{apply_unitary, cnot, lift_single};
use crate::matrix::{pauli, Matrix};
use crate::state::{bell_phi_plus, DensityMatrix, Ket};

/// The four Bell-state projectors on two qubits, with the Pauli correction
/// (applied to the *second* remaining qubit) that maps each outcome back to
/// the |Φ+⟩ frame: (projector, correction).
fn bell_outcomes() -> Vec<(Matrix, Matrix)> {
    let s = 1.0 / 2.0_f64.sqrt();
    let phi_plus = Ket::new(vec![
        Complex::real(s),
        Complex::ZERO,
        Complex::ZERO,
        Complex::real(s),
    ]);
    let phi_minus = Ket::new(vec![
        Complex::real(s),
        Complex::ZERO,
        Complex::ZERO,
        Complex::real(-s),
    ]);
    let psi_plus = Ket::new(vec![
        Complex::ZERO,
        Complex::real(s),
        Complex::real(s),
        Complex::ZERO,
    ]);
    let psi_minus = Ket::new(vec![
        Complex::ZERO,
        Complex::real(s),
        Complex::real(-s),
        Complex::ZERO,
    ]);
    let proj = |k: &Ket| {
        let d = k.dim();
        let mut m = Matrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                m[(i, j)] = k.amps()[i] * k.amps()[j].conj();
            }
        }
        m
    };
    vec![
        (proj(&phi_plus), Matrix::identity(2)),
        (proj(&phi_minus), pauli::z()),
        (proj(&psi_plus), pauli::x()),
        (proj(&psi_minus), &pauli::x() * &pauli::z()),
    ]
}

/// Partial trace over qubits 1 and 2 of a 4-qubit state, leaving (0, 3).
fn trace_out_middle(rho: &DensityMatrix) -> DensityMatrix {
    // Trace qubit 1 first (register shrinks), then what was qubit 2 is now
    // qubit 1 of the 3-qubit register.
    rho.partial_trace(1).partial_trace(1)
}

/// Entanglement swapping: given pair ρ_AB (qubits A,B) and pair ρ_CD
/// (qubits C,D), perform a Bell-state measurement on (B,C) and apply the
/// outcome's Pauli correction on D. Returns the averaged post-swap state of
/// (A,D) — deterministic, since all four outcomes are corrected.
///
/// ```
/// use qntn_quantum::protocols::entanglement_swap;
/// use qntn_quantum::state::bell_phi_plus;
/// use qntn_quantum::fidelity::fidelity_to_pure;
///
/// // Swapping two perfect pairs yields a perfect pair.
/// let bell = bell_phi_plus().density();
/// let out = entanglement_swap(&bell, &bell);
/// assert!((fidelity_to_pure(&out, &bell_phi_plus()) - 1.0).abs() < 1e-9);
/// ```
pub fn entanglement_swap(rho_ab: &DensityMatrix, rho_cd: &DensityMatrix) -> DensityMatrix {
    assert_eq!(rho_ab.dim(), 4, "swap expects two-qubit pairs");
    assert_eq!(rho_cd.dim(), 4, "swap expects two-qubit pairs");
    let joint = rho_ab.tensor(rho_cd); // qubit order A,B,C,D

    let id2 = Matrix::identity(2);
    let mut out = Matrix::zeros(4, 4);
    for (projector, correction) in bell_outcomes() {
        // M = I_A ⊗ P_BC ⊗ I_D.
        let m = id2.kron(&projector).kron(&id2);
        let collapsed = &(&m * joint.matrix()) * &m.dagger();
        let p = collapsed.trace().re;
        if p < 1e-15 {
            continue;
        }
        // Trace out B,C without normalizing (weights carry the probability),
        // then correct D.
        let collapsed_dm = DensityMatrix::new(collapsed.scale_real(1.0 / p));
        let reduced = trace_out_middle(&collapsed_dm);
        let u = lift_single(&correction, 1, 2);
        let corrected = &(&u * reduced.matrix()) * &u.dagger();
        out = &out + &corrected.scale_real(p);
    }
    DensityMatrix::new(out)
}

/// Outcome of one purification round.
#[derive(Debug, Clone)]
pub struct PurifyOutcome {
    /// The surviving pair, conditioned on success.
    pub state: DensityMatrix,
    /// Probability that the round succeeds (measurements agree).
    pub success_probability: f64,
}

/// One round of BBPSSW purification on two copies of `rho` (qubit order per
/// copy: Alice, Bob). Alice and Bob each apply a CNOT from their qubit of
/// pair 1 onto their qubit of pair 2, measure pair 2 in the computational
/// basis, and keep pair 1 when the outcomes agree.
pub fn purify_bbpssw(rho: &DensityMatrix) -> PurifyOutcome {
    assert_eq!(rho.dim(), 4, "purification expects a two-qubit pair");
    // Register: (A1, B1, A2, B2) = qubits (0, 1, 2, 3).
    let joint = rho.tensor(rho);
    let stepped = apply_unitary(&joint, &cnot(0, 2, 4)); // Alice
    let stepped = apply_unitary(&stepped, &cnot(1, 3, 4)); // Bob

    // Projectors onto agreeing outcomes of qubits (2,3): |00⟩ and |11⟩.
    let dim = 16;
    let mut keep = Matrix::zeros(4, 4);
    let mut p_success = 0.0;
    for outcome in [0b00usize, 0b11usize] {
        let mut proj = Matrix::zeros(dim, dim);
        for x in 0..dim {
            if x & 0b11 == outcome {
                proj[(x, x)] = Complex::ONE;
            }
        }
        let collapsed = &(&proj * stepped.matrix()) * &proj;
        let p = collapsed.trace().re;
        if p < 1e-15 {
            continue;
        }
        p_success += p;
        // Trace out the measured pair (qubits 2,3 of 4).
        let dm = DensityMatrix::new(collapsed.scale_real(1.0 / p));
        let reduced = dm.partial_trace(3).partial_trace(2);
        keep = &keep + &reduced.matrix().scale_real(p);
    }
    assert!(
        p_success > 1e-12,
        "purification round cannot succeed on this state"
    );
    PurifyOutcome {
        state: DensityMatrix::new(keep.scale_real(1.0 / p_success)),
        success_probability: p_success,
    }
}

/// Fidelity of standard teleportation of the pure qubit `psi` through the
/// resource pair `resource` (with perfect local operations): averaged over
/// the four BSM outcomes with their Pauli corrections.
pub fn teleport_fidelity(psi: &Ket, resource: &DensityMatrix) -> f64 {
    assert_eq!(psi.dim(), 2, "teleporting one qubit");
    assert_eq!(resource.dim(), 4, "resource is a two-qubit pair");
    // Register: (S, A, B) = the state qubit, Alice's half, Bob's half.
    let joint = psi.density().tensor(resource);
    let id2 = Matrix::identity(2);
    let mut fidelity = 0.0;
    for (projector, correction) in bell_outcomes() {
        // BSM on (S, A): M = P_SA ⊗ I_B.
        let m = projector.kron(&id2);
        let collapsed = &(&m * joint.matrix()) * &m.dagger();
        let p = collapsed.trace().re;
        if p < 1e-15 {
            continue;
        }
        let dm = DensityMatrix::new(collapsed.scale_real(1.0 / p));
        // Bob's qubit after tracing out S and A (qubits 0 and 1 of 3).
        let bob = dm.partial_trace(0).partial_trace(0);
        let u = correction.clone();
        let corrected = DensityMatrix::new(&(&u * bob.matrix()) * &u.dagger());
        fidelity += p * corrected.expectation(psi);
    }
    fidelity
}

/// Twirl a two-qubit state to the Werner form with the same |Φ+⟩ fidelity:
/// `ρ → F·|Φ+⟩⟨Φ+| + (1−F)·(I − |Φ+⟩⟨Φ+|)/3`.
///
/// Full BBPSSW prescribes this (implemented physically as random bilateral
/// rotations) between purification rounds; without it, iterating the raw
/// CNOT-and-measure step on non-Werner states can *reduce* fidelity — a
/// behaviour the `repeater_chain` example demonstrates.
pub fn twirl_to_werner(rho: &DensityMatrix) -> DensityMatrix {
    assert_eq!(rho.dim(), 4, "twirling is defined for two-qubit states");
    let bell = bell_phi_plus();
    let f = rho.expectation(&bell);
    let proj = bell.density();
    let rest = Matrix::identity(4) - proj.matrix().clone();
    DensityMatrix::new(proj.matrix().scale_real(f) + rest.scale_real((1.0 - f) / 3.0))
}

/// Convenience: the fully-degraded-link workflow — swap two pairs that each
/// traversed an amplitude-damping link, as a repeater node would.
pub fn swap_damped_bell_pairs(eta1: f64, eta2: f64) -> DensityMatrix {
    let bell = bell_phi_plus().density();
    let p1 = crate::channels::amplitude_damping(eta1)
        .on_qubit(1, 2)
        .apply(&bell);
    let p2 = crate::channels::amplitude_damping(eta2)
        .on_qubit(1, 2)
        .apply(&bell);
    entanglement_swap(&p1, &p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::{fidelity_to_pure, sqrt_fidelity_to_pure};

    #[test]
    fn swapping_perfect_pairs_gives_perfect_pair() {
        let bell = bell_phi_plus().density();
        let out = entanglement_swap(&bell, &bell);
        assert!(
            (fidelity_to_pure(&out, &bell_phi_plus()) - 1.0).abs() < 1e-9,
            "F = {}",
            fidelity_to_pure(&out, &bell_phi_plus())
        );
    }

    #[test]
    fn swap_output_is_valid_state() {
        let out = swap_damped_bell_pairs(0.8, 0.6);
        assert!((out.matrix().trace().re - 1.0).abs() < 1e-9);
        assert!(out.is_valid(1e-8));
    }

    #[test]
    fn swap_is_symmetric_in_inputs() {
        let a = swap_damped_bell_pairs(0.9, 0.5);
        let b = swap_damped_bell_pairs(0.5, 0.9);
        let fa = fidelity_to_pure(&a, &bell_phi_plus());
        let fb = fidelity_to_pure(&b, &bell_phi_plus());
        assert!((fa - fb).abs() < 1e-9);
    }

    #[test]
    fn swap_fidelity_decreases_with_damping() {
        let mut prev = 1.1;
        for eta in [1.0, 0.9, 0.7, 0.5, 0.3] {
            let f = fidelity_to_pure(&swap_damped_bell_pairs(eta, eta), &bell_phi_plus());
            assert!(f < prev + 1e-12, "eta {eta}");
            prev = f;
        }
    }

    #[test]
    fn swap_never_beats_direct_transmission() {
        // Repeater without purification cannot beat the direct AD(η1η2)
        // channel's fidelity for these states.
        for (e1, e2) in [(0.9, 0.9), (0.8, 0.6), (0.95, 0.7)] {
            let swapped = swap_damped_bell_pairs(e1, e2);
            let f_swap = sqrt_fidelity_to_pure(&swapped, &bell_phi_plus());
            let f_direct = crate::fidelity::bell_ad_sqrt_fidelity(e1 * e2);
            assert!(
                f_swap <= f_direct + 1e-9,
                "({e1},{e2}): swap {f_swap} direct {f_direct}"
            );
        }
    }

    #[test]
    fn purifying_perfect_pairs_is_a_noop() {
        let bell = bell_phi_plus().density();
        let out = purify_bbpssw(&bell);
        assert!((out.success_probability - 1.0).abs() < 1e-9);
        assert!((fidelity_to_pure(&out.state, &bell_phi_plus()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn purification_improves_werner_states() {
        // BBPSSW's textbook domain: Werner states with F > 1/2 improve.
        let bell = bell_phi_plus().density();
        let mixed = DensityMatrix::maximally_mixed(2);
        for f_in in [0.6, 0.7, 0.85] {
            let p = (4.0 * f_in - 1.0) / 3.0;
            let rho = DensityMatrix::new(
                bell.matrix().scale_real(p) + mixed.matrix().scale_real(1.0 - p),
            );
            let before = fidelity_to_pure(&rho, &bell_phi_plus());
            let out = purify_bbpssw(&rho);
            let after = fidelity_to_pure(&out.state, &bell_phi_plus());
            assert!(
                after > before + 1e-6,
                "F_in {before}: F_out {after} (p_succ {})",
                out.success_probability
            );
            // Known closed form for the success probability:
            // p = F² + 2F(1-F)/3 + 5((1-F)/3)².
            let f = before;
            let expect_p = f * f + 2.0 * f * (1.0 - f) / 3.0 + 5.0 * ((1.0 - f) / 3.0).powi(2);
            assert!(
                (out.success_probability - expect_p).abs() < 1e-9,
                "p {} vs {expect_p}",
                out.success_probability
            );
        }
    }

    #[test]
    fn purification_output_closed_form() {
        // BBPSSW output fidelity: F' = (F² + ((1-F)/3)²) / p_success.
        let bell = bell_phi_plus().density();
        let mixed = DensityMatrix::maximally_mixed(2);
        let f_in = 0.75;
        let p = (4.0 * f_in - 1.0) / 3.0;
        let rho =
            DensityMatrix::new(bell.matrix().scale_real(p) + mixed.matrix().scale_real(1.0 - p));
        let out = purify_bbpssw(&rho);
        let f = f_in;
        let p_succ = f * f + 2.0 * f * (1.0 - f) / 3.0 + 5.0 * ((1.0 - f) / 3.0).powi(2);
        let expect_f = (f * f + ((1.0 - f) / 3.0).powi(2)) / p_succ;
        let got = fidelity_to_pure(&out.state, &bell_phi_plus());
        assert!((got - expect_f).abs() < 1e-9, "{got} vs {expect_f}");
    }

    #[test]
    fn twirl_preserves_bell_fidelity_and_yields_werner() {
        let rho = crate::channels::amplitude_damping(0.6)
            .on_qubit(1, 2)
            .apply(&bell_phi_plus().density());
        let w = twirl_to_werner(&rho);
        let f_before = fidelity_to_pure(&rho, &bell_phi_plus());
        let f_after = fidelity_to_pure(&w, &bell_phi_plus());
        assert!((f_before - f_after).abs() < 1e-12);
        assert!(w.is_valid(1e-9));
        // Werner form: the three non-Phi+ Bell diagonal weights are equal.
        let pm = crate::state::bell_phi_minus();
        let pp = crate::state::bell_psi_plus();
        let a = w.expectation(&pm);
        let b = w.expectation(&pp);
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn iterated_purification_with_twirl_converges_upward() {
        // The textbook recurrence: with twirling, F > 1/2 pumps toward 1.
        let bell = bell_phi_plus().density();
        let mixed = DensityMatrix::maximally_mixed(2);
        let f0 = 0.65;
        let p = (4.0 * f0 - 1.0) / 3.0;
        let mut rho =
            DensityMatrix::new(bell.matrix().scale_real(p) + mixed.matrix().scale_real(1.0 - p));
        let mut prev = f0;
        for round in 0..6 {
            let out = purify_bbpssw(&twirl_to_werner(&rho));
            rho = out.state;
            let f = fidelity_to_pure(&rho, &bell_phi_plus());
            assert!(f > prev - 1e-9, "round {round}: {f} < {prev}");
            prev = f;
        }
        assert!(prev > 0.85, "after 6 rounds: {prev}");
    }

    #[test]
    fn teleportation_through_perfect_pair_is_exact() {
        let bell = bell_phi_plus().density();
        for psi in [
            Ket::basis(1, 0),
            Ket::basis(1, 1),
            Ket::plus(),
            Ket::new(vec![Complex::real(0.6), crate::complex::c(0.0, 0.8)]),
        ] {
            let f = teleport_fidelity(&psi, &bell);
            assert!((f - 1.0).abs() < 1e-9, "{f}");
        }
    }

    #[test]
    fn teleportation_through_mixed_pair_is_classical() {
        // Resource I/4: teleportation output is maximally mixed -> F = 1/2.
        let mixed = DensityMatrix::maximally_mixed(2);
        let f = teleport_fidelity(&Ket::plus(), &mixed);
        assert!((f - 0.5).abs() < 1e-9, "{f}");
    }

    #[test]
    fn teleportation_quality_tracks_resource_quality() {
        let bell = bell_phi_plus().density();
        let mut prev = 1.1;
        for eta in [1.0, 0.8, 0.5, 0.2] {
            let resource = crate::channels::amplitude_damping(eta)
                .on_qubit(1, 2)
                .apply(&bell);
            let f = teleport_fidelity(&Ket::plus(), &resource);
            assert!(f < prev + 1e-12, "eta {eta}: {f}");
            prev = f;
        }
    }
}
