//! Quantum memories: T2-style decoherence while a Bell half is held.
//!
//! Store-and-forward entanglement distribution (ROADMAP item 2) lets a
//! node park one half of a Bell pair in a local memory and wait for a
//! better pass instead of routing on the arrival step. The price is
//! dephasing: a stored qubit decays toward the classically-correlated
//! fidelity floor of 1/2 with a characteristic time T2, the same
//! exponential register model used by QNet-MTP-style simulators. This
//! module is the single source of that decay law; everything downstream
//! (hold edges in the time-expanded graph, the serve layer's fidelity
//! accounting) derives from [`MemoryParams::hold_fidelity`] and its
//! η-space twin [`MemoryParams::hold_eta_factor`].
//!
//! ## The two faces of one decay law
//!
//! The workspace scores links in the square-root convention
//! `F = (1 + √η)/2` (see [`crate::fidelity::bell_ad_sqrt_fidelity`]), so a
//! T2 exponential toward 1/2,
//!
//! ```text
//! F(k) = 1/2 + (F₀ − 1/2)·exp(−k/T2),
//! ```
//!
//! is *exactly* a multiplicative factor in η-space: substituting
//! `2F − 1 = √η` gives `√η(k) = √η₀·exp(−k/T2)`, i.e.
//! `η(k) = η₀·exp(−2k/T2)`. Holding for `k` steps therefore composes with
//! the optical path as one more amplitude-damping stage of transmissivity
//! `exp(−2k/T2)` — the same `AD(η₁)∘AD(η₂) = AD(η₁η₂)` composition the
//! per-link pipeline already uses, which is what lets hold edges carry a
//! plain η weight through the existing routing metrics unchanged.
//!
//! ## Determinism
//!
//! Both entry points are pure `f64` arithmetic (one `exp` per call), take
//! no global state, and early-return bit-exact identities at zero hold:
//! `hold_fidelity(f0, 0) == f0` and `hold_eta_factor(0) == 1.0`, by
//! construction rather than by numerical accident. Monotonicity in the
//! hold duration and the clamps are covered by unit tests here and by
//! proptests in `tests/properties.rs`.

/// T2-style memory decay for one node class.
///
/// The unit of time is the sweep step (30 s in the paper's day), so
/// `t2_steps = 40.0` means the stored half's excess fidelity over 1/2
/// falls by `1/e` in 20 minutes. Two extremes are first-class:
/// [`MemoryParams::none`] (no memory — any hold destroys the pair) and
/// [`MemoryParams::ideal`] (lossless memory — holds are free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryParams {
    t2_steps: f64,
}

impl MemoryParams {
    /// A memory with the given T2, in sweep steps.
    ///
    /// `t2_steps` must be non-negative and not NaN (`0.0` means no usable
    /// memory, `f64::INFINITY` a lossless one).
    ///
    /// # Panics
    /// If `t2_steps` is NaN or negative.
    pub fn with_t2_steps(t2_steps: f64) -> MemoryParams {
        assert!(
            t2_steps >= 0.0,
            "memory T2 must be non-negative and not NaN, got {t2_steps}"
        );
        MemoryParams { t2_steps }
    }

    /// No memory: a qubit cannot be held at all (T2 = 0).
    pub fn none() -> MemoryParams {
        MemoryParams { t2_steps: 0.0 }
    }

    /// A lossless memory: holding costs nothing (T2 = ∞).
    pub fn ideal() -> MemoryParams {
        MemoryParams {
            t2_steps: f64::INFINITY,
        }
    }

    /// The configured T2, in sweep steps.
    pub fn t2_steps(&self) -> f64 {
        self.t2_steps
    }

    /// Whether this memory can hold a qubit for at least one step with any
    /// fidelity above the classical floor.
    pub fn can_hold(&self) -> bool {
        self.t2_steps > 0.0
    }

    /// Square-root fidelity after holding a pair of fidelity `f0` for
    /// `steps` sweep steps.
    ///
    /// Guarantees, for any fixed `f0 ∈ [0, 1]`:
    /// - **exact at zero hold**: `hold_fidelity(f0, 0) == f0` bitwise;
    /// - **monotone non-increasing** in `steps`;
    /// - **clamped** to `[min(f0, 1/2), f0]` — decay never dips below the
    ///   classical floor and never *raises* an already-classical state
    ///   (`f0 ≤ 1/2` is returned unchanged: dephasing toward 1/2 would
    ///   otherwise increase it).
    pub fn hold_fidelity(&self, f0: f64, steps: u32) -> f64 {
        if steps == 0 || f0 <= 0.5 {
            return f0;
        }
        if self.t2_steps == f64::INFINITY {
            return f0;
        }
        if self.t2_steps <= 0.0 {
            return 0.5;
        }
        let decay = (-f64::from(steps) / self.t2_steps).exp();
        (0.5 + (f0 - 0.5) * decay).clamp(0.5, f0)
    }

    /// The η-space transmissivity factor equivalent to holding for
    /// `steps` steps: `exp(−2·steps/T2)` (see the module docs for the
    /// derivation). `1.0` at zero hold (bitwise), `0.0` for a memoryless
    /// node, monotone non-increasing in `steps`.
    pub fn hold_eta_factor(&self, steps: u32) -> f64 {
        if steps == 0 {
            return 1.0;
        }
        if self.t2_steps == f64::INFINITY {
            return 1.0;
        }
        if self.t2_steps <= 0.0 {
            return 0.0;
        }
        (-2.0 * f64::from(steps) / self.t2_steps).exp()
    }

    /// The per-step η factor — the weight a single "hold one step" edge
    /// carries in the time-expanded graph.
    pub fn per_step_eta_factor(&self) -> f64 {
        self.hold_eta_factor(1)
    }
}

/// Per-node-class memory parameters: ground stations, satellites and HAPs
/// host different hardware, so each class gets its own T2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMemory {
    /// Ground stations (labs: the best cryogenics and vibration control).
    pub ground: MemoryParams,
    /// Satellites (SWaP-constrained payloads).
    pub satellite: MemoryParams,
    /// High-altitude platforms.
    pub hap: MemoryParams,
}

impl ClassMemory {
    /// No class can hold: the zero-memory configuration whose hold-aware
    /// serve must reproduce per-step routing bit-identically.
    pub fn none() -> ClassMemory {
        ClassMemory {
            ground: MemoryParams::none(),
            satellite: MemoryParams::none(),
            hap: MemoryParams::none(),
        }
    }

    /// The same memory on every class.
    pub fn uniform(params: MemoryParams) -> ClassMemory {
        ClassMemory {
            ground: params,
            satellite: params,
            hap: params,
        }
    }

    /// The default scenario axis: ground labs hold for T2 = 40 steps
    /// (20 min of the paper's 30 s steps), flying platforms for 20 steps.
    pub fn standard() -> ClassMemory {
        ClassMemory {
            ground: MemoryParams::with_t2_steps(40.0),
            satellite: MemoryParams::with_t2_steps(20.0),
            hap: MemoryParams::with_t2_steps(20.0),
        }
    }

    /// Whether any class can hold at all.
    pub fn can_hold_any(&self) -> bool {
        self.ground.can_hold() || self.satellite.can_hold() || self.hap.can_hold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::bell_ad_sqrt_fidelity;

    #[test]
    fn zero_hold_is_bitwise_identity() {
        let m = MemoryParams::with_t2_steps(17.0);
        for f0 in [0.0, 0.3, 0.5, 0.500001, 0.7, 0.918, 1.0] {
            assert_eq!(m.hold_fidelity(f0, 0).to_bits(), f0.to_bits());
        }
        assert_eq!(m.hold_eta_factor(0).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn monotone_non_increasing_and_clamped() {
        let m = MemoryParams::with_t2_steps(8.0);
        let f0 = 0.95;
        let mut prev = f0;
        for k in 0..200 {
            let f = m.hold_fidelity(f0, k);
            assert!(f <= prev + 1e-15, "k={k}: {f} > {prev}");
            assert!((0.5..=f0).contains(&f), "k={k}: {f}");
            prev = f;
        }
        // Long holds approach (but never cross) the classical floor.
        assert!((m.hold_fidelity(f0, 10_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classical_states_are_left_alone() {
        let m = MemoryParams::with_t2_steps(8.0);
        for f0 in [0.0, 0.2, 0.5] {
            assert_eq!(m.hold_fidelity(f0, 5).to_bits(), f0.to_bits());
        }
    }

    #[test]
    fn extremes() {
        let none = MemoryParams::none();
        assert!(!none.can_hold());
        assert_eq!(none.hold_fidelity(0.9, 1), 0.5);
        assert_eq!(none.hold_eta_factor(1), 0.0);
        assert_eq!(none.per_step_eta_factor(), 0.0);

        let ideal = MemoryParams::ideal();
        assert!(ideal.can_hold());
        assert_eq!(ideal.hold_fidelity(0.9, 999).to_bits(), 0.9f64.to_bits());
        assert_eq!(ideal.hold_eta_factor(999), 1.0);
    }

    #[test]
    fn eta_factor_and_fidelity_decay_agree() {
        // The module-doc identity: decaying η then converting to fidelity
        // equals converting then decaying the fidelity.
        let m = MemoryParams::with_t2_steps(13.0);
        for eta in [0.05, 0.3, 0.7, 0.95] {
            for k in [1u32, 3, 10, 40] {
                let via_eta = bell_ad_sqrt_fidelity(eta * m.hold_eta_factor(k));
                let via_f = m.hold_fidelity(bell_ad_sqrt_fidelity(eta), k);
                assert!(
                    (via_eta - via_f).abs() < 1e-12,
                    "eta={eta} k={k}: {via_eta} vs {via_f}"
                );
            }
        }
    }

    #[test]
    fn class_memory_presets() {
        assert!(!ClassMemory::none().can_hold_any());
        assert!(ClassMemory::standard().can_hold_any());
        let u = ClassMemory::uniform(MemoryParams::with_t2_steps(5.0));
        assert_eq!(u.ground, u.satellite);
        assert_eq!(u.ground, u.hap);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_t2_panics() {
        let _ = MemoryParams::with_t2_steps(-1.0);
    }
}
