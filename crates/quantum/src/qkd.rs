//! Entanglement-based QKD (BBM92/E91) key rates.
//!
//! The deployed systems the paper positions itself against (\[12\]–\[14\] in
//! its related work) are QKD networks; this module turns any distributed
//! pair ρ_AB into the corresponding secret-key figures:
//!
//! - [`qber_z`] / [`qber_x`] — quantum bit error rates when both parties
//!   measure in the Z (computational) or X (Hadamard) basis.
//! - [`bbm92_key_fraction`] — the asymptotic secret-key fraction
//!   `r = max(0, 1 − h₂(Q_Z) − h₂(Q_X))` (one-way post-processing,
//!   Shor–Preskill bound).
//!
//! For the paper's amplitude-damped pairs the closed forms are
//! `Q_Z = (1−η)/2` and `Q_X = (2 − η − 2√η)/4 · ... ` — the tests pin the
//! exact values through the density-matrix machinery instead of trusting a
//! transcription.

use crate::gates::hadamard;
use crate::state::DensityMatrix;

/// Binary (Shannon) entropy `h₂(p)` in bits, with `h₂(0) = h₂(1) = 0`.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Probability that Z-basis measurements of the two qubits disagree.
pub fn qber_z(rho: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), 4, "QBER is defined for two-qubit pairs");
    let m = rho.matrix();
    (m[(1, 1)].re + m[(2, 2)].re).clamp(0.0, 1.0)
}

/// Probability that X-basis measurements of the two qubits disagree.
pub fn qber_x(rho: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), 4, "QBER is defined for two-qubit pairs");
    // Rotate both qubits into the X basis, then read the Z-basis QBER.
    let h2q = &hadamard(0, 2) * &hadamard(1, 2);
    let rotated = DensityMatrix::new(&(&h2q * rho.matrix()) * &h2q.dagger());
    qber_z(&rotated)
}

/// Asymptotic BBM92 secret-key fraction (per sifted pair).
pub fn bbm92_key_fraction(rho: &DensityMatrix) -> f64 {
    (1.0 - binary_entropy(qber_z(rho)) - binary_entropy(qber_x(rho))).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{amplitude_damping, depolarizing};
    use crate::state::{bell_phi_plus, DensityMatrix};

    fn damped(eta: f64) -> DensityMatrix {
        amplitude_damping(eta)
            .on_qubit(1, 2)
            .apply(&bell_phi_plus().density())
    }

    #[test]
    fn binary_entropy_landmarks() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(
            (binary_entropy(0.11) - 0.4999).abs() < 1e-3,
            "the QKD-famous 11%"
        );
        // Symmetric.
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < 1e-12);
    }

    #[test]
    fn perfect_pair_has_zero_qber_and_unit_key() {
        let bell = bell_phi_plus().density();
        assert!(qber_z(&bell) < 1e-12);
        assert!(qber_x(&bell) < 1e-12);
        assert!((bbm92_key_fraction(&bell) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn damped_pair_qber_z_closed_form() {
        // One-sided AD(η): Q_Z = (1-η)/2.
        for eta in [0.0, 0.3, 0.7, 0.95, 1.0] {
            let q = qber_z(&damped(eta));
            assert!((q - (1.0 - eta) / 2.0).abs() < 1e-12, "eta {eta}: {q}");
        }
    }

    #[test]
    fn damped_pair_qber_x_closed_form() {
        // X-basis disagreement for one-sided AD(η):
        // ρ' = |φ⟩⟨φ| + (1−η)/2 |10⟩⟨10|, φ = (|00⟩+√η|11⟩)/√2.
        // In the X basis: Q_X = (1+η−2√η)/4 + (1−η)/4 = (2 − η − 2√η + η − η)/4
        // → verified numerically here against the analytic expansion.
        for eta in [0.0, 0.25, 0.5, 0.81, 1.0] {
            let q = qber_x(&damped(eta));
            let s = eta.sqrt();
            let expect = (1.0 + eta - 2.0 * s) / 4.0 + (1.0 - eta) / 4.0;
            assert!((q - expect).abs() < 1e-10, "eta {eta}: {q} vs {expect}");
        }
    }

    #[test]
    fn key_fraction_decreases_with_damping() {
        let mut prev = 1.1;
        for eta in [1.0, 0.95, 0.9, 0.8, 0.7, 0.6] {
            let r = bbm92_key_fraction(&damped(eta));
            assert!(r < prev + 1e-12, "eta {eta}");
            prev = r;
        }
    }

    #[test]
    fn key_rate_dies_at_the_papers_threshold() {
        // A notable finding: at the paper's η = 0.7 threshold the QBERs
        // (Q_Z = 15 %, Q_X ≈ 8.2 %) already cost more than one bit of
        // entropy, so one-way BBM92 yields *zero* key — entanglement
        // distribution at F ≈ 0.92 is not automatically QKD-grade.
        assert_eq!(bbm92_key_fraction(&damped(0.7)), 0.0);
        // A modestly better link recovers a positive rate.
        let r = bbm92_key_fraction(&damped(0.8));
        assert!(r > 0.1 && r < 0.5, "{r}");
    }

    #[test]
    fn key_dies_below_some_eta() {
        // Far below threshold no key survives.
        assert_eq!(bbm92_key_fraction(&damped(0.2)), 0.0);
    }

    #[test]
    fn depolarizing_pair_matches_11_percent_lore() {
        // Isotropic noise: key = 0 at QBER ≈ 11% (both bases equal).
        let bell = bell_phi_plus().density();
        let mut dead = None;
        for k in 0..=40 {
            let p = f64::from(k) * 0.01;
            let rho = depolarizing(p).on_qubit(0, 2).apply(&bell);
            let qz = qber_z(&rho);
            let qx = qber_x(&rho);
            assert!((qz - qx).abs() < 1e-10, "isotropic noise: equal QBERs");
            if bbm92_key_fraction(&rho) == 0.0 && dead.is_none() {
                dead = Some(qz);
            }
        }
        let q_dead = dead.expect("key must die somewhere below p = 0.4");
        assert!((q_dead - 0.11).abs() < 0.01, "key died at QBER {q_dead}");
    }

    #[test]
    fn qber_bounds() {
        for eta in [0.0, 0.5, 1.0] {
            let rho = damped(eta);
            for q in [qber_z(&rho), qber_x(&rho)] {
                assert!((0.0..=1.0).contains(&q));
            }
        }
    }
}
