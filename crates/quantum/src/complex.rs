//! Complex arithmetic, implemented from scratch.
//!
//! The workspace's whitelist has no complex-number crate, and the quantum
//! substrate only needs a small, predictable surface: field operations,
//! conjugation, modulus, and a principal square root. Everything is `f64`.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

/// Shorthand constructor.
#[inline]
pub const fn c(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

impl Complex {
    pub const ZERO: Complex = c(0.0, 0.0);
    pub const ONE: Complex = c(1.0, 0.0);
    pub const I: Complex = c(0.0, 1.0);

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Complex {
        c(re, 0.0)
    }

    /// From polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        let (s, cth) = theta.sin_cos();
        c(r * cth, r * s)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        c(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, overflow-safe via `hypot`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Complex {
        let d = self.norm_sq();
        c(self.re / d, -self.im / d)
    }

    /// Principal square root (branch cut on the negative real axis).
    pub fn sqrt(self) -> Complex {
        if self.im == 0.0 {
            if self.re >= 0.0 {
                return c(self.re.sqrt(), 0.0);
            }
            return c(0.0, (-self.re).sqrt());
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt() * self.im.signum();
        c(re, im)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Complex {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Complex {
        c(self.re * k, self.im * k)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when `|self - other|` is within `tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        c(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        c(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        c(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        c(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        c(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_operations() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -1.0);
        assert_eq!(a + b, c(4.0, 1.0));
        assert_eq!(a - b, c(-2.0, 3.0));
        assert_eq!(a * b, c(5.0, 5.0)); // (1+2i)(3-i) = 3 - i + 6i + 2 = 5+5i
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-14));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, c(-1.0, 0.0));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = c(3.0, 4.0);
        assert_eq!(z.conj(), c(3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert!((z * z.conj()).approx_eq(c(25.0, 0.0), 1e-14));
    }

    #[test]
    fn inverse() {
        let z = c(2.0, -3.0);
        assert!((z * z.inv()).approx_eq(Complex::ONE, 1e-14));
    }

    #[test]
    fn sqrt_branches() {
        assert_eq!(c(4.0, 0.0).sqrt(), c(2.0, 0.0));
        assert_eq!(c(-4.0, 0.0).sqrt(), c(0.0, 2.0));
        // sqrt(i) = (1+i)/sqrt(2)
        let s = Complex::I.sqrt();
        let e = 1.0 / 2.0_f64.sqrt();
        assert!(s.approx_eq(c(e, e), 1e-14));
        // General: sqrt(z)² = z for points in every quadrant.
        for z in [
            c(1.0, 1.0),
            c(-1.0, 1.0),
            c(-1.0, -1.0),
            c(1.0, -1.0),
            c(0.3, -2.7),
        ] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-12), "{z}");
            assert!(s.re >= 0.0, "principal branch has non-negative real part");
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn euler_identity() {
        let z = c(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(c(-1.0, 0.0), 1e-14));
    }

    #[test]
    fn real_scaling_and_division() {
        let z = c(1.0, -2.0);
        assert_eq!(z * 2.0, c(2.0, -4.0));
        assert_eq!(2.0 * z, c(2.0, -4.0));
        assert_eq!(z / 2.0, c(0.5, -1.0));
        assert_eq!(-z, c(-1.0, 2.0));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", c(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", c(1.0, -2.0)), "1.000000-2.000000i");
    }

    #[test]
    fn assign_ops() {
        let mut z = c(1.0, 1.0);
        z += c(1.0, 0.0);
        assert_eq!(z, c(2.0, 1.0));
        z -= c(0.0, 1.0);
        assert_eq!(z, c(2.0, 0.0));
        z *= c(0.0, 1.0);
        assert_eq!(z, c(0.0, 2.0));
    }
}
