//! Kraus-operator quantum channels.
//!
//! The paper models every optical link as an **amplitude damping channel**
//! whose damping is set by the link transmissivity η (its Eq. 3):
//!
//! ```text
//! K₀ = [[1, 0], [0, √η]]        K₁ = [[0, √(1−η)], [0, 0]]
//! ```
//!
//! applied as `ρ' = K₀ρK₀† + K₁ρK₁†` (Eq. 4). We implement that channel
//! plus the other standard single-qubit channels used by the extension
//! benches, a CPTP validity check, lifting onto one qubit of a register,
//! and channel composition.

use crate::matrix::{pauli, Matrix};
use crate::state::DensityMatrix;

/// A quantum channel in Kraus form.
#[derive(Debug, Clone)]
pub struct KrausChannel {
    name: String,
    kraus: Vec<Matrix>,
}

impl KrausChannel {
    /// Build from Kraus operators. All operators must share one square shape.
    pub fn new(name: impl Into<String>, kraus: Vec<Matrix>) -> KrausChannel {
        assert!(
            !kraus.is_empty(),
            "a channel needs at least one Kraus operator"
        );
        let d = kraus[0].rows();
        for k in &kraus {
            assert!(
                k.is_square() && k.rows() == d,
                "Kraus operators must share one square shape"
            );
        }
        KrausChannel {
            name: name.into(),
            kraus,
        }
    }

    /// The channel's label (for reports).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Kraus operators.
    #[inline]
    pub fn kraus(&self) -> &[Matrix] {
        &self.kraus
    }

    /// Input/output dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.kraus[0].rows()
    }

    /// Trace-preservation check: `Σ K†K = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let d = self.dim();
        let mut acc = Matrix::zeros(d, d);
        for k in &self.kraus {
            acc = &acc + &(&k.dagger() * k);
        }
        acc.approx_eq(&Matrix::identity(d), tol)
    }

    /// Apply the channel: `ρ' = Σᵢ Kᵢ ρ Kᵢ†` (the paper's Eq. 4).
    pub fn apply(&self, rho: &DensityMatrix) -> DensityMatrix {
        assert_eq!(rho.dim(), self.dim(), "state/channel dimension mismatch");
        let d = self.dim();
        let mut out = Matrix::zeros(d, d);
        for k in &self.kraus {
            out = &out + &(&(k * rho.matrix()) * &k.dagger());
        }
        DensityMatrix::new(out)
    }

    /// Lift a single-qubit channel onto qubit `target` of an `n`-qubit
    /// register (qubit 0 is the leftmost tensor factor).
    pub fn on_qubit(&self, target: usize, n: usize) -> KrausChannel {
        assert_eq!(
            self.dim(),
            2,
            "lifting is defined for single-qubit channels"
        );
        assert!(target < n, "target qubit out of range");
        let lifted = self
            .kraus
            .iter()
            .map(|k| {
                let mut acc = if target == 0 {
                    k.clone()
                } else {
                    Matrix::identity(2)
                };
                for q in 1..n {
                    let factor = if q == target {
                        k.clone()
                    } else {
                        Matrix::identity(2)
                    };
                    acc = acc.kron(&factor);
                }
                acc
            })
            .collect();
        KrausChannel::new(format!("{}@q{target}", self.name), lifted)
    }

    /// Compose: apply `self` after `first` (`self ∘ first`). The Kraus set of
    /// the composite is all products `Kᵢ·Lⱼ`.
    pub fn compose_after(&self, first: &KrausChannel) -> KrausChannel {
        assert_eq!(self.dim(), first.dim(), "composition dimension mismatch");
        let mut kraus = Vec::with_capacity(self.kraus.len() * first.kraus.len());
        for k in &self.kraus {
            for l in &first.kraus {
                kraus.push(k * l);
            }
        }
        KrausChannel::new(format!("{}∘{}", self.name, first.name), kraus)
    }
}

/// The paper's amplitude damping channel with transmissivity `eta` (Eq. 3).
///
/// `eta = 1` is the identity (lossless); `eta = 0` decays everything to `|0⟩`.
///
/// ```
/// use qntn_quantum::channels::amplitude_damping;
/// use qntn_quantum::state::bell_phi_plus;
/// use qntn_quantum::fidelity::sqrt_fidelity_to_pure;
///
/// // One half of a Bell pair through a link at the paper's 0.7 threshold:
/// let bell = bell_phi_plus();
/// let damped = amplitude_damping(0.7).on_qubit(1, 2).apply(&bell.density());
/// let fidelity = sqrt_fidelity_to_pure(&damped, &bell);
/// assert!(fidelity > 0.9); // the paper's Fig. 5 calibration point
/// ```
///
/// # Panics
/// Panics if `eta` is outside `[0, 1]`.
pub fn amplitude_damping(eta: f64) -> KrausChannel {
    assert!(
        (0.0..=1.0).contains(&eta),
        "transmissivity must be in [0,1], got {eta}"
    );
    let k0 = Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, eta.sqrt()]);
    let k1 = Matrix::from_real(2, 2, &[0.0, (1.0 - eta).sqrt(), 0.0, 0.0]);
    KrausChannel::new(format!("AD({eta:.4})"), vec![k0, k1])
}

/// Amplitude damping accumulated over a storage time `t` in a memory with
/// relaxation time `t1`: retention `η = e^{−t/T1}`. This is how a stored
/// Bell-pair half decays while a repeater waits for its partner link.
pub fn amplitude_damping_after(t_s: f64, t1_s: f64) -> KrausChannel {
    assert!(t_s >= 0.0, "storage time must be non-negative");
    assert!(t1_s > 0.0, "T1 must be positive");
    amplitude_damping((-t_s / t1_s).exp())
}

/// Phase damping accumulated over a storage time `t` with dephasing time
/// `t2`: retention `e^{−t/T2}`.
pub fn phase_damping_after(t_s: f64, t2_s: f64) -> KrausChannel {
    assert!(t_s >= 0.0, "storage time must be non-negative");
    assert!(t2_s > 0.0, "T2 must be positive");
    phase_damping((-t_s / t2_s).exp())
}

/// Phase damping with retention `eta` (dephasing strength `1−eta`).
pub fn phase_damping(eta: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&eta), "retention must be in [0,1]");
    let k0 = Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, eta.sqrt()]);
    let k1 = Matrix::from_real(2, 2, &[0.0, 0.0, 0.0, (1.0 - eta).sqrt()]);
    KrausChannel::new(format!("PD({eta:.4})"), vec![k0, k1])
}

/// Depolarizing channel with error probability `p`:
/// `ρ → (1−p)ρ + (p/3)(XρX + YρY + ZρZ)`.
pub fn depolarizing(p: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    let k0 = Matrix::identity(2).scale_real((1.0 - p).sqrt());
    let kx = pauli::x().scale_real((p / 3.0).sqrt());
    let ky = pauli::y().scale_real((p / 3.0).sqrt());
    let kz = pauli::z().scale_real((p / 3.0).sqrt());
    KrausChannel::new(format!("Dep({p:.4})"), vec![k0, kx, ky, kz])
}

/// Bit-flip channel: applies X with probability `p`.
pub fn bit_flip(p: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    KrausChannel::new(
        format!("BF({p:.4})"),
        vec![
            Matrix::identity(2).scale_real((1.0 - p).sqrt()),
            pauli::x().scale_real(p.sqrt()),
        ],
    )
}

/// Phase-flip channel: applies Z with probability `p`.
pub fn phase_flip(p: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    KrausChannel::new(
        format!("PF({p:.4})"),
        vec![
            Matrix::identity(2).scale_real((1.0 - p).sqrt()),
            pauli::z().scale_real(p.sqrt()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{bell_phi_plus, DensityMatrix, Ket};

    #[test]
    fn all_channels_are_cptp() {
        for eta in [0.0, 0.3, 0.7, 1.0] {
            assert!(
                amplitude_damping(eta).is_trace_preserving(1e-12),
                "AD({eta})"
            );
            assert!(phase_damping(eta).is_trace_preserving(1e-12), "PD({eta})");
        }
        for p in [0.0, 0.1, 0.75, 1.0] {
            assert!(depolarizing(p).is_trace_preserving(1e-12), "Dep({p})");
            assert!(bit_flip(p).is_trace_preserving(1e-12));
            assert!(phase_flip(p).is_trace_preserving(1e-12));
        }
    }

    #[test]
    fn identity_channel_at_eta_one() {
        let rho = Ket::plus().density();
        let out = amplitude_damping(1.0).apply(&rho);
        assert!(out.matrix().approx_eq(rho.matrix(), 1e-12));
    }

    #[test]
    fn full_damping_sends_everything_to_ground() {
        let rho = Ket::basis(1, 1).density();
        let out = amplitude_damping(0.0).apply(&rho);
        let ground = Ket::basis(1, 0).density();
        assert!(out.matrix().approx_eq(ground.matrix(), 1e-12));
    }

    #[test]
    fn damping_excited_population_scales_with_eta() {
        // ⟨1|ρ'|1⟩ = η for input |1⟩⟨1|.
        for eta in [0.1, 0.5, 0.9] {
            let out = amplitude_damping(eta).apply(&Ket::basis(1, 1).density());
            assert!((out.matrix()[(1, 1)].re - eta).abs() < 1e-12);
            assert!((out.matrix()[(0, 0)].re - (1.0 - eta)).abs() < 1e-12);
        }
    }

    #[test]
    fn damping_preserves_trace_and_positivity() {
        let rho = Ket::plus().density();
        for eta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let out = amplitude_damping(eta).apply(&rho);
            assert!((out.matrix().trace().re - 1.0).abs() < 1e-12);
            assert!(out.is_valid(1e-10), "eta={eta}");
        }
    }

    #[test]
    fn bell_pair_through_one_sided_damping() {
        // One half of |Φ+⟩ through AD(η): ⟨Φ+|ρ'|Φ+⟩ = (1+√η)²/4.
        let bell = bell_phi_plus();
        for eta in [0.0, 0.3, 0.7, 1.0] {
            let lifted = amplitude_damping(eta).on_qubit(1, 2);
            let out = lifted.apply(&bell.density());
            let expect = (1.0 + eta.sqrt()).powi(2) / 4.0;
            assert!(
                (out.expectation(&bell) - expect).abs() < 1e-12,
                "eta={eta}: {} vs {expect}",
                out.expectation(&bell)
            );
        }
    }

    #[test]
    fn lifting_on_either_qubit_is_symmetric_for_bell() {
        let bell = bell_phi_plus().density();
        let eta = 0.6;
        let a = amplitude_damping(eta).on_qubit(0, 2).apply(&bell);
        let b = amplitude_damping(eta).on_qubit(1, 2).apply(&bell);
        // |Φ+⟩ is symmetric under qubit exchange, so the fidelities agree.
        assert!((a.expectation(&bell_phi_plus()) - b.expectation(&bell_phi_plus())).abs() < 1e-12);
    }

    #[test]
    fn composition_multiplies_transmissivities() {
        // AD(η₁) ∘ AD(η₂) = AD(η₁η₂) — the reason path transmissivity is the
        // product of link transmissivities.
        let (e1, e2) = (0.8, 0.6);
        let composed = amplitude_damping(e1).compose_after(&amplitude_damping(e2));
        let direct = amplitude_damping(e1 * e2);
        let rho = Ket::plus().density();
        let a = composed.apply(&rho);
        let b = direct.apply(&rho);
        assert!(a.matrix().approx_eq(b.matrix(), 1e-12));
        assert!(composed.is_trace_preserving(1e-12));
    }

    #[test]
    fn depolarizing_drives_to_maximally_mixed() {
        let rho = Ket::basis(1, 0).density();
        let out = depolarizing(0.75).apply(&rho);
        assert!(out
            .matrix()
            .approx_eq(DensityMatrix::maximally_mixed(1).matrix(), 1e-12));
    }

    #[test]
    fn phase_damping_kills_coherences_only() {
        let rho = Ket::plus().density();
        let out = phase_damping(0.0).apply(&rho);
        // Populations intact, off-diagonals gone.
        assert!((out.matrix()[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!((out.matrix()[(1, 1)].re - 0.5).abs() < 1e-12);
        assert!(out.matrix()[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn bit_flip_swaps_populations() {
        let out = bit_flip(1.0).apply(&Ket::basis(1, 0).density());
        assert!((out.matrix()[(1, 1)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn damping_degrades_entanglement_monotonically() {
        let bell = bell_phi_plus().density();
        let mut prev = 1.1;
        for k in 0..=10 {
            let eta = 1.0 - f64::from(k) * 0.1;
            let out = amplitude_damping(eta).on_qubit(1, 2).apply(&bell);
            let conc = out.concurrence();
            assert!(conc <= prev + 1e-9, "eta={eta}");
            prev = conc;
        }
    }

    #[test]
    #[should_panic(expected = "transmissivity must be in [0,1]")]
    fn rejects_eta_above_one() {
        amplitude_damping(1.5);
    }

    #[test]
    fn memory_decay_semigroup() {
        // Storing for t then t' equals storing for t + t' (both channels).
        let rho = Ket::plus().density();
        let t1 = 2.0;
        let a = amplitude_damping_after(0.7, t1)
            .compose_after(&amplitude_damping_after(0.4, t1))
            .apply(&rho);
        let b = amplitude_damping_after(1.1, t1).apply(&rho);
        assert!(a.matrix().approx_eq(b.matrix(), 1e-12));
        let c = phase_damping_after(0.7, t1)
            .compose_after(&phase_damping_after(0.4, t1))
            .apply(&rho);
        let d = phase_damping_after(1.1, t1).apply(&rho);
        assert!(c.matrix().approx_eq(d.matrix(), 1e-12));
    }

    #[test]
    fn zero_storage_is_identity() {
        let rho = Ket::plus().density();
        let out = amplitude_damping_after(0.0, 1.0).apply(&rho);
        assert!(out.matrix().approx_eq(rho.matrix(), 1e-12));
    }

    #[test]
    fn long_storage_decays_fully() {
        let rho = Ket::basis(1, 1).density();
        let out = amplitude_damping_after(100.0, 1.0).apply(&rho);
        assert!((out.matrix()[(0, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn channel_kraus_metadata() {
        let ch = amplitude_damping(0.5);
        assert_eq!(ch.kraus().len(), 2);
        assert_eq!(ch.dim(), 2);
        assert!(ch.name().starts_with("AD"));
        let lifted = ch.on_qubit(0, 2);
        assert_eq!(lifted.dim(), 4);
    }
}
