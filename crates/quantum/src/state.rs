//! Kets, density matrices and entanglement measures.

use crate::complex::{c, Complex};
use crate::eigen::hermitian_eigen;
use crate::matrix::{pauli, Matrix};

/// A pure state vector over `2^n` amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct Ket {
    amps: Vec<Complex>,
}

impl Ket {
    /// Build from amplitudes (length must be a power of two).
    pub fn new(amps: Vec<Complex>) -> Ket {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        Ket { amps }
    }

    /// The computational basis state `|index⟩` over `qubits` qubits.
    pub fn basis(qubits: usize, index: usize) -> Ket {
        let dim = 1 << qubits;
        assert!(index < dim, "basis index out of range");
        let mut amps = vec![Complex::ZERO; dim];
        amps[index] = Complex::ONE;
        Ket { amps }
    }

    /// `|+⟩ = (|0⟩+|1⟩)/√2`.
    pub fn plus() -> Ket {
        let s = 1.0 / 2.0_f64.sqrt();
        Ket::new(vec![c(s, 0.0), c(s, 0.0)])
    }

    /// Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Number of qubits.
    #[inline]
    pub fn qubits(&self) -> usize {
        self.amps.len().trailing_zeros() as usize
    }

    /// Amplitudes.
    #[inline]
    pub fn amps(&self) -> &[Complex] {
        &self.amps
    }

    /// Squared norm `⟨ψ|ψ⟩`.
    pub fn norm_sq(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }

    /// Normalize to unit norm (no-op for the zero vector).
    pub fn normalized(&self) -> Ket {
        let n = self.norm_sq().sqrt();
        if n < 1e-300 {
            return self.clone();
        }
        Ket {
            amps: self.amps.iter().map(|&a| a / n).collect(),
        }
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &Ket) -> Complex {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Tensor product `self ⊗ other`.
    pub fn tensor(&self, other: &Ket) -> Ket {
        let mut amps = Vec::with_capacity(self.dim() * other.dim());
        for &a in &self.amps {
            for &b in &other.amps {
                amps.push(a * b);
            }
        }
        Ket { amps }
    }

    /// The projector `|ψ⟩⟨ψ|` as a density matrix.
    pub fn density(&self) -> DensityMatrix {
        let d = self.dim();
        let mut m = Matrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                m[(i, j)] = self.amps[i] * self.amps[j].conj();
            }
        }
        DensityMatrix::new(m)
    }
}

/// The Bell state `|Φ+⟩ = (|00⟩ + |11⟩)/√2` — the paper's ideal entangled
/// state `|ψ⟩` in Eq. 5.
pub fn bell_phi_plus() -> Ket {
    let s = 1.0 / 2.0_f64.sqrt();
    Ket::new(vec![c(s, 0.0), Complex::ZERO, Complex::ZERO, c(s, 0.0)])
}

/// The Bell state `|Φ−⟩ = (|00⟩ − |11⟩)/√2`.
pub fn bell_phi_minus() -> Ket {
    let s = 1.0 / 2.0_f64.sqrt();
    Ket::new(vec![c(s, 0.0), Complex::ZERO, Complex::ZERO, c(-s, 0.0)])
}

/// The Bell state `|Ψ+⟩ = (|01⟩ + |10⟩)/√2`.
pub fn bell_psi_plus() -> Ket {
    let s = 1.0 / 2.0_f64.sqrt();
    Ket::new(vec![Complex::ZERO, c(s, 0.0), c(s, 0.0), Complex::ZERO])
}

/// A density matrix: Hermitian, positive semi-definite, unit trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    m: Matrix,
}

impl DensityMatrix {
    /// Wrap a matrix, checking hermiticity and (approximate) unit trace.
    ///
    /// # Panics
    /// Panics when the matrix is visibly not a density operator; positive
    /// semidefiniteness is only validated on demand by [`Self::is_valid`]
    /// (it needs an eigendecomposition).
    pub fn new(m: Matrix) -> DensityMatrix {
        assert!(m.is_square(), "density matrix must be square");
        assert!(m.is_hermitian(1e-9), "density matrix must be Hermitian");
        let tr = m.trace();
        assert!(
            (tr.re - 1.0).abs() < 1e-6 && tr.im.abs() < 1e-9,
            "density matrix must have unit trace, got {tr}"
        );
        DensityMatrix { m }
    }

    /// The maximally mixed state `I/d` over `qubits` qubits.
    pub fn maximally_mixed(qubits: usize) -> DensityMatrix {
        let d = 1 << qubits;
        DensityMatrix {
            m: Matrix::identity(d).scale_real(1.0 / d as f64),
        }
    }

    /// The underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &Matrix {
        &self.m
    }

    /// Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.m.rows()
    }

    /// Number of qubits.
    #[inline]
    pub fn qubits(&self) -> usize {
        self.m.rows().trailing_zeros() as usize
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/d` for maximally mixed.
    pub fn purity(&self) -> f64 {
        (&self.m * &self.m).trace().re
    }

    /// Full validity check including positive semidefiniteness.
    pub fn is_valid(&self, tol: f64) -> bool {
        let eig = hermitian_eigen(&self.m);
        eig.values.iter().all(|&v| v > -tol)
    }

    /// Expectation value `⟨ψ|ρ|ψ⟩` — the fidelity to a pure state.
    pub fn expectation(&self, psi: &Ket) -> f64 {
        let v = self.m.mul_vec(psi.amps());
        psi.amps()
            .iter()
            .zip(&v)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b)
            .re
    }

    /// Tensor product of two density operators.
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        DensityMatrix {
            m: self.m.kron(&other.m),
        }
    }

    /// Partial trace over one qubit of a register (qubit 0 is the most
    /// significant / leftmost factor, matching [`Ket::tensor`] order).
    pub fn partial_trace(&self, traced_qubit: usize) -> DensityMatrix {
        let n = self.qubits();
        assert!(traced_qubit < n, "qubit index out of range");
        let keep = n - 1;
        let dim_out = 1 << keep;
        let mut out = Matrix::zeros(dim_out, dim_out);
        // Map a (kept-index, traced-bit) pair onto a full index.
        let insert_bit = |kept: usize, bit: usize| -> usize {
            let pos = n - 1 - traced_qubit; // bit position from LSB
            let high = (kept >> pos) << (pos + 1);
            let low = kept & ((1 << pos) - 1);
            high | (bit << pos) | low
        };
        for i in 0..dim_out {
            for j in 0..dim_out {
                let mut acc = Complex::ZERO;
                for b in 0..2 {
                    acc += self.m[(insert_bit(i, b), insert_bit(j, b))];
                }
                out[(i, j)] = acc;
            }
        }
        DensityMatrix { m: out }
    }

    /// Von Neumann entropy `−Tr(ρ log₂ ρ)` in bits.
    pub fn von_neumann_entropy(&self) -> f64 {
        hermitian_eigen(&self.m)
            .values
            .iter()
            .filter(|&&v| v > 1e-12)
            .map(|&v| -v * v.log2())
            .sum()
    }

    /// Wootters concurrence of a two-qubit state: an entanglement monotone
    /// in `[0, 1]`, 1 for Bell states, 0 for separable states.
    pub fn concurrence(&self) -> f64 {
        assert_eq!(self.dim(), 4, "concurrence is defined for two qubits");
        let yy = pauli::y().kron(&pauli::y());
        // ρ̃ = (Y⊗Y) ρ* (Y⊗Y), with ρ* entrywise conjugation.
        let mut conj = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                conj[(i, j)] = self.m[(i, j)].conj();
            }
        }
        let rho_tilde = &(&yy * &conj) * &yy;
        let product = &self.m * &rho_tilde;
        // Eigenvalues of ρρ̃ are real non-negative; C = max(0, √λ1−√λ2−√λ3−√λ4).
        // ρρ̃ is not Hermitian in general, but it is similar to the Hermitian
        // √ρ ρ̃ √ρ, so we eigendecompose that instead.
        let sqrt_rho = crate::eigen::psd_sqrt(&self.m);
        let herm = &(&sqrt_rho * &rho_tilde) * &sqrt_rho;
        let _ = product;
        let mut lambdas: Vec<f64> = hermitian_eigen(&herm)
            .values
            .iter()
            .map(|&v| v.max(0.0).sqrt())
            .collect();
        lambdas.sort_by(|a, b| b.total_cmp(a));
        (lambdas[0] - lambdas[1] - lambdas[2] - lambdas[3]).max(0.0)
    }

    /// Negativity of a two-qubit state: `(‖ρ^{T_B}‖₁ − 1)/2`, an
    /// entanglement monotone that is 0.5 for Bell states.
    pub fn negativity(&self) -> f64 {
        assert_eq!(self.dim(), 4, "negativity implemented for two qubits");
        // Partial transpose over the second qubit.
        let mut pt = Matrix::zeros(4, 4);
        for i0 in 0..2 {
            for i1 in 0..2 {
                for j0 in 0..2 {
                    for j1 in 0..2 {
                        // (i0 i1),(j0 j1) -> (i0 j1),(j0 i1)
                        pt[(i0 * 2 + j1, j0 * 2 + i1)] = self.m[(i0 * 2 + i1, j0 * 2 + j1)];
                    }
                }
            }
        }
        let trace_norm: f64 = hermitian_eigen(&pt).values.iter().map(|v| v.abs()).sum();
        ((trace_norm - 1.0) / 2.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_states() {
        let k = Ket::basis(2, 3);
        assert_eq!(k.dim(), 4);
        assert_eq!(k.qubits(), 2);
        assert_eq!(k.amps()[3], Complex::ONE);
        assert!((k.norm_sq() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn bell_state_is_normalized_and_entangled() {
        let bell = bell_phi_plus();
        assert!((bell.norm_sq() - 1.0).abs() < 1e-15);
        let rho = bell.density();
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.concurrence() - 1.0).abs() < 1e-9);
        assert!((rho.negativity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bell_states_are_orthogonal() {
        assert!(bell_phi_plus().inner(&bell_phi_minus()).abs() < 1e-15);
        assert!(bell_phi_plus().inner(&bell_psi_plus()).abs() < 1e-15);
    }

    #[test]
    fn product_state_has_zero_entanglement() {
        let k = Ket::basis(1, 0).tensor(&Ket::plus());
        let rho = k.density();
        assert!(rho.concurrence() < 1e-9);
        assert!(rho.negativity() < 1e-9);
    }

    #[test]
    fn tensor_dimensions_and_amplitudes() {
        let a = Ket::plus();
        let b = Ket::basis(1, 1);
        let t = a.tensor(&b);
        assert_eq!(t.dim(), 4);
        // (|0⟩+|1⟩)/√2 ⊗ |1⟩ = (|01⟩ + |11⟩)/√2.
        let s = 1.0 / 2.0_f64.sqrt();
        assert!(t.amps()[1].approx_eq(c(s, 0.0), 1e-15));
        assert!(t.amps()[3].approx_eq(c(s, 0.0), 1e-15));
        assert_eq!(t.amps()[0], Complex::ZERO);
    }

    #[test]
    fn density_of_pure_state_is_projector() {
        let rho = Ket::plus().density();
        let m = rho.matrix();
        assert!((m * m).approx_eq(m, 1e-12), "projector: ρ² = ρ");
        assert!(rho.is_valid(1e-12));
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        assert!((rho.von_neumann_entropy() - 2.0).abs() < 1e-9);
        assert!(rho.concurrence() < 1e-9);
    }

    #[test]
    fn expectation_against_pure_states() {
        let bell = bell_phi_plus();
        let rho = bell.density();
        assert!((rho.expectation(&bell) - 1.0).abs() < 1e-12);
        assert!(rho.expectation(&bell_phi_minus()).abs() < 1e-12);
        // Mixed state: ⟨ψ|I/4|ψ⟩ = 1/4.
        let mixed = DensityMatrix::maximally_mixed(2);
        assert!((mixed.expectation(&bell) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_bell_is_maximally_mixed() {
        let rho = bell_phi_plus().density();
        for q in 0..2 {
            let reduced = rho.partial_trace(q);
            assert_eq!(reduced.dim(), 2);
            assert!(
                reduced
                    .matrix()
                    .approx_eq(&Matrix::identity(2).scale_real(0.5), 1e-12),
                "tracing qubit {q}"
            );
        }
    }

    #[test]
    fn partial_trace_of_product_recovers_factor() {
        let a = Ket::plus().density();
        let b = Ket::basis(1, 1).density();
        let joint = a.tensor(&b);
        // Trace out qubit 1 (the second factor) -> recover a.
        let ra = joint.partial_trace(1);
        assert!(ra.matrix().approx_eq(a.matrix(), 1e-12));
        // Trace out qubit 0 -> recover b.
        let rb = joint.partial_trace(0);
        assert!(rb.matrix().approx_eq(b.matrix(), 1e-12));
    }

    #[test]
    fn entropy_of_pure_state_is_zero() {
        assert!(bell_phi_plus().density().von_neumann_entropy() < 1e-9);
    }

    #[test]
    fn entanglement_entropy_of_bell_half_is_one_bit() {
        let reduced = bell_phi_plus().density().partial_trace(0);
        assert!((reduced.von_neumann_entropy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn werner_state_concurrence() {
        // Werner state p|Φ+⟩⟨Φ+| + (1-p) I/4: concurrence = max(0, (3p-1)/2).
        let bell = bell_phi_plus().density();
        let mixed = DensityMatrix::maximally_mixed(2);
        for p in [0.0, 0.2, 1.0 / 3.0, 0.5, 0.8, 1.0] {
            let m = bell.matrix().scale_real(p) + mixed.matrix().scale_real(1.0 - p);
            let rho = DensityMatrix::new(m);
            let expect = ((3.0 * p - 1.0) / 2.0_f64).max(0.0);
            assert!(
                (rho.concurrence() - expect).abs() < 1e-8,
                "p={p}: {} vs {expect}",
                rho.concurrence()
            );
        }
    }

    #[test]
    #[should_panic(expected = "unit trace")]
    fn rejects_wrong_trace() {
        DensityMatrix::new(Matrix::identity(2));
    }

    #[test]
    fn normalized_ket() {
        let k = Ket::new(vec![c(3.0, 0.0), c(4.0, 0.0)]).normalized();
        assert!((k.norm_sq() - 1.0).abs() < 1e-15);
        assert!((k.amps()[0].re - 0.6).abs() < 1e-15);
    }
}
