//! Property-based tests for the quantum substrate: channel/fidelity
//! invariants over randomized states and parameters.

use proptest::prelude::*;
use qntn_quantum::channels::{
    amplitude_damping, bit_flip, depolarizing, phase_damping, phase_flip,
};
use qntn_quantum::complex::c;
use qntn_quantum::eigen::{hermitian_eigen, psd_sqrt};
use qntn_quantum::fidelity::{
    bell_ad_sqrt_fidelity, fidelity, sqrt_fidelity, sqrt_fidelity_to_pure,
};
use qntn_quantum::matrix::Matrix;
use qntn_quantum::memory::MemoryParams;
use qntn_quantum::state::{bell_phi_plus, DensityMatrix, Ket};

/// A random normalized single-qubit ket.
fn random_qubit() -> impl Strategy<Value = Ket> {
    (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64).prop_filter_map(
        "non-null amplitude",
        |(a, b, cc, d)| {
            let k = Ket::new(vec![c(a, b), c(cc, d)]);
            if k.norm_sq() > 1e-6 {
                Some(k.normalized())
            } else {
                None
            }
        },
    )
}

/// A random two-qubit mixed state: convex mix of two pure product/entangled
/// states.
fn random_two_qubit_state() -> impl Strategy<Value = DensityMatrix> {
    (random_qubit(), random_qubit(), 0.0..1.0f64).prop_map(|(a, b, p)| {
        let pure = a.tensor(&b).density();
        let bell = bell_phi_plus().density();
        let m = pure.matrix().scale_real(p) + bell.matrix().scale_real(1.0 - p);
        DensityMatrix::new(m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn channels_are_trace_preserving(eta in 0.0..=1.0f64) {
        for ch in [
            amplitude_damping(eta),
            phase_damping(eta),
            depolarizing(eta),
            bit_flip(eta),
            phase_flip(eta),
        ] {
            prop_assert!(ch.is_trace_preserving(1e-10), "{}", ch.name());
        }
    }

    #[test]
    fn channel_output_is_valid_state(eta in 0.0..=1.0f64, rho in random_two_qubit_state()) {
        let out = amplitude_damping(eta).on_qubit(1, 2).apply(&rho);
        prop_assert!((out.matrix().trace().re - 1.0).abs() < 1e-9);
        prop_assert!(out.is_valid(1e-8));
        prop_assert!(out.purity() <= 1.0 + 1e-9);
    }

    #[test]
    fn ad_composition_is_product(e1 in 0.0..=1.0f64, e2 in 0.0..=1.0f64) {
        let composed = amplitude_damping(e1).compose_after(&amplitude_damping(e2));
        let direct = amplitude_damping(e1 * e2);
        let rho = Ket::plus().density();
        let a = composed.apply(&rho);
        let b = direct.apply(&rho);
        prop_assert!(a.matrix().approx_eq(b.matrix(), 1e-10));
    }

    #[test]
    fn fidelity_is_symmetric_and_bounded(
        rho in random_two_qubit_state(),
        sigma in random_two_qubit_state(),
    ) {
        let f1 = fidelity(&rho, &sigma);
        let f2 = fidelity(&sigma, &rho);
        prop_assert!((f1 - f2).abs() < 1e-6, "{f1} vs {f2}");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f1));
        // sqrt-fidelity dominates its square.
        let s = sqrt_fidelity(&rho, &sigma);
        prop_assert!(s + 1e-9 >= f1);
    }

    #[test]
    fn self_fidelity_is_one(rho in random_two_qubit_state()) {
        prop_assert!((fidelity(&rho, &rho) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bell_closed_form_holds(eta in 0.0..=1.0f64) {
        let bell = bell_phi_plus();
        let damped = amplitude_damping(eta).on_qubit(1, 2).apply(&bell.density());
        let measured = sqrt_fidelity_to_pure(&damped, &bell);
        prop_assert!((measured - bell_ad_sqrt_fidelity(eta)).abs() < 1e-9);
    }

    #[test]
    fn entanglement_measures_agree_on_separability(eta in 0.0..=1.0f64) {
        // Concurrence and negativity vanish together for two qubits
        // (PPT is necessary & sufficient at 2x2).
        let bell = bell_phi_plus();
        let damped = amplitude_damping(eta).on_qubit(0, 2).apply(&bell.density());
        let conc = damped.concurrence();
        let neg = damped.negativity();
        prop_assert!(conc >= -1e-9 && neg >= -1e-9);
        if conc < 1e-6 {
            prop_assert!(neg < 1e-4, "conc {conc} neg {neg}");
        }
        if neg < 1e-6 {
            prop_assert!(conc < 1e-4, "conc {conc} neg {neg}");
        }
    }

    #[test]
    fn eigen_reconstructs_random_hermitian(
        seed_vals in prop::collection::vec(-1.0..1.0f64, 32),
    ) {
        // Build a 4x4 Hermitian matrix from 32 random reals.
        let mut a = Matrix::zeros(4, 4);
        let mut it = seed_vals.into_iter();
        for i in 0..4 {
            a[(i, i)] = c(it.next().unwrap(), 0.0);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                let z = c(it.next().unwrap(), it.next().unwrap());
                a[(i, j)] = z;
                a[(j, i)] = z.conj();
            }
        }
        let e = hermitian_eigen(&a);
        prop_assert!(e.vectors.is_unitary(1e-8));
        let mut lam = Matrix::zeros(4, 4);
        for (i, &v) in e.values.iter().enumerate() {
            lam[(i, i)] = c(v, 0.0);
        }
        let back = &(&e.vectors * &lam) * &e.vectors.dagger();
        prop_assert!(back.approx_eq(&a, 1e-8));
        // Trace and Frobenius norm are spectral invariants.
        let tr: f64 = e.values.iter().sum();
        prop_assert!((tr - a.trace().re).abs() < 1e-8);
        let fro2: f64 = e.values.iter().map(|v| v * v).sum();
        prop_assert!((fro2.sqrt() - a.frobenius_norm()).abs() < 1e-8);
    }

    #[test]
    fn psd_sqrt_squares_back(rho in random_two_qubit_state()) {
        let s = psd_sqrt(rho.matrix());
        prop_assert!(s.is_hermitian(1e-8));
        prop_assert!((&s * &s).approx_eq(rho.matrix(), 1e-7));
    }

    #[test]
    fn partial_trace_preserves_trace(rho in random_two_qubit_state(), q in 0usize..2) {
        let reduced = rho.partial_trace(q);
        prop_assert!((reduced.matrix().trace().re - 1.0).abs() < 1e-9);
        prop_assert!(reduced.is_valid(1e-8));
    }

    #[test]
    fn purity_bounds(rho in random_two_qubit_state()) {
        let p = rho.purity();
        prop_assert!(p <= 1.0 + 1e-9, "{p}");
        prop_assert!(p >= 0.25 - 1e-9, "{p}"); // 1/d for d = 4
    }
}

/// `ProptestConfig` with `n` cases, overridable via `PROPTEST_CASES`
/// (nightly CI runs this suite with `PROPTEST_CASES=2048`).
fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

proptest! {
    #![proptest_config(cases_or(64))]

    /// Holding longer never improves fidelity, and every value stays
    /// clamped to the physical band `[1/2, f0]`.
    #[test]
    fn hold_fidelity_is_monotone_non_increasing_and_clamped(
        f0 in 0.5..1.0f64,
        t2 in 0.01..2000.0f64,
        a in 0u32..200,
        b in 0u32..200,
    ) {
        let m = MemoryParams::with_t2_steps(t2);
        let (short, long) = (a.min(b), a.max(b));
        let fs = m.hold_fidelity(f0, short);
        let fl = m.hold_fidelity(f0, long);
        prop_assert!(fl <= fs, "hold {long} steps beat {short}: {fl} > {fs}");
        for f in [fs, fl] {
            prop_assert!((0.5..=f0).contains(&f), "{f} outside [0.5, {f0}]");
        }
    }

    /// Zero hold is exact — bitwise `f0`, not merely close — so the
    /// zero-horizon differential contract can hold without epsilons; and
    /// one step of an ever-better memory converges continuously to it.
    #[test]
    fn hold_fidelity_is_exact_then_continuous_at_zero(f0 in 0.5..1.0f64) {
        for t2 in [0.5, 7.0, 1e3, f64::INFINITY] {
            let m = MemoryParams::with_t2_steps(t2);
            prop_assert_eq!(m.hold_fidelity(f0, 0).to_bits(), f0.to_bits());
        }
        // One held step loses at most (f0 - 1/2)(1 - e^{-1/T2}) -> 0 as
        // T2 grows: the decay has no jump at zero hold time.
        for t2 in [1e2, 1e4, 1e6] {
            let lost = f0 - MemoryParams::with_t2_steps(t2).hold_fidelity(f0, 1);
            let bound = (f0 - 0.5) * (1.0 - (-1.0 / t2).exp()) + 1e-12;
            prop_assert!(lost <= bound, "T2 {t2}: lost {lost} > {bound}");
        }
    }

    /// A better memory is never worse: fidelity after a fixed hold is
    /// monotone non-decreasing in T2, with the ideal memory as the limit.
    #[test]
    fn hold_fidelity_is_monotone_in_t2(
        f0 in 0.5..1.0f64,
        t2_lo in 0.01..500.0f64,
        factor in 1.0..50.0f64,
        steps in 1u32..100,
    ) {
        let worse = MemoryParams::with_t2_steps(t2_lo).hold_fidelity(f0, steps);
        let better = MemoryParams::with_t2_steps(t2_lo * factor).hold_fidelity(f0, steps);
        let ideal = MemoryParams::ideal().hold_fidelity(f0, steps);
        prop_assert!(worse <= better + 1e-15);
        prop_assert!(better <= ideal + 1e-15);
        prop_assert_eq!(ideal.to_bits(), f0.to_bits());
    }

    /// The eta-space equivalence the routing layer relies on: decaying the
    /// transmissivity by `hold_eta_factor` and then measuring equals
    /// decaying the measured fidelity directly. This is why hold edges can
    /// carry plain eta multipliers through a quantum-free routing crate.
    #[test]
    fn hold_eta_factor_commutes_with_the_fidelity_map(
        eta in 0.0..1.0f64,
        t2 in 0.1..500.0f64,
        steps in 0u32..100,
    ) {
        let m = MemoryParams::with_t2_steps(t2);
        let via_eta = bell_ad_sqrt_fidelity(eta * m.hold_eta_factor(steps));
        let via_f = m.hold_fidelity(bell_ad_sqrt_fidelity(eta), steps);
        prop_assert!(
            (via_eta - via_f).abs() < 1e-12,
            "eta {eta}, T2 {t2}, {steps} steps: {via_eta} vs {via_f}"
        );
    }
}
