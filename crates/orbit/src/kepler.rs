//! Kepler's equation and anomaly conversions.
//!
//! The propagator advances the *mean* anomaly linearly in time and then
//! needs the *eccentric* (and from it the *true*) anomaly, which requires
//! solving Kepler's transcendental equation `M = E − e sinE`. We use a
//! Newton–Raphson iteration seeded with a third-order initial guess; for the
//! near-circular orbits in QNTN it converges in one or two steps, and for
//! e up to 0.97 within the iteration cap (tested).

/// Solve Kepler's equation `M = E - e*sin(E)` for the eccentric anomaly E.
///
/// `mean_anomaly` may be any real; the result is congruent mod 2π.
/// Panics in debug builds if `ecc` is outside `[0, 1)`.
pub fn solve_kepler(mean_anomaly: f64, ecc: f64) -> f64 {
    debug_assert!(
        (0.0..1.0).contains(&ecc),
        "elliptic solver needs 0 <= e < 1"
    );
    if ecc == 0.0 {
        return mean_anomaly;
    }
    let m = normalize_pi(mean_anomaly);

    // Third-order initial guess (Danby): good even at high eccentricity.
    let mut e_anom = m + 0.85 * ecc * m.sin().signum().max(-1.0);
    if e_anom == m {
        // sin(m) == 0 exactly: nudge so Newton doesn't stall at e.g. m = 0.
        e_anom = m + 0.85 * ecc;
    }

    for _ in 0..50 {
        let (s, c) = e_anom.sin_cos();
        let f = e_anom - ecc * s - m;
        let fp = 1.0 - ecc * c;
        let delta = f / fp;
        e_anom -= delta;
        if delta.abs() < 1e-14 {
            break;
        }
    }
    // Return congruent to the caller's branch.
    e_anom + (mean_anomaly - m)
}

/// Eccentric anomaly → mean anomaly (Kepler's equation, forward direction).
#[inline]
pub fn eccentric_to_mean(e_anom: f64, ecc: f64) -> f64 {
    e_anom - ecc * e_anom.sin()
}

/// Eccentric anomaly → true anomaly.
pub fn eccentric_to_true(e_anom: f64, ecc: f64) -> f64 {
    let beta = (1.0 - ecc * ecc).sqrt();
    // atan2 form is branch-safe for all quadrants.
    let nu = (beta * e_anom.sin()).atan2(e_anom.cos() - ecc);
    // Keep the same 2π branch as the input.
    nu + (e_anom - normalize_pi(e_anom))
}

/// True anomaly → eccentric anomaly.
pub fn true_to_eccentric(nu: f64, ecc: f64) -> f64 {
    let beta = (1.0 - ecc * ecc).sqrt();
    let e_anom = (beta * nu.sin()).atan2(ecc + nu.cos());
    e_anom + (nu - normalize_pi(nu))
}

/// Mean anomaly → true anomaly (solve Kepler, then convert).
#[inline]
pub fn mean_to_true(mean_anomaly: f64, ecc: f64) -> f64 {
    eccentric_to_true(solve_kepler(mean_anomaly, ecc), ecc)
}

/// True anomaly → mean anomaly.
#[inline]
pub fn true_to_mean(nu: f64, ecc: f64) -> f64 {
    eccentric_to_mean(true_to_eccentric(nu, ecc), ecc)
}

/// Wrap an angle into `(-π, π]` (keeps Newton well-conditioned).
fn normalize_pi(angle: f64) -> f64 {
    let a = angle.rem_euclid(std::f64::consts::TAU);
    if a > std::f64::consts::PI {
        a - std::f64::consts::TAU
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_orbit_identity() {
        for m in [-3.0, 0.0, 0.5, 2.0, 10.0] {
            assert_eq!(solve_kepler(m, 0.0), m);
            assert!((mean_to_true(m, 0.0) - m).abs() < 1e-12);
        }
    }

    #[test]
    fn kepler_residual_is_tiny() {
        for &ecc in &[0.001, 0.1, 0.5, 0.9, 0.97] {
            for k in 0..=20 {
                let m = f64::from(k) * 0.3 - 3.0;
                let e_anom = solve_kepler(m, ecc);
                let resid = e_anom - ecc * e_anom.sin() - m;
                assert!(resid.abs() < 1e-12, "e={ecc} M={m}: residual {resid}");
            }
        }
    }

    #[test]
    fn anomaly_roundtrip_true_eccentric() {
        for &ecc in &[0.0, 0.2, 0.7] {
            for k in 0..=12 {
                let nu = f64::from(k) * 0.5;
                let back = eccentric_to_true(true_to_eccentric(nu, ecc), ecc);
                assert!((back - nu).abs() < 1e-12, "e={ecc} nu={nu} back={back}");
            }
        }
    }

    #[test]
    fn anomaly_roundtrip_mean_true() {
        for &ecc in &[0.0, 0.3, 0.8] {
            for k in 0..=12 {
                let m = f64::from(k) * 0.5;
                let back = true_to_mean(mean_to_true(m, ecc), ecc);
                assert!((back - m).abs() < 1e-11, "e={ecc} M={m} back={back}");
            }
        }
    }

    #[test]
    fn quadrant_agreement_at_small_eccentricity() {
        // For small e, ν ≈ M + 2e sin M (equation of centre, first order).
        let ecc = 0.01;
        for k in 1..12 {
            let m = f64::from(k) * 0.5;
            let nu = mean_to_true(m, ecc);
            let approx = m + 2.0 * ecc * m.sin();
            assert!((nu - approx).abs() < 3.0 * ecc * ecc, "M={m}");
        }
    }

    #[test]
    fn known_textbook_case() {
        // Vallado example 2-1: M = 235.4°, e = 0.4 -> E = 220.512074°.
        let m = 235.4_f64.to_radians();
        let e_anom = solve_kepler(m, 0.4);
        assert!(
            (e_anom.to_degrees() - 220.512_074).abs() < 1e-4,
            "{}",
            e_anom.to_degrees()
        );
    }

    #[test]
    fn preserves_branch() {
        // Inputs beyond 2π should come back on the same branch.
        let m = 3.0 * std::f64::consts::TAU + 1.0;
        let e_anom = solve_kepler(m, 0.3);
        assert!((e_anom - m).abs() < 1.0);
        let resid = e_anom - 0.3 * e_anom.sin() - m;
        assert!(resid.abs() < 1e-12);
    }
}
