//! Numerical orbit propagation (RK4) with the full J2 acceleration.
//!
//! The analytic propagators in [`crate::propagator`] are what the
//! experiments use; this integrator exists to *validate* them, the standard
//! astrodynamics cross-check: two-body RK4 must track the Kepler solution
//! to metres over a day, and the full-J2 RK4 must reproduce the secular
//! nodal drift the analytic J2 model applies. The ablation bench also uses
//! it to bound the error of the 30-second movement-sheet cadence.

use crate::elements::{EARTH_J2, EARTH_MU, EARTH_RADIUS_EQ_M};
use qntn_geo::Vec3;

/// Force models for the numerical integrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceModel {
    /// Point-mass Earth.
    TwoBody,
    /// Point mass + the full (osculating) J2 acceleration.
    J2Full,
}

/// Gravitational acceleration at ECI position `r` under the force model.
pub fn acceleration(r: Vec3, model: ForceModel) -> Vec3 {
    let rn = r.norm();
    let mut a = r * (-EARTH_MU / (rn * rn * rn));
    if model == ForceModel::J2Full {
        // Standard J2 acceleration in Cartesian ECI coordinates.
        let factor =
            -1.5 * EARTH_J2 * EARTH_MU * EARTH_RADIUS_EQ_M * EARTH_RADIUS_EQ_M / rn.powi(5);
        let z2_r2 = (r.z * r.z) / (rn * rn);
        a += Vec3::new(
            factor * r.x * (1.0 - 5.0 * z2_r2),
            factor * r.y * (1.0 - 5.0 * z2_r2),
            factor * r.z * (3.0 - 5.0 * z2_r2),
        );
    }
    a
}

/// A position/velocity state for the integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct State {
    pub position: Vec3,
    pub velocity: Vec3,
}

/// One classical RK4 step of size `dt` seconds.
pub fn rk4_step(state: State, dt: f64, model: ForceModel) -> State {
    let deriv = |s: State| (s.velocity, acceleration(s.position, model));

    let (k1r, k1v) = deriv(state);
    let (k2r, k2v) = deriv(State {
        position: state.position + k1r * (dt / 2.0),
        velocity: state.velocity + k1v * (dt / 2.0),
    });
    let (k3r, k3v) = deriv(State {
        position: state.position + k2r * (dt / 2.0),
        velocity: state.velocity + k2v * (dt / 2.0),
    });
    let (k4r, k4v) = deriv(State {
        position: state.position + k3r * dt,
        velocity: state.velocity + k3v * dt,
    });
    State {
        position: state.position + (k1r + k2r * 2.0 + k3r * 2.0 + k4r) * (dt / 6.0),
        velocity: state.velocity + (k1v + k2v * 2.0 + k3v * 2.0 + k4v) * (dt / 6.0),
    }
}

/// Integrate for `duration_s` with fixed step `dt`, returning the final
/// state (callers wanting a trajectory step manually).
pub fn propagate_numerical(initial: State, duration_s: f64, dt: f64, model: ForceModel) -> State {
    assert!(dt > 0.0, "step must be positive");
    let n = (duration_s / dt).round() as usize;
    let mut s = initial;
    for _ in 0..n {
        s = rk4_step(s, dt, model);
    }
    // Fractional remainder step to land exactly on duration_s.
    let rem = duration_s - n as f64 * dt;
    if rem.abs() > 1e-9 {
        s = rk4_step(s, rem, model);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Keplerian;
    use crate::propagator::{PerturbationModel, Propagator};
    use qntn_geo::Epoch;

    fn leo_initial() -> (Keplerian, State) {
        let k = Keplerian::circular(6_871_000.0, 53f64.to_radians(), 0.7, 0.2);
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let s0 = p.propagate(0.0);
        (
            k,
            State {
                position: s0.position,
                velocity: s0.velocity,
            },
        )
    }

    #[test]
    fn two_body_rk4_matches_kepler_over_an_orbit() {
        let (k, s0) = leo_initial();
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let t = k.period_s();
        let numeric = propagate_numerical(s0, t, 10.0, ForceModel::TwoBody);
        let analytic = p.propagate(t);
        let err = (numeric.position - analytic.position).norm();
        assert!(err < 1.0, "RK4 vs Kepler after one period: {err} m");
    }

    #[test]
    fn two_body_rk4_matches_kepler_over_a_day() {
        let (k, s0) = leo_initial();
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let numeric = propagate_numerical(s0, 86_400.0, 10.0, ForceModel::TwoBody);
        let analytic = p.propagate(86_400.0);
        let err = (numeric.position - analytic.position).norm();
        assert!(err < 100.0, "RK4 vs Kepler after a day: {err} m");
    }

    #[test]
    fn rk4_conserves_two_body_energy() {
        let (_, s0) = leo_initial();
        let energy = |s: &State| s.velocity.norm_sq() / 2.0 - EARTH_MU / s.position.norm();
        let e0 = energy(&s0);
        // RK4 is not symplectic; the secular energy drift at dt = 30 s over
        // a full day stays below a part in 10^6 — far finer than the link
        // budget resolves.
        let s = propagate_numerical(s0, 86_400.0, 30.0, ForceModel::TwoBody);
        assert!(((energy(&s) - e0) / e0).abs() < 1e-6);
    }

    #[test]
    fn j2_acceleration_reduces_to_two_body_at_equator_scaling() {
        // On the equatorial plane (z = 0) the J2 term is purely radial and
        // outward-reducing; check magnitude ratio ~ 1.5·J2·(Re/r)².
        let r = Vec3::new(6_871_000.0, 0.0, 0.0);
        let a2 = acceleration(r, ForceModel::TwoBody);
        let aj = acceleration(r, ForceModel::J2Full);
        let delta = (aj - a2).norm() / a2.norm();
        let expect = 1.5 * EARTH_J2 * (EARTH_RADIUS_EQ_M / 6_871_000.0_f64).powi(2);
        assert!(
            (delta - expect).abs() / expect < 1e-9,
            "{delta} vs {expect}"
        );
    }

    #[test]
    fn full_j2_reproduces_secular_nodal_drift() {
        // Integrate a day with full J2 and measure the RAAN drift from the
        // orbit normal; it must match the analytic secular rate to a few %.
        let (k, s0) = leo_initial();
        let analytic_rate =
            Propagator::new(k, Epoch::J2000, PerturbationModel::J2Secular).raan_rate();

        let node_angle = |s: &State| {
            let h = s.position.cross(s.velocity);
            // Ascending node direction = z × h.
            let n = Vec3::Z.cross(h);
            n.y.atan2(n.x)
        };
        let day = 86_400.0;
        let s1 = propagate_numerical(s0, day, 10.0, ForceModel::J2Full);
        let mut drift = node_angle(&s1) - node_angle(&s0);
        while drift > std::f64::consts::PI {
            drift -= std::f64::consts::TAU;
        }
        while drift < -std::f64::consts::PI {
            drift += std::f64::consts::TAU;
        }
        let numeric_rate = drift / day;
        assert!(
            (numeric_rate - analytic_rate).abs() / analytic_rate.abs() < 0.05,
            "numeric {numeric_rate:e} vs analytic {analytic_rate:e}"
        );
    }

    #[test]
    fn step_size_convergence() {
        // Halving the step should shrink the error ~16x (4th order); just
        // check it shrinks substantially.
        let (k, s0) = leo_initial();
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let t = 3_000.0;
        let truth = p.propagate(t).position;
        let coarse =
            (propagate_numerical(s0, t, 60.0, ForceModel::TwoBody).position - truth).norm();
        let fine = (propagate_numerical(s0, t, 15.0, ForceModel::TwoBody).position - truth).norm();
        assert!(fine < coarse / 8.0, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn fractional_final_step_lands_exactly() {
        let (_, s0) = leo_initial();
        let a = propagate_numerical(s0, 100.0, 30.0, ForceModel::TwoBody);
        let b = propagate_numerical(s0, 100.0, 10.0, ForceModel::TwoBody);
        assert!((a.position - b.position).norm() < 0.1);
    }
}
