//! # qntn-orbit — satellite dynamics for QNTN
//!
//! This crate replaces the paper's use of Ansys STK. The paper only consumed
//! STK output in one form: per-satellite "movement sheets" — positions
//! sampled every 30 seconds over one day — that the upgraded QuNetSim then
//! replayed. We generate the same artifact from first principles:
//!
//! - [`elements::Keplerian`] — classical orbital elements and derived
//!   quantities (period, mean motion).
//! - [`kepler`] — Kepler's equation solvers and anomaly conversions.
//! - [`propagator::Propagator`] — two-body propagation with optional J2
//!   secular perturbations (RAAN/argument-of-perigee drift), producing ECI
//!   states at arbitrary times.
//! - [`walker`] — Walker-Delta constellation builders, including the exact
//!   108-satellite incremental configuration of the paper's Table II.
//! - [`ephemeris`] — movement-sheet generation (30 s cadence, 24 h) and
//!   replay, with ECEF/geodetic conversion baked in.
//! - [`visibility`] — elevation-mask pass prediction and interval algebra
//!   (the coverage-period bookkeeping of the paper's Eq. 6–7).
//!
//! Everything is deterministic; the rayon-parallel paths produce bitwise
//! the same ephemerides as the sequential ones (tested).

pub mod contact;
pub mod elements;
pub mod ephemeris;
pub mod kepler;
pub mod numerical;
pub mod propagator;
pub mod spatial;
pub mod sun;
pub mod visibility;
pub mod walker;

pub use contact::{Contact, ContactPlan};
pub use elements::{Keplerian, EARTH_J2, EARTH_MU, EARTH_RADIUS_EQ_M};
pub use ephemeris::{Ephemeris, EphemerisSample};
pub use numerical::{propagate_numerical, ForceModel};
pub use propagator::{PerturbationModel, Propagator};
pub use spatial::GroundGrid;
pub use sun::{is_sunlit, sun_elevation, sun_position_eci, Twilight};
pub use visibility::{merge_intervals, total_duration, Interval, PassPredictor};
pub use walker::{
    paper_constellation, scaled_shell, WalkerDelta, PAPER_ALTITUDE_M, PAPER_INCLINATION_DEG,
    PAPER_SEMI_MAJOR_AXIS_M,
};
