//! Classical (Keplerian) orbital elements.

use serde::{Deserialize, Serialize};

/// Earth's gravitational parameter μ = GM, m³/s² (WGS-84 value).
pub const EARTH_MU: f64 = 3.986_004_418e14;

/// Earth's J2 zonal harmonic coefficient (oblateness).
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Earth's equatorial radius used in the J2 model, metres.
pub const EARTH_RADIUS_EQ_M: f64 = 6_378_137.0;

/// Classical orbital elements. Angles in **radians**.
///
/// For the circular orbits the paper uses (e = 0), the argument of perigee
/// is degenerate; we keep it at 0 and fold the satellite's position into the
/// anomaly, matching how Table II specifies satellites by (RAAN, true
/// anomaly) alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keplerian {
    /// Semi-major axis, metres.
    pub semi_major_m: f64,
    /// Eccentricity (0 ≤ e < 1 supported by the propagator).
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination: f64,
    /// Right ascension of the ascending node, radians.
    pub raan: f64,
    /// Argument of perigee, radians.
    pub arg_perigee: f64,
    /// True anomaly at epoch, radians.
    pub true_anomaly: f64,
}

impl Keplerian {
    /// A circular orbit: only altitude-driven semi-major axis, inclination,
    /// RAAN and true anomaly, as in the paper's Table II.
    pub fn circular(semi_major_m: f64, inclination: f64, raan: f64, true_anomaly: f64) -> Self {
        Keplerian {
            semi_major_m,
            eccentricity: 0.0,
            inclination,
            raan,
            arg_perigee: 0.0,
            true_anomaly,
        }
    }

    /// Mean motion n = sqrt(μ/a³), rad/s.
    #[inline]
    pub fn mean_motion(&self) -> f64 {
        (EARTH_MU / self.semi_major_m.powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    #[inline]
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.mean_motion()
    }

    /// Perigee radius, metres.
    #[inline]
    pub fn perigee_radius_m(&self) -> f64 {
        self.semi_major_m * (1.0 - self.eccentricity)
    }

    /// Apogee radius, metres.
    #[inline]
    pub fn apogee_radius_m(&self) -> f64 {
        self.semi_major_m * (1.0 + self.eccentricity)
    }

    /// Specific orbital energy, J/kg (negative for bound orbits).
    #[inline]
    pub fn specific_energy(&self) -> f64 {
        -EARTH_MU / (2.0 * self.semi_major_m)
    }

    /// Specific angular momentum magnitude, m²/s.
    #[inline]
    pub fn specific_angular_momentum(&self) -> f64 {
        (EARTH_MU * self.semi_major_m * (1.0 - self.eccentricity * self.eccentricity)).sqrt()
    }

    /// Mean anomaly at epoch (converted from the stored true anomaly).
    pub fn mean_anomaly(&self) -> f64 {
        let e_anom = crate::kepler::true_to_eccentric(self.true_anomaly, self.eccentricity);
        crate::kepler::eccentric_to_mean(e_anom, self.eccentricity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_orbit() -> Keplerian {
        Keplerian::circular(6_871_000.0, 53.0_f64.to_radians(), 0.0, 0.0)
    }

    #[test]
    fn leo_period_is_about_95_minutes() {
        // a = 6871 km (500 km altitude): T = 2π sqrt(a³/μ) ≈ 5675 s.
        let t = paper_orbit().period_s();
        assert!((t - 5_675.0).abs() < 10.0, "{t}");
    }

    #[test]
    fn mean_motion_period_consistency() {
        let k = paper_orbit();
        assert!((k.mean_motion() * k.period_s() - std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    fn circular_orbit_radii() {
        let k = paper_orbit();
        assert_eq!(k.perigee_radius_m(), k.semi_major_m);
        assert_eq!(k.apogee_radius_m(), k.semi_major_m);
    }

    #[test]
    fn eccentric_orbit_radii() {
        let k = Keplerian {
            eccentricity: 0.1,
            ..paper_orbit()
        };
        assert!((k.perigee_radius_m() - 6_871_000.0 * 0.9).abs() < 1e-6);
        assert!((k.apogee_radius_m() - 6_871_000.0 * 1.1).abs() < 1e-6);
    }

    #[test]
    fn bound_orbit_energy_negative() {
        assert!(paper_orbit().specific_energy() < 0.0);
    }

    #[test]
    fn circular_mean_anomaly_equals_true_anomaly() {
        for nu in [0.0, 1.0, 3.0, 6.0] {
            let k = Keplerian::circular(6_871_000.0, 0.9, 0.0, nu);
            assert!((k.mean_anomaly() - nu).abs() < 1e-12);
        }
    }

    #[test]
    fn angular_momentum_vis_viva_consistency() {
        // For a circular orbit h = r * v_circ = sqrt(μ a).
        let k = paper_orbit();
        let expect = (EARTH_MU * k.semi_major_m).sqrt();
        assert!((k.specific_angular_momentum() - expect).abs() < 1e-3);
    }
}
