//! Walker-Delta constellations and the paper's exact Table II layout.
//!
//! The paper grows the constellation from 6 to 108 satellites in steps of 6:
//!
//! - The **first 36** satellites fill a 6-plane Walker Delta (planes at RAAN
//!   0°,60°,…,300°, inclination 53°). Table II orders them by true-anomaly
//!   shell: first one satellite per plane at ν = 0°, then a second per plane
//!   at ν = 60°, and so on — so at N = 6 there are six planes with one
//!   satellite each.
//! - Satellites **37–108** add 12 in-between planes (RAAN 20°,40°,80°,100°,
//!   140°,160°,200°,220°,260°,280°,320°,340°), each filled with all six
//!   satellites (ν = 0°…300°) at once, in Table II's column order.
//!
//! [`paper_constellation`] reproduces that exact 108-row sequence; a unit
//! test checks every row against the published table. [`WalkerDelta`] is the
//! generic `i : t/p/f` builder for ablations.

use crate::elements::Keplerian;
use serde::{Deserialize, Serialize};

/// Paper's satellite altitude: 500 km.
pub const PAPER_ALTITUDE_M: f64 = 500_000.0;

/// Paper's semi-major axis: 6871 km ("corresponding to an altitude of 500 km").
pub const PAPER_SEMI_MAJOR_AXIS_M: f64 = 6_871_000.0;

/// Paper's inclination: 53 degrees.
pub const PAPER_INCLINATION_DEG: f64 = 53.0;

/// One row of Table II: a satellite slot identified by RAAN and true anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    pub raan_deg: f64,
    pub true_anomaly_deg: f64,
}

/// The Table II sequence: the order in which the paper adds satellites as the
/// constellation grows from 6 to 108.
pub fn paper_slots() -> Vec<Slot> {
    let base_raans = [0.0, 60.0, 120.0, 180.0, 240.0, 300.0];
    let anomalies = [0.0, 60.0, 120.0, 180.0, 240.0, 300.0];
    let extra_raans = [
        20.0, 40.0, 80.0, 100.0, 140.0, 160.0, 200.0, 220.0, 260.0, 280.0, 320.0, 340.0,
    ];

    let mut slots = Vec::with_capacity(108);
    // First 36: anomaly-major over the six base planes.
    for &ta in &anomalies {
        for &raan in &base_raans {
            slots.push(Slot {
                raan_deg: raan,
                true_anomaly_deg: ta,
            });
        }
    }
    // Remaining 72: plane-major over the twelve gap-filling planes.
    for &raan in &extra_raans {
        for &ta in &anomalies {
            slots.push(Slot {
                raan_deg: raan,
                true_anomaly_deg: ta,
            });
        }
    }
    slots
}

/// The first `n` satellites of the paper's incremental constellation as
/// Keplerian element sets (circular, 53°, a = 6871 km).
///
/// ```
/// use qntn_orbit::paper_constellation;
///
/// let sats = paper_constellation(108);
/// assert_eq!(sats.len(), 108);
/// // ~95-minute LEO period at the paper's 6871 km semi-major axis:
/// assert!((sats[0].period_s() / 60.0 - 94.6).abs() < 0.5);
/// ```
///
/// # Panics
/// Panics if `n > 108` (the paper's table stops there).
pub fn paper_constellation(n: usize) -> Vec<Keplerian> {
    assert!(
        n <= 108,
        "the paper's Table II defines at most 108 satellites"
    );
    paper_slots()
        .into_iter()
        .take(n)
        .map(|s| {
            Keplerian::circular(
                PAPER_SEMI_MAJOR_AXIS_M,
                PAPER_INCLINATION_DEG.to_radians(),
                s.raan_deg.to_radians(),
                s.true_anomaly_deg.to_radians(),
            )
        })
        .collect()
}

/// A Walker shell of `n` satellites at the paper's inclination and
/// semi-major axis, for scale benchmarking beyond Table II's 108 rows: the
/// plane count is the largest divisor of `n` not exceeding `√n` (the
/// most-square layout — 1080 gives 30 planes of 36), phasing factor 1 so
/// adjacent planes are staggered.
///
/// ```
/// use qntn_orbit::scaled_shell;
///
/// let shell = scaled_shell(1080);
/// assert_eq!((shell.total, shell.planes), (1080, 30));
/// assert_eq!(shell.elements().len(), 1080);
/// ```
///
/// # Panics
/// Panics if `n` is zero.
pub fn scaled_shell(n: usize) -> WalkerDelta {
    assert!(n > 0, "a shell needs at least one satellite");
    let mut planes = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            planes = d;
        }
        d += 1;
    }
    WalkerDelta {
        inclination: PAPER_INCLINATION_DEG.to_radians(),
        total: n,
        planes,
        phasing: 1 % planes,
        semi_major_m: PAPER_SEMI_MAJOR_AXIS_M,
    }
}

/// A generic Walker-Delta constellation `i : t/p/f`.
///
/// `t` satellites in `p` evenly-spaced planes, `f` the phasing factor: the
/// in-plane anomaly offset between adjacent planes is `f · 360°/t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkerDelta {
    /// Inclination, radians.
    pub inclination: f64,
    /// Total number of satellites `t`.
    pub total: usize,
    /// Number of orbital planes `p` (must divide `t`).
    pub planes: usize,
    /// Phasing factor `f` in `0..p`.
    pub phasing: usize,
    /// Semi-major axis, metres.
    pub semi_major_m: f64,
}

impl WalkerDelta {
    /// The paper's base 36-satellite shell as a standard Walker Delta
    /// (53°: 36/6/0 at a = 6871 km).
    pub fn paper_base() -> Self {
        WalkerDelta {
            inclination: PAPER_INCLINATION_DEG.to_radians(),
            total: 36,
            planes: 6,
            phasing: 0,
            semi_major_m: PAPER_SEMI_MAJOR_AXIS_M,
        }
    }

    /// Generate the element sets.
    ///
    /// # Panics
    /// Panics if `planes` is zero or does not divide `total`.
    pub fn elements(&self) -> Vec<Keplerian> {
        assert!(self.planes > 0, "need at least one plane");
        assert_eq!(
            self.total % self.planes,
            0,
            "satellites ({}) must divide evenly into planes ({})",
            self.total,
            self.planes
        );
        let per_plane = self.total / self.planes;
        let mut out = Vec::with_capacity(self.total);
        for plane in 0..self.planes {
            let raan = std::f64::consts::TAU * plane as f64 / self.planes as f64;
            let phase_offset =
                std::f64::consts::TAU * (self.phasing * plane) as f64 / self.total as f64;
            for k in 0..per_plane {
                let nu = std::f64::consts::TAU * k as f64 / per_plane as f64 + phase_offset;
                out.push(Keplerian::circular(
                    self.semi_major_m,
                    self.inclination,
                    raan,
                    nu,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every (RAAN, anomaly) pair from the paper's Table II, in reading order
    /// of its three column pairs.
    fn table_ii_rows() -> Vec<(f64, f64)> {
        let mut rows = Vec::new();
        // Column 1: the 36 base-plane rows (anomaly-major).
        for ta in [0.0, 60.0, 120.0, 180.0, 240.0, 300.0] {
            for raan in [0.0, 60.0, 120.0, 180.0, 240.0, 300.0] {
                rows.push((raan, ta));
            }
        }
        // Columns 2 and 3: plane-major extra planes.
        for raan in [
            20.0, 40.0, 80.0, 100.0, 140.0, 160.0, 200.0, 220.0, 260.0, 280.0, 320.0, 340.0,
        ] {
            for ta in [0.0, 60.0, 120.0, 180.0, 240.0, 300.0] {
                rows.push((raan, ta));
            }
        }
        rows
    }

    #[test]
    fn slots_match_table_ii_exactly() {
        let slots = paper_slots();
        let expect = table_ii_rows();
        assert_eq!(slots.len(), 108);
        for (i, (slot, (raan, ta))) in slots.iter().zip(expect).enumerate() {
            assert_eq!(slot.raan_deg, raan, "row {i} raan");
            assert_eq!(slot.true_anomaly_deg, ta, "row {i} anomaly");
        }
    }

    #[test]
    fn all_108_slots_are_distinct() {
        let slots = paper_slots();
        for i in 0..slots.len() {
            for j in (i + 1)..slots.len() {
                assert!(
                    slots[i] != slots[j],
                    "duplicate slot at {i} and {j}: {:?}",
                    slots[i]
                );
            }
        }
    }

    #[test]
    fn eighteen_planes_spaced_20_degrees() {
        let mut raans: Vec<f64> = paper_slots().iter().map(|s| s.raan_deg).collect();
        raans.sort_by(f64::total_cmp);
        raans.dedup();
        assert_eq!(raans.len(), 18);
        for (k, r) in raans.iter().enumerate() {
            assert_eq!(*r, k as f64 * 20.0, "plane {k}");
        }
    }

    #[test]
    fn first_36_cover_base_planes_one_anomaly_at_a_time() {
        let slots = paper_slots();
        // Satellites 0..6 are one per base plane, all at anomaly 0.
        for s in &slots[..6] {
            assert_eq!(s.true_anomaly_deg, 0.0);
        }
        // Satellites 6..12 all at anomaly 60.
        for s in &slots[6..12] {
            assert_eq!(s.true_anomaly_deg, 60.0);
        }
    }

    #[test]
    fn constellation_elements_use_paper_orbit() {
        for k in paper_constellation(108) {
            assert_eq!(k.semi_major_m, PAPER_SEMI_MAJOR_AXIS_M);
            assert_eq!(k.eccentricity, 0.0);
            assert!((k.inclination.to_degrees() - 53.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_property() {
        // Growing the constellation never moves already-deployed satellites.
        let full = paper_constellation(108);
        for n in (6..=108).step_by(6) {
            let partial = paper_constellation(n);
            assert_eq!(partial.len(), n);
            assert_eq!(&full[..n], &partial[..]);
        }
    }

    #[test]
    #[should_panic(expected = "at most 108")]
    fn constellation_capped_at_108() {
        paper_constellation(109);
    }

    #[test]
    fn generic_walker_counts() {
        let w = WalkerDelta::paper_base();
        let els = w.elements();
        assert_eq!(els.len(), 36);
        let mut raans: Vec<f64> = els.iter().map(|e| e.raan.to_degrees()).collect();
        raans.sort_by(f64::total_cmp);
        raans.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert_eq!(raans.len(), 6);
    }

    #[test]
    fn walker_phasing_offsets_anomalies() {
        let w = WalkerDelta {
            inclination: 1.0,
            total: 12,
            planes: 4,
            phasing: 1,
            semi_major_m: 7_000_000.0,
        };
        let els = w.elements();
        // First satellite of plane 1 is offset by f*360/t = 30 degrees.
        let plane1_first = els[3];
        assert!((plane1_first.true_anomaly.to_degrees() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_shell_picks_the_most_square_layout() {
        for (n, planes) in [(1, 1), (6, 2), (108, 9), (1080, 30), (1087, 1), (1296, 36)] {
            let shell = scaled_shell(n);
            assert_eq!(shell.planes, planes, "n = {n}");
            assert!(n.is_multiple_of(shell.planes));
            assert!(shell.phasing < shell.planes.max(1));
            assert_eq!(shell.elements().len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one satellite")]
    fn scaled_shell_rejects_zero() {
        scaled_shell(0);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn walker_rejects_uneven_split() {
        WalkerDelta {
            inclination: 1.0,
            total: 10,
            planes: 4,
            phasing: 0,
            semi_major_m: 7e6,
        }
        .elements();
    }
}
