//! Pass prediction and interval algebra.
//!
//! The paper's coverage period (Eq. 6) is the union of time intervals during
//! which connectivity holds, and its percentage of the day (Eq. 7). This
//! module provides:
//!
//! - [`Interval`] and [`merge_intervals`]/[`total_duration`] — the interval
//!   algebra behind Eq. 6.
//! - [`PassPredictor`] — elevation-mask visibility of an [`Ephemeris`] from
//!   a ground site, yielding passes as intervals.

use crate::ephemeris::Ephemeris;
use qntn_geo::look::look_angles_ecef;
use qntn_geo::{Geodetic, WGS84};
use serde::{Deserialize, Serialize};

/// A half-open time interval `[start_s, end_s)` in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    pub start_s: f64,
    pub end_s: f64,
}

impl Interval {
    /// Construct; panics if `end < start`.
    pub fn new(start_s: f64, end_s: f64) -> Self {
        assert!(end_s >= start_s, "interval end before start");
        Interval { start_s, end_s }
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// True when `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }

    /// True when two intervals overlap or touch.
    #[inline]
    pub fn touches(&self, other: &Interval) -> bool {
        self.start_s <= other.end_s && other.start_s <= self.end_s
    }
}

/// Merge overlapping/touching intervals into a sorted disjoint set.
pub fn merge_intervals(mut intervals: Vec<Interval>) -> Vec<Interval> {
    if intervals.is_empty() {
        return intervals;
    }
    intervals.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    let mut merged = Vec::with_capacity(intervals.len());
    let mut current = intervals[0];
    for iv in intervals.into_iter().skip(1) {
        if iv.start_s <= current.end_s {
            current.end_s = current.end_s.max(iv.end_s);
        } else {
            merged.push(current);
            current = iv;
        }
    }
    merged.push(current);
    merged
}

/// Total covered duration of a set of (possibly overlapping) intervals —
/// the paper's `T_c = Σ (t_end,k − t_start,k)` after merging.
pub fn total_duration(intervals: Vec<Interval>) -> f64 {
    merge_intervals(intervals)
        .iter()
        .map(Interval::duration_s)
        .sum()
}

/// Intersect two sorted disjoint interval sets.
pub fn intersect_intervals(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].start_s.max(b[j].start_s);
        let hi = a[i].end_s.min(b[j].end_s);
        if lo < hi {
            out.push(Interval::new(lo, hi));
        }
        if a[i].end_s < b[j].end_s {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Predicts passes of a sampled trajectory over a ground site.
#[derive(Debug, Clone)]
pub struct PassPredictor {
    site: Geodetic,
    /// Minimum elevation, radians.
    pub mask: f64,
}

impl PassPredictor {
    /// A predictor for `site` with elevation mask `mask` radians.
    pub fn new(site: Geodetic, mask: f64) -> Self {
        PassPredictor { site, mask }
    }

    /// Elevation (radians) of each ephemeris sample as seen from the site.
    pub fn elevations(&self, eph: &Ephemeris) -> Vec<f64> {
        eph.samples()
            .iter()
            .map(|s| look_angles_ecef(self.site, s.ecef, &WGS84).elevation)
            .collect()
    }

    /// Per-sample above-horizon flags, the zero-mask fast path.
    ///
    /// Elevation is `asin(d·û / |d|)` for the site's ellipsoidal normal
    /// `û`, so its sign is the sign of `d·û`: one subtraction and one dot
    /// product per sample instead of the full ENU/atan2 look-angle
    /// computation. Exactly equivalent to `elevation >= 0` (tested), which
    /// makes it a sound pruning predicate for link evaluators that require
    /// strictly positive elevation.
    pub fn above_horizon_flags(&self, eph: &Ephemeris) -> Vec<bool> {
        let enu = qntn_geo::Enu::at(self.site, &WGS84);
        let site_ecef = self.site.to_ecef(&WGS84);
        let up = enu.up();
        eph.samples()
            .iter()
            .map(|s| (s.ecef - site_ecef).dot(up) >= 0.0)
            .collect()
    }

    /// Visibility passes as intervals on the ephemeris' own timeline. A pass
    /// spans the contiguous run of samples above the mask; boundaries are at
    /// sample resolution (the paper's 30 s cadence).
    pub fn passes(&self, eph: &Ephemeris) -> Vec<Interval> {
        let elevations = self.elevations(eph);
        let step = eph.step_s();
        let mut passes = Vec::new();
        let mut start: Option<f64> = None;
        for (k, &el) in elevations.iter().enumerate() {
            let t = k as f64 * step;
            if el >= self.mask {
                if start.is_none() {
                    start = Some(t);
                }
            } else if let Some(s) = start.take() {
                passes.push(Interval::new(s, t));
            }
        }
        if let Some(s) = start {
            passes.push(Interval::new(s, elevations.len() as f64 * step));
        }
        passes
    }

    /// Fraction of the ephemeris duration with the satellite above the mask.
    pub fn visibility_fraction(&self, eph: &Ephemeris) -> f64 {
        let covered: f64 = self.passes(eph).iter().map(Interval::duration_s).sum();
        covered / (eph.len() as f64 * eph.step_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Keplerian;
    use crate::propagator::{PerturbationModel, Propagator};
    use qntn_geo::Epoch;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn merge_disjoint_kept() {
        let m = merge_intervals(vec![iv(10.0, 20.0), iv(30.0, 40.0)]);
        assert_eq!(m, vec![iv(10.0, 20.0), iv(30.0, 40.0)]);
    }

    #[test]
    fn merge_overlapping_and_touching() {
        let m = merge_intervals(vec![iv(0.0, 10.0), iv(5.0, 15.0), iv(15.0, 20.0)]);
        assert_eq!(m, vec![iv(0.0, 20.0)]);
    }

    #[test]
    fn merge_unsorted_input() {
        let m = merge_intervals(vec![iv(50.0, 60.0), iv(0.0, 10.0), iv(8.0, 12.0)]);
        assert_eq!(m, vec![iv(0.0, 12.0), iv(50.0, 60.0)]);
    }

    #[test]
    fn total_duration_counts_overlap_once() {
        let d = total_duration(vec![iv(0.0, 100.0), iv(50.0, 150.0), iv(400.0, 500.0)]);
        assert_eq!(d, 250.0);
    }

    #[test]
    fn intersect_basic() {
        let a = vec![iv(0.0, 10.0), iv(20.0, 30.0)];
        let b = vec![iv(5.0, 25.0)];
        assert_eq!(
            intersect_intervals(&a, &b),
            vec![iv(5.0, 10.0), iv(20.0, 25.0)]
        );
    }

    #[test]
    fn intersect_empty() {
        let a = vec![iv(0.0, 10.0)];
        let b = vec![iv(10.0, 20.0)];
        assert!(intersect_intervals(&a, &b).is_empty());
        assert!(intersect_intervals(&a, &[]).is_empty());
    }

    #[test]
    fn interval_contains_and_touches() {
        let a = iv(0.0, 10.0);
        assert!(a.contains(0.0));
        assert!(!a.contains(10.0));
        assert!(a.touches(&iv(10.0, 20.0)));
        assert!(!a.touches(&iv(10.1, 20.0)));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn interval_rejects_negative_span() {
        iv(10.0, 0.0);
    }

    fn tennessee_site() -> Geodetic {
        Geodetic::from_deg(36.0, -85.0, 300.0)
    }

    fn leo_ephemeris() -> Ephemeris {
        let prop = Propagator::new(
            Keplerian::circular(6_871_000.0, 53.0_f64.to_radians(), 4.0, 0.0),
            Epoch::J2000,
            PerturbationModel::TwoBody,
        );
        Ephemeris::generate(&prop, Epoch::J2000, 30.0, 86_400.0)
    }

    #[test]
    fn leo_passes_over_tennessee_look_sane() {
        let eph = leo_ephemeris();
        let pred = PassPredictor::new(tennessee_site(), std::f64::consts::PI / 9.0);
        let passes = pred.passes(&eph);
        // A 53°-inclined LEO should pass over a 36°N site at least once a
        // day above 20° elevation, and a pass above 20° at 500 km lasts at
        // most ~5 minutes.
        assert!(!passes.is_empty(), "expected at least one pass");
        for p in &passes {
            assert!(
                p.duration_s() <= 360.0,
                "pass too long: {} s",
                p.duration_s()
            );
            assert!(p.duration_s() >= 30.0);
        }
        let frac = pred.visibility_fraction(&eph);
        assert!(frac < 0.02, "single-sat visibility should be rare: {frac}");
    }

    #[test]
    fn zero_mask_sees_more_than_high_mask() {
        let eph = leo_ephemeris();
        let low = PassPredictor::new(tennessee_site(), 0.0).visibility_fraction(&eph);
        let high =
            PassPredictor::new(tennessee_site(), 60f64.to_radians()).visibility_fraction(&eph);
        assert!(low > high);
    }

    #[test]
    fn above_horizon_flags_match_elevation_sign() {
        let eph = leo_ephemeris();
        let pred = PassPredictor::new(tennessee_site(), 0.0);
        let els = pred.elevations(&eph);
        let flags = pred.above_horizon_flags(&eph);
        assert_eq!(flags.len(), els.len());
        for (k, (&el, &flag)) in els.iter().zip(&flags).enumerate() {
            assert_eq!(flag, el >= 0.0, "sample {k}: elevation {el}");
        }
        assert!(flags.iter().any(|&f| f) && flags.iter().any(|&f| !f));
    }

    #[test]
    fn elevations_match_pass_boundaries() {
        let eph = leo_ephemeris();
        let pred = PassPredictor::new(tennessee_site(), std::f64::consts::PI / 9.0);
        let els = pred.elevations(&eph);
        for p in pred.passes(&eph) {
            let k = (p.start_s / 30.0) as usize;
            assert!(els[k] >= pred.mask);
            if k > 0 {
                assert!(els[k - 1] < pred.mask);
            }
        }
    }
}
