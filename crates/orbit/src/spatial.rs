//! A spatial index over ground sites for contact-window pruning.
//!
//! The exhaustive window precompute tests every (satellite sample, ground
//! site) pair against the above-horizon predicate — O(sats × steps ×
//! sites) dot products, the dominant setup cost for thousand-satellite
//! shells. [`GroundGrid`] cuts the inner factor to O(near): directions
//! from the geocenter are bucketed into a fixed spherical-coordinate grid,
//! and each cell stores a bitmask of only the sites any satellite in that
//! cell could possibly be above the horizon of. A per-sample lookup is one
//! `asin`/`atan2` bin plus exact dot products for the few surviving bits.
//!
//! ## Conservativeness (the bit-identity argument)
//!
//! The horizon predicate is `(sat − site)·û ≥ 0` with `û` the site's
//! (unit) ellipsoidal up vector, i.e. `r·(d̂·û) ≥ site·û` for a satellite
//! at distance `r` from the geocenter in direction `d̂`. For every cell the
//! builder bounds the left side from above over all `d̂` within the cell
//! and all `r ≤ r_max`:
//!
//! - any direction whose spherical latitude/longitude falls in a cell is
//!   within `θ_cc = (Δφ + Δλ)/2` great-circle radians of the cell center
//!   (triangle inequality: the meridian leg is ≤ Δφ/2, and a same-latitude
//!   leg of longitude difference δλ has central angle ≤ δλ because
//!   `cos d = sin²φ + cos²φ·cos δλ ≥ cos δλ`);
//! - so `d̂·û ≤ cos(max(0, θ_cu − θ_cc))` with `θ_cu` the angle between
//!   the cell center direction and `û`;
//! - and `r·(d̂·û) ≤ r_max·(d̂·û)` whenever `d̂·û > 0` (when `d̂·û ≤ 0`
//!   the predicate already fails for every `r > 0` because `site·û > 0`
//!   for sites on the ellipsoid).
//!
//! A site is included in a cell's mask iff `r_max·cos(max(0, θ_cu − θ_cc))
//! ≥ site·û − ε`, with a one-metre slack `ε` absorbing the float error of
//! the center-direction trigonometry. Every site the lookup omits therefore
//! *provably* fails the exact predicate, so pruned and exhaustive window
//! masks are bit-identical — checked by the `tests/synthetic_regions.rs`
//! differential proptest.

use qntn_geo::Vec3;
use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// Latitude bands of the grid (180° / 48 = 3.75° per band).
const N_LAT: usize = 48;
/// Longitude columns of the grid (360° / 96 = 3.75° per column).
const N_LON: usize = 96;
/// Latitude band height, radians.
const D_LAT: f64 = PI / N_LAT as f64;
/// Longitude column width, radians.
const D_LON: f64 = TAU / N_LON as f64;
/// Half-diagonal bound: any direction binned into a cell is within this
/// great-circle angle of the cell's center (see the module docs).
const CELL_RADIUS_RAD: f64 = (D_LAT + D_LON) / 2.0;
/// Slack (metres) absorbing center-direction float error; over-inclusion
/// only, never exclusion.
const EPS_M: f64 = 1.0;

/// Per-cell ground-site bitmasks over a fixed spherical grid of satellite
/// directions. See the module docs for the inclusion criterion and the
/// conservativeness proof.
#[derive(Debug, Clone)]
pub struct GroundGrid {
    masks: Vec<u64>,
}

impl GroundGrid {
    /// Most sites a cell mask can hold (one bit per site).
    pub const MAX_SITES: usize = 64;

    /// Build the grid for `sites` — each an `(ecef, up)` pair with `up`
    /// the site's unit ellipsoidal normal — against a conservative bound
    /// `r_max` on the geocentric distance of every satellite sample the
    /// grid will be consulted for. Sites beyond [`GroundGrid::MAX_SITES`]
    /// are ignored (callers cap the site count before building).
    pub fn build(sites: &[(Vec3, Vec3)], r_max: f64) -> GroundGrid {
        debug_assert!(sites.len() <= Self::MAX_SITES, "more sites than mask bits");
        let mut masks = vec![0u64; N_LAT * N_LON];
        for (i, row) in masks.chunks_mut(N_LON).enumerate() {
            let lat_c = -FRAC_PI_2 + (i as f64 + 0.5) * D_LAT;
            let (sin_lat, cos_lat) = lat_c.sin_cos();
            for (j, cell) in row.iter_mut().enumerate() {
                let lon_c = -PI + (j as f64 + 0.5) * D_LON;
                let center = Vec3::new(cos_lat * lon_c.cos(), cos_lat * lon_c.sin(), sin_lat);
                let mut mask = 0u64;
                for (slot, &(site_ecef, up)) in sites.iter().take(Self::MAX_SITES).enumerate() {
                    let theta_cu = center.dot(up).clamp(-1.0, 1.0).acos();
                    let best_cos = (theta_cu - CELL_RADIUS_RAD).max(0.0).cos();
                    if r_max * best_cos >= site_ecef.dot(up) - EPS_M {
                        mask |= 1 << slot;
                    }
                }
                *cell = mask;
            }
        }
        GroundGrid { masks }
    }

    /// The bitmask of sites a satellite at `ecef` could possibly be above
    /// the horizon of. A superset of the exact predicate's true set (all
    /// sites, conservatively, for a degenerate zero position); callers
    /// still run the exact test on each surviving bit.
    #[inline]
    pub fn near_mask(&self, ecef: Vec3) -> u64 {
        let r = ecef.norm();
        if r <= 0.0 || !r.is_finite() {
            return u64::MAX;
        }
        let lat = (ecef.z / r).clamp(-1.0, 1.0).asin();
        let lon = ecef.y.atan2(ecef.x);
        let i = (((lat + FRAC_PI_2) / D_LAT) as usize).min(N_LAT - 1);
        let j = (((lon + PI) / D_LON) as usize).min(N_LON - 1);
        self.masks[i * N_LON + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_geo::{Enu, Geodetic, WGS84};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(state: &mut u64) -> f64 {
        (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn random_sites(state: &mut u64, n: usize) -> Vec<(Vec3, Vec3)> {
        (0..n)
            .map(|_| {
                let site = Geodetic::from_deg(
                    -80.0 + 160.0 * unit_f64(state),
                    -180.0 + 360.0 * unit_f64(state),
                    3000.0 * unit_f64(state),
                );
                (site.to_ecef(&WGS84), Enu::at(site, &WGS84).up())
            })
            .collect()
    }

    /// The soundness property the pruned window precompute rests on: for
    /// any satellite position within the radius bound, every site passing
    /// the exact above-horizon predicate has its bit set in the near mask.
    #[test]
    fn near_mask_is_a_superset_of_the_exact_predicate() {
        let mut state = 7u64;
        for round in 0..8 {
            let sites = random_sites(&mut state, 1 + round % 7);
            let r_max = 6_371_000.0 + 400_000.0 + 1_200_000.0 * unit_f64(&mut state);
            let grid = GroundGrid::build(&sites, r_max);
            for _ in 0..4000 {
                // Random direction, random radius up to the bound.
                let z = 2.0 * unit_f64(&mut state) - 1.0;
                let phi = TAU * unit_f64(&mut state);
                let s = (1.0 - z * z).max(0.0).sqrt();
                let r = r_max * (0.9 + 0.1 * unit_f64(&mut state));
                let ecef = Vec3::new(s * phi.cos(), s * phi.sin(), z) * r;
                let near = grid.near_mask(ecef);
                for (slot, &(site_ecef, up)) in sites.iter().enumerate() {
                    if (ecef - site_ecef).dot(up) >= 0.0 {
                        assert!(
                            near >> slot & 1 == 1,
                            "round {round}: visible site {slot} pruned at {ecef:?}"
                        );
                    }
                }
            }
        }
    }

    /// The grid must also *prune*: a LEO satellite over the antipode of a
    /// lone site gets an empty mask.
    #[test]
    fn antipodal_satellites_are_pruned() {
        let site = Geodetic::from_deg(36.0, -85.0, 300.0);
        let sites = vec![(site.to_ecef(&WGS84), Enu::at(site, &WGS84).up())];
        let grid = GroundGrid::build(&sites, 6_871_000.0);
        let antipode = Geodetic::from_deg(-36.0, 95.0, 500_000.0).to_ecef(&WGS84);
        assert_eq!(grid.near_mask(antipode), 0);
        // And directly overhead it keeps the bit.
        let overhead = Geodetic::from_deg(36.0, -85.0, 500_000.0).to_ecef(&WGS84);
        assert_eq!(grid.near_mask(overhead), 1);
    }

    /// Degenerate positions degrade to "everything near", never to a
    /// dropped site.
    #[test]
    fn degenerate_positions_are_conservative() {
        let mut state = 11u64;
        let sites = random_sites(&mut state, 3);
        let grid = GroundGrid::build(&sites, 7_000_000.0);
        assert_eq!(grid.near_mask(Vec3::new(0.0, 0.0, 0.0)), u64::MAX);
        assert_eq!(grid.near_mask(Vec3::new(f64::NAN, 0.0, 0.0)), u64::MAX);
    }
}
