//! Orbit propagation: elements at epoch → ECI state at time t.
//!
//! Two models:
//!
//! - [`PerturbationModel::TwoBody`]: pure Keplerian motion. The anomaly
//!   advances at the mean motion; the orbital plane is fixed in inertial
//!   space.
//! - [`PerturbationModel::J2Secular`]: adds the dominant perturbation at
//!   500 km — Earth-oblateness-driven secular drift of the node (Ω̇), the
//!   perigee (ω̇) and the mean anomaly (Ṁ correction). Over the paper's
//!   24-hour window the nodal drift at i = 53° is about −4.7°/day, enough to
//!   shift pass times by minutes; the coverage *statistics* are insensitive
//!   to it (ablation A3), which justifies STK↔our-propagator substitution.

use crate::elements::{Keplerian, EARTH_J2, EARTH_MU, EARTH_RADIUS_EQ_M};
use crate::kepler;
use qntn_geo::{Epoch, Vec3};
use serde::{Deserialize, Serialize};

/// Which force model to propagate with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PerturbationModel {
    /// Pure two-body (point-mass Earth).
    #[default]
    TwoBody,
    /// Two-body plus secular J2 drift of Ω, ω and M.
    J2Secular,
}

/// Position and velocity in the Earth-centred inertial frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EciState {
    /// Position, metres.
    pub position: Vec3,
    /// Velocity, metres/second.
    pub velocity: Vec3,
}

/// A propagator bound to one satellite's epoch elements.
#[derive(Debug, Clone, Copy)]
pub struct Propagator {
    elements: Keplerian,
    epoch: Epoch,
    model: PerturbationModel,
    mean_anomaly_epoch: f64,
    mean_motion: f64,
    raan_rate: f64,
    argp_rate: f64,
}

impl Propagator {
    /// Bind `elements` (valid at `epoch`) to a force `model`.
    pub fn new(elements: Keplerian, epoch: Epoch, model: PerturbationModel) -> Self {
        let n = elements.mean_motion();
        let (raan_rate, argp_rate, n_eff) = match model {
            PerturbationModel::TwoBody => (0.0, 0.0, n),
            PerturbationModel::J2Secular => {
                let p =
                    elements.semi_major_m * (1.0 - elements.eccentricity * elements.eccentricity);
                let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_EQ_M / p).powi(2) * n;
                let (si, ci) = elements.inclination.sin_cos();
                let raan_rate = -factor * ci;
                let argp_rate = factor * (2.0 - 2.5 * si * si);
                // Secular mean-motion correction (Brouwer first order).
                let eta = (1.0 - elements.eccentricity * elements.eccentricity).sqrt();
                let n_eff = n
                    * (1.0
                        + 1.5
                            * EARTH_J2
                            * (EARTH_RADIUS_EQ_M / p).powi(2)
                            * eta
                            * (1.0 - 1.5 * si * si));
                (raan_rate, argp_rate, n_eff)
            }
        };
        Propagator {
            elements,
            epoch,
            model,
            mean_anomaly_epoch: elements.mean_anomaly(),
            mean_motion: n_eff,
            raan_rate,
            argp_rate,
        }
    }

    /// The epoch elements this propagator was built from.
    #[inline]
    pub fn elements(&self) -> &Keplerian {
        &self.elements
    }

    /// The force model in use.
    #[inline]
    pub fn model(&self) -> PerturbationModel {
        self.model
    }

    /// Nodal (RAAN) drift rate, rad/s — zero for two-body.
    #[inline]
    pub fn raan_rate(&self) -> f64 {
        self.raan_rate
    }

    /// ECI state at `epoch + dt_s` seconds.
    pub fn propagate(&self, dt_s: f64) -> EciState {
        let k = &self.elements;
        let m = self.mean_anomaly_epoch + self.mean_motion * dt_s;
        let nu = kepler::mean_to_true(m, k.eccentricity);
        let e_anom = kepler::true_to_eccentric(nu, k.eccentricity);

        // Perifocal position and velocity.
        let p_semi = k.semi_major_m * (1.0 - k.eccentricity * k.eccentricity);
        let r_mag = k.semi_major_m * (1.0 - k.eccentricity * e_anom.cos());
        let (snu, cnu) = nu.sin_cos();
        let r_pf = Vec3::new(r_mag * cnu, r_mag * snu, 0.0);
        let vel_coeff = (EARTH_MU / p_semi).sqrt();
        let v_pf = Vec3::new(-vel_coeff * snu, vel_coeff * (k.eccentricity + cnu), 0.0);

        // Rotate perifocal → ECI: Rz(Ω) Rx(i) Rz(ω), with secular drift.
        let raan = k.raan + self.raan_rate * dt_s;
        let argp = k.arg_perigee + self.argp_rate * dt_s;
        let rotate = |v: Vec3| v.rotate_z(argp).rotate_x(k.inclination).rotate_z(raan);
        EciState {
            position: rotate(r_pf),
            velocity: rotate(v_pf),
        }
    }

    /// ECI state at an absolute `epoch`.
    pub fn propagate_to(&self, at: Epoch) -> EciState {
        self.propagate(at.seconds_since(&self.epoch))
    }

    /// The epoch the elements refer to.
    #[inline]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leo() -> Keplerian {
        Keplerian::circular(6_871_000.0, 53.0_f64.to_radians(), 1.0, 0.5)
    }

    fn prop(model: PerturbationModel) -> Propagator {
        Propagator::new(leo(), Epoch::J2000, model)
    }

    #[test]
    fn radius_is_constant_for_circular_orbit() {
        let p = prop(PerturbationModel::TwoBody);
        for k in 0..200 {
            let s = p.propagate(f64::from(k) * 30.0);
            assert!(
                (s.position.norm() - 6_871_000.0).abs() < 1e-3,
                "t={k} r={}",
                s.position.norm()
            );
        }
    }

    #[test]
    fn speed_matches_vis_viva() {
        let p = prop(PerturbationModel::TwoBody);
        let v_circ = (EARTH_MU / 6_871_000.0_f64).sqrt();
        for k in 0..50 {
            let s = p.propagate(f64::from(k) * 100.0);
            assert!((s.velocity.norm() - v_circ).abs() < 1e-3);
        }
    }

    #[test]
    fn energy_and_angular_momentum_conserved() {
        // Eccentric orbit: check the two-body invariants over a full period.
        let k = Keplerian {
            eccentricity: 0.2,
            ..leo()
        };
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let e0 = k.specific_energy();
        let h0 = k.specific_angular_momentum();
        for step in 0..100 {
            let s = p.propagate(f64::from(step) * k.period_s() / 100.0);
            let energy = s.velocity.norm_sq() / 2.0 - EARTH_MU / s.position.norm();
            let h = s.position.cross(s.velocity).norm();
            assert!((energy - e0).abs() / e0.abs() < 1e-10, "step {step}");
            assert!((h - h0).abs() / h0 < 1e-10, "step {step}");
        }
    }

    #[test]
    fn returns_to_start_after_one_period() {
        let p = prop(PerturbationModel::TwoBody);
        let t = leo().period_s();
        let s0 = p.propagate(0.0);
        let s1 = p.propagate(t);
        assert!(
            (s1.position - s0.position).norm() < 1.0,
            "{}",
            (s1.position - s0.position).norm()
        );
        assert!((s1.velocity - s0.velocity).norm() < 1e-3);
    }

    #[test]
    fn velocity_is_consistent_with_finite_difference() {
        let p = prop(PerturbationModel::TwoBody);
        let dt = 1e-3;
        for t in [0.0, 1000.0, 3000.0] {
            let s = p.propagate(t);
            let splus = p.propagate(t + dt);
            let fd = (splus.position - s.position) / dt;
            assert!(
                (fd - s.velocity).norm() < 0.1,
                "t={t}: {}",
                (fd - s.velocity).norm()
            );
        }
    }

    #[test]
    fn inclination_bounds_z_extent() {
        let p = prop(PerturbationModel::TwoBody);
        let max_z = 6_871_000.0 * 53.0_f64.to_radians().sin();
        let mut reached = 0.0_f64;
        for k in 0..570 {
            let s = p.propagate(f64::from(k) * 10.0);
            assert!(s.position.z.abs() <= max_z + 1.0);
            reached = reached.max(s.position.z.abs());
        }
        // Over one period the satellite should actually reach |z| ≈ max.
        assert!(reached > max_z * 0.999, "reached {reached} of {max_z}");
    }

    #[test]
    fn j2_raan_regresses_for_prograde_orbit() {
        let p = prop(PerturbationModel::J2Secular);
        assert!(p.raan_rate() < 0.0, "prograde orbits regress");
        // At 500 km, i=53°: Ω̇ ≈ -4.6 to -4.8 deg/day.
        let deg_per_day = p.raan_rate().to_degrees() * 86_400.0;
        assert!((-5.2..-4.2).contains(&deg_per_day), "{deg_per_day}");
    }

    #[test]
    fn j2_preserves_radius_for_circular_orbit() {
        let p = prop(PerturbationModel::J2Secular);
        for k in 0..100 {
            let s = p.propagate(f64::from(k) * 300.0);
            assert!((s.position.norm() - 6_871_000.0).abs() < 1e-3);
        }
    }

    #[test]
    fn two_body_and_j2_diverge_over_a_day() {
        let p2 = prop(PerturbationModel::TwoBody);
        let pj = prop(PerturbationModel::J2Secular);
        let d = (p2.propagate(86_400.0).position - pj.propagate(86_400.0).position).norm();
        // Nodal drift of ~4.7° at orbital radius is hundreds of kilometres.
        assert!(d > 100_000.0, "{d}");
    }

    #[test]
    fn propagate_to_absolute_epoch() {
        let p = prop(PerturbationModel::TwoBody);
        let s1 = p.propagate(123.0);
        let s2 = p.propagate_to(Epoch::J2000.plus_seconds(123.0));
        assert!((s1.position - s2.position).norm() < 1e-9);
    }
}
