//! Ephemerides ("movement sheets").
//!
//! The paper records each satellite's position at 30-second intervals over
//! one day with STK, exports the result as a movement sheet, and replays it
//! inside the network simulator. [`Ephemeris`] is that artifact: a dense
//! table of (ECI, ECEF, geodetic) samples at a fixed cadence. Generation is
//! embarrassingly parallel across satellites ([`Ephemeris::generate_many`]
//! uses rayon) and deterministic.

use crate::propagator::Propagator;
use qntn_geo::{eci_to_ecef, Epoch, Geodetic, Vec3};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One row of a movement sheet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EphemerisSample {
    /// Seconds since the ephemeris start epoch.
    pub t_s: f64,
    /// Inertial position, metres.
    pub eci: Vec3,
    /// Earth-fixed position, metres.
    pub ecef: Vec3,
    /// Geodetic position (WGS-84).
    pub geodetic: Geodetic,
}

/// A sampled trajectory at fixed cadence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ephemeris {
    start: Epoch,
    step_s: f64,
    samples: Vec<EphemerisSample>,
}

impl Ephemeris {
    /// Sample `propagator` every `step_s` seconds for `duration_s` seconds
    /// starting at `start` (inclusive of t = 0, exclusive of the endpoint,
    /// so a 24 h / 30 s sheet has 2880 rows).
    pub fn generate(propagator: &Propagator, start: Epoch, step_s: f64, duration_s: f64) -> Self {
        assert!(step_s > 0.0, "cadence must be positive");
        assert!(duration_s > 0.0, "duration must be positive");
        let n = (duration_s / step_s).round() as usize;
        let samples = (0..n)
            .map(|k| Self::sample_at(propagator, start, k as f64 * step_s))
            .collect();
        Ephemeris {
            start,
            step_s,
            samples,
        }
    }

    /// Generate sheets for a whole constellation in parallel. Output order
    /// matches input order; results are identical to calling
    /// [`Ephemeris::generate`] per satellite sequentially.
    pub fn generate_many(
        propagators: &[Propagator],
        start: Epoch,
        step_s: f64,
        duration_s: f64,
    ) -> Vec<Ephemeris> {
        propagators
            .par_iter()
            .map(|p| Self::generate(p, start, step_s, duration_s))
            .collect()
    }

    fn sample_at(propagator: &Propagator, start: Epoch, t_s: f64) -> EphemerisSample {
        let at = start.plus_seconds(t_s);
        let state = propagator.propagate_to(at);
        let ecef = eci_to_ecef(state.position, at);
        EphemerisSample {
            t_s,
            eci: state.position,
            ecef,
            geodetic: Geodetic::from_ecef_wgs84(ecef),
        }
    }

    /// The start epoch.
    #[inline]
    pub fn start(&self) -> Epoch {
        self.start
    }

    /// Sample cadence in seconds.
    #[inline]
    pub fn step_s(&self) -> f64 {
        self.step_s
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the sheet is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples.
    #[inline]
    pub fn samples(&self) -> &[EphemerisSample] {
        &self.samples
    }

    /// The sample at step `k`.
    #[inline]
    pub fn at_step(&self, k: usize) -> &EphemerisSample {
        &self.samples[k]
    }

    /// ECEF position at an arbitrary time via linear interpolation between
    /// the bracketing samples (clamped to the sheet's span). At a 30 s
    /// cadence the chord-vs-arc error for a 500 km LEO is about 1 km —
    /// negligible against slant ranges of 500–1200 km.
    pub fn ecef_at(&self, t_s: f64) -> Vec3 {
        let last = (self.samples.len() - 1) as f64;
        let x = (t_s / self.step_s).clamp(0.0, last);
        let k = x.floor() as usize;
        if k as f64 >= last {
            return self.samples[self.samples.len() - 1].ecef;
        }
        let frac = x - k as f64;
        self.samples[k].ecef.lerp(self.samples[k + 1].ecef, frac)
    }

    /// Geodetic ground track (latitude/longitude at zero altitude).
    pub fn ground_track(&self) -> Vec<Geodetic> {
        self.samples
            .iter()
            .map(|s| s.geodetic.with_alt(0.0))
            .collect()
    }

    /// Render the sheet in the CSV layout the paper's STK export used:
    /// `t_s,lat_deg,lon_deg,alt_m,ecef_x,ecef_y,ecef_z` with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 96 + 64);
        out.push_str("t_s,lat_deg,lon_deg,alt_m,ecef_x_m,ecef_y_m,ecef_z_m\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.1},{:.6},{:.6},{:.1},{:.1},{:.1},{:.1}\n",
                s.t_s,
                s.geodetic.lat_deg(),
                s.geodetic.lon_deg(),
                s.geodetic.alt_m,
                s.ecef.x,
                s.ecef.y,
                s.ecef.z,
            ));
        }
        out
    }
}

/// Paper cadence: 30 seconds.
pub const PAPER_STEP_S: f64 = 30.0;

/// Paper window: one day.
pub const PAPER_DURATION_S: f64 = 86_400.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Keplerian;
    use crate::propagator::PerturbationModel;

    fn leo_prop() -> Propagator {
        Propagator::new(
            Keplerian::circular(6_871_000.0, 53.0_f64.to_radians(), 0.3, 1.2),
            Epoch::J2000,
            PerturbationModel::TwoBody,
        )
    }

    #[test]
    fn paper_sheet_has_2880_rows() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, PAPER_STEP_S, PAPER_DURATION_S);
        assert_eq!(eph.len(), 2880);
        assert_eq!(eph.at_step(0).t_s, 0.0);
        assert_eq!(eph.at_step(2879).t_s, 2879.0 * 30.0);
    }

    #[test]
    fn altitude_stays_near_500_km() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, 300.0, 86_400.0);
        for s in eph.samples() {
            // WGS-84 altitude of a constant-radius orbit varies with latitude
            // by up to ~21 km (equatorial bulge) around the nominal 493-514.
            assert!(
                (470_000.0..540_000.0).contains(&s.geodetic.alt_m),
                "alt {} at t={}",
                s.geodetic.alt_m,
                s.t_s
            );
        }
    }

    #[test]
    fn latitude_bounded_by_inclination() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, 60.0, 86_400.0);
        for s in eph.samples() {
            assert!(
                s.geodetic.lat_deg().abs() <= 53.3,
                "{}",
                s.geodetic.lat_deg()
            );
        }
        // And it should actually visit high latitudes.
        let max = eph
            .samples()
            .iter()
            .map(|s| s.geodetic.lat_deg().abs())
            .fold(0.0, f64::max);
        assert!(max > 52.0, "{max}");
    }

    #[test]
    fn interpolation_matches_samples_and_midpoints() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, 30.0, 3600.0);
        // Exactly on a sample.
        let exact = eph.ecef_at(900.0);
        assert!((exact - eph.at_step(30).ecef).norm() < 1e-9);
        // Midpoint sagitta for LEO at 30 s cadence is ~950 m.
        let p = leo_prop();
        let at = Epoch::J2000.plus_seconds(915.0);
        let truth = qntn_geo::eci_to_ecef(p.propagate_to(at).position, at);
        assert!((eph.ecef_at(915.0) - truth).norm() < 1200.0);
    }

    #[test]
    fn interpolation_clamps_out_of_range() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, 30.0, 300.0);
        assert!((eph.ecef_at(-100.0) - eph.at_step(0).ecef).norm() < 1e-9);
        assert!((eph.ecef_at(1e9) - eph.at_step(eph.len() - 1).ecef).norm() < 1e-9);
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let props: Vec<Propagator> = crate::walker::paper_constellation(12)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let par = Ephemeris::generate_many(&props, Epoch::J2000, 60.0, 7200.0);
        for (p, eph_par) in props.iter().zip(&par) {
            let seq = Ephemeris::generate(p, Epoch::J2000, 60.0, 7200.0);
            assert_eq!(seq.len(), eph_par.len());
            for (a, b) in seq.samples().iter().zip(eph_par.samples()) {
                assert_eq!(
                    a.ecef, b.ecef,
                    "parallel generation must be bitwise identical"
                );
            }
        }
    }

    #[test]
    fn csv_layout() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, 30.0, 90.0);
        let csv = eph.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[0].starts_with("t_s,lat_deg"));
        assert!(lines[1].starts_with("0.0,"));
        assert_eq!(lines[1].split(',').count(), 7);
    }

    #[test]
    fn ground_track_is_at_sea_level() {
        let eph = Ephemeris::generate(&leo_prop(), Epoch::J2000, 600.0, 7200.0);
        for g in eph.ground_track() {
            assert_eq!(g.alt_m, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn rejects_zero_step() {
        Ephemeris::generate(&leo_prop(), Epoch::J2000, 0.0, 100.0);
    }
}
