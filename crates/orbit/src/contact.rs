//! Contact plans: the operations view of a constellation over a site.
//!
//! Mission planning wants "who can I talk to, when, for how long, and how
//! long are the gaps" — the per-satellite pass lists of
//! [`crate::visibility::PassPredictor`] merged into one timeline. The gap
//! statistics are the operational face of the paper's coverage percentage:
//! 55 % coverage sounds serviceable until the gap histogram shows the
//! outages are tens of minutes long.

use crate::ephemeris::Ephemeris;
use crate::visibility::{merge_intervals, Interval, PassPredictor};
use qntn_geo::Geodetic;
use serde::{Deserialize, Serialize};

/// One scheduled contact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Contact {
    /// Which satellite (index into the ephemeris list).
    pub satellite: usize,
    /// The pass interval on the simulation timeline.
    pub window: Interval,
}

/// A site's merged contact plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContactPlan {
    /// Every per-satellite contact, sorted by start time.
    pub contacts: Vec<Contact>,
    /// The union of all contact windows (any-satellite availability).
    pub availability: Vec<Interval>,
    /// Total planned duration, seconds.
    pub span_s: f64,
}

impl ContactPlan {
    /// Build the plan for `site` over `ephemerides` with elevation `mask`.
    pub fn build(site: Geodetic, ephemerides: &[Ephemeris], mask: f64) -> ContactPlan {
        let predictor = PassPredictor::new(site, mask);
        let mut contacts = Vec::new();
        let mut all = Vec::new();
        let mut span_s = 0.0f64;
        for (idx, eph) in ephemerides.iter().enumerate() {
            span_s = span_s.max(eph.len() as f64 * eph.step_s());
            for window in predictor.passes(eph) {
                contacts.push(Contact {
                    satellite: idx,
                    window,
                });
                all.push(window);
            }
        }
        contacts.sort_by(|a, b| a.window.start_s.total_cmp(&b.window.start_s));
        ContactPlan {
            contacts,
            availability: merge_intervals(all),
            span_s,
        }
    }

    /// Fraction of the span with at least one satellite in contact.
    pub fn availability_fraction(&self) -> f64 {
        if self.span_s == 0.0 {
            return 0.0;
        }
        self.availability
            .iter()
            .map(Interval::duration_s)
            .sum::<f64>()
            / self.span_s
    }

    /// The gaps between availability windows (and the leading/trailing
    /// gaps against the span boundaries).
    pub fn gaps(&self) -> Vec<Interval> {
        let mut gaps = Vec::new();
        let mut cursor = 0.0;
        for w in &self.availability {
            if w.start_s > cursor {
                gaps.push(Interval::new(cursor, w.start_s));
            }
            cursor = cursor.max(w.end_s);
        }
        if cursor < self.span_s {
            gaps.push(Interval::new(cursor, self.span_s));
        }
        gaps
    }

    /// The longest outage, seconds (0 when always available).
    pub fn max_gap_s(&self) -> f64 {
        self.gaps()
            .iter()
            .map(Interval::duration_s)
            .fold(0.0, f64::max)
    }

    /// Mean contact duration, seconds.
    pub fn mean_contact_s(&self) -> f64 {
        if self.contacts.is_empty() {
            return 0.0;
        }
        self.contacts
            .iter()
            .map(|c| c.window.duration_s())
            .sum::<f64>()
            / self.contacts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::{PerturbationModel, Propagator};
    use crate::walker::paper_constellation;
    use qntn_geo::Epoch;

    fn ephemerides(n: usize) -> Vec<Ephemeris> {
        let props: Vec<Propagator> = paper_constellation(n)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        Ephemeris::generate_many(&props, Epoch::J2000, 30.0, 86_400.0)
    }

    fn cookeville() -> Geodetic {
        Geodetic::from_deg(36.1757, -85.5066, 300.0)
    }

    #[test]
    fn plan_is_sorted_and_bounded() {
        let plan = ContactPlan::build(cookeville(), &ephemerides(12), std::f64::consts::PI / 9.0);
        assert!(!plan.contacts.is_empty(), "12 satellites must yield passes");
        for w in plan.contacts.windows(2) {
            assert!(w[0].window.start_s <= w[1].window.start_s);
        }
        for c in &plan.contacts {
            assert!(c.satellite < 12);
            assert!(c.window.end_s <= plan.span_s + 1e-9);
        }
        assert_eq!(plan.span_s, 86_400.0);
    }

    #[test]
    fn availability_grows_with_constellation() {
        let site = cookeville();
        let mask = std::f64::consts::PI / 9.0;
        let small = ContactPlan::build(site, &ephemerides(6), mask);
        let large = ContactPlan::build(site, &ephemerides(24), mask);
        assert!(large.availability_fraction() >= small.availability_fraction());
        assert!(large.contacts.len() > small.contacts.len());
    }

    #[test]
    fn gaps_partition_the_span() {
        let plan = ContactPlan::build(cookeville(), &ephemerides(12), std::f64::consts::PI / 9.0);
        let up: f64 = plan.availability.iter().map(Interval::duration_s).sum();
        let down: f64 = plan.gaps().iter().map(Interval::duration_s).sum();
        assert!(
            (up + down - plan.span_s).abs() < 1e-6,
            "{up} + {down} != {}",
            plan.span_s
        );
        // Sparse LEO coverage: long outages.
        assert!(plan.max_gap_s() > 1_800.0, "{}", plan.max_gap_s());
    }

    #[test]
    fn pass_durations_are_leo_scale() {
        let plan = ContactPlan::build(cookeville(), &ephemerides(12), std::f64::consts::PI / 9.0);
        let mean = plan.mean_contact_s();
        assert!((30.0..400.0).contains(&mean), "{mean}");
    }

    #[test]
    fn empty_constellation_has_full_gap() {
        let plan = ContactPlan::build(cookeville(), &[], 0.3);
        assert!(plan.contacts.is_empty());
        assert_eq!(plan.availability_fraction(), 0.0);
        assert_eq!(plan.mean_contact_s(), 0.0);
        assert_eq!(plan.max_gap_s(), 0.0, "zero span has no gaps");
    }
}
