//! Solar position and day/night gating.
//!
//! Free-space *quantum* links are photon-starved: in practice (Micius, all
//! QKD downlink demonstrations) they only operate when the ground station is
//! in darkness, because daytime sky radiance swamps the single-photon
//! detectors. The paper's ideal-conditions model ignores this; the
//! `night-ops` extension experiment applies it and shows how much of the
//! nominal coverage survives.
//!
//! The solar ephemeris is the standard low-precision model (Meeus / the
//! Astronomical Almanac), good to ~0.01°, which is orders of magnitude finer
//! than the day/night boundary needs.

use qntn_geo::look::look_angles_ecef;
use qntn_geo::{eci_to_ecef, Epoch, Geodetic, Vec3, WGS84};

/// One astronomical unit, metres.
pub const AU_M: f64 = 1.495_978_707e11;

/// Sun position in the ECI (mean-equator-of-date) frame at `epoch`, metres.
///
/// Low-precision series: mean longitude + equation-of-centre (two terms),
/// obliquity of the ecliptic, then spherical→Cartesian.
pub fn sun_position_eci(epoch: Epoch) -> Vec3 {
    let t = epoch.centuries_since_j2000();
    // Mean longitude and mean anomaly of the Sun, degrees.
    let l0 = 280.460 + 36_000.771 * t;
    let m = (357.529_109_2 + 35_999.050_29 * t).to_radians();
    // Ecliptic longitude with the equation of centre.
    let lambda = (l0 + 1.914_666_471 * m.sin() + 0.019_994_643 * (2.0 * m).sin()).to_radians();
    // Distance in AU.
    let r_au = 1.000_140_612 - 0.016_708_617 * m.cos() - 0.000_139_589 * (2.0 * m).cos();
    // Obliquity of the ecliptic.
    let eps = (23.439_291 - 0.013_004_2 * t).to_radians();
    let (sl, cl) = lambda.sin_cos();
    let (se, ce) = eps.sin_cos();
    Vec3::new(cl, ce * sl, se * sl) * (r_au * AU_M)
}

/// Sun elevation above the local horizon at a ground site, radians.
pub fn sun_elevation(site: Geodetic, epoch: Epoch) -> f64 {
    let sun_ecef = eci_to_ecef(sun_position_eci(epoch), epoch);
    look_angles_ecef(site, sun_ecef, &WGS84).elevation
}

/// Twilight conventions for "dark enough for quantum links".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Twilight {
    /// Sun below the horizon (0°).
    Horizon,
    /// Civil twilight: sun below −6°.
    Civil,
    /// Nautical twilight: sun below −12°.
    Nautical,
    /// Astronomical twilight: sun below −18° (what single-photon links want).
    Astronomical,
}

impl Twilight {
    /// The sun-elevation ceiling for this convention, radians.
    pub fn threshold(&self) -> f64 {
        match self {
            Twilight::Horizon => 0.0,
            Twilight::Civil => (-6.0_f64).to_radians(),
            Twilight::Nautical => (-12.0_f64).to_radians(),
            Twilight::Astronomical => (-18.0_f64).to_radians(),
        }
    }

    /// True when `site` is dark at `epoch` under this convention.
    pub fn is_dark(&self, site: Geodetic, epoch: Epoch) -> bool {
        sun_elevation(site, epoch) <= self.threshold()
    }
}

/// Is a satellite at `sat_eci` sunlit at `epoch`? Cylindrical Earth-shadow
/// model: eclipsed when behind the terminator plane and inside the shadow
/// cylinder of radius R⊕.
pub fn is_sunlit(sat_eci: Vec3, epoch: Epoch) -> bool {
    let sun_dir = match sun_position_eci(epoch).normalized() {
        Some(d) => d,
        None => return true,
    };
    let along = sat_eci.dot(sun_dir);
    if along >= 0.0 {
        return true; // on the day side
    }
    let perp = (sat_eci - sun_dir * along).norm();
    perp > 6_371_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noon_utc_over_greenwich_summer() -> Epoch {
        Epoch::from_calendar(2024, 6, 21, 12, 0, 0.0)
    }

    #[test]
    fn sun_distance_is_about_one_au() {
        for (y, m, d) in [(2024, 1, 3), (2024, 7, 4), (2025, 3, 20)] {
            let r = sun_position_eci(Epoch::from_calendar(y, m, d, 0, 0, 0.0)).norm();
            assert!((0.98 * AU_M..1.02 * AU_M).contains(&r), "{y}-{m}-{d}: {r}");
        }
        // Perihelion (early Jan) closer than aphelion (early Jul).
        let jan = sun_position_eci(Epoch::from_calendar(2024, 1, 3, 0, 0, 0.0)).norm();
        let jul = sun_position_eci(Epoch::from_calendar(2024, 7, 4, 0, 0, 0.0)).norm();
        assert!(jan < jul);
    }

    #[test]
    fn solstice_declination() {
        // At the June solstice the Sun's declination is ~ +23.44°.
        let s = sun_position_eci(noon_utc_over_greenwich_summer());
        let dec = (s.z / s.norm()).asin().to_degrees();
        assert!((dec - 23.44).abs() < 0.1, "{dec}");
        // December solstice: ~ -23.44°.
        let s = sun_position_eci(Epoch::from_calendar(2024, 12, 21, 12, 0, 0.0));
        let dec = (s.z / s.norm()).asin().to_degrees();
        assert!((dec + 23.44).abs() < 0.1, "{dec}");
    }

    #[test]
    fn equinox_sun_near_equatorial_plane() {
        let s = sun_position_eci(Epoch::from_calendar(2024, 3, 20, 4, 0, 0.0));
        let dec = (s.z / s.norm()).asin().to_degrees();
        assert!(dec.abs() < 0.5, "{dec}");
    }

    #[test]
    fn noon_is_day_midnight_is_night_in_tennessee() {
        let cookeville = Geodetic::from_deg(36.1757, -85.5066, 300.0);
        // Local noon ≈ 17:40 UTC; local midnight ≈ 05:40 UTC.
        let noon = Epoch::from_calendar(2024, 7, 1, 17, 40, 0.0);
        let midnight = Epoch::from_calendar(2024, 7, 1, 5, 40, 0.0);
        assert!(sun_elevation(cookeville, noon) > 60.0_f64.to_radians());
        assert!(sun_elevation(cookeville, midnight) < -20.0_f64.to_radians());
        assert!(!Twilight::Horizon.is_dark(cookeville, noon));
        assert!(Twilight::Astronomical.is_dark(cookeville, midnight));
    }

    #[test]
    fn twilight_thresholds_are_ordered() {
        let order = [
            Twilight::Horizon,
            Twilight::Civil,
            Twilight::Nautical,
            Twilight::Astronomical,
        ];
        for w in order.windows(2) {
            assert!(w[0].threshold() > w[1].threshold());
        }
    }

    #[test]
    fn dark_fraction_of_a_summer_day_is_plausible() {
        // Cookeville at 36°N around the June solstice: astronomical darkness
        // for roughly 5-7 hours of the 24.
        let site = Geodetic::from_deg(36.1757, -85.5066, 300.0);
        let start = Epoch::from_calendar(2024, 6, 21, 0, 0, 0.0);
        let dark = (0..288)
            .filter(|k| {
                Twilight::Astronomical.is_dark(site, start.plus_seconds(f64::from(*k) * 300.0))
            })
            .count();
        let hours = dark as f64 * 300.0 / 3600.0;
        assert!((3.0..9.0).contains(&hours), "{hours} h dark");
    }

    #[test]
    fn satellite_day_night_cycle() {
        // A satellite directly between Earth and Sun is lit; directly behind
        // is eclipsed; off-axis at > R_earth lateral offset is lit.
        let epoch = noon_utc_over_greenwich_summer();
        let sun_dir = sun_position_eci(epoch).normalized().unwrap();
        assert!(is_sunlit(sun_dir * 6_871_000.0, epoch));
        assert!(!is_sunlit(-sun_dir * 6_871_000.0, epoch));
        // Behind but outside the shadow cylinder.
        let perp = sun_dir.cross(Vec3::Z).normalized().unwrap();
        assert!(is_sunlit(
            -sun_dir * 6_871_000.0 + perp * 7_000_000.0,
            epoch
        ));
    }

    #[test]
    fn leo_satellite_spends_about_a_third_in_eclipse() {
        // Generic LEO: eclipse fraction ~30-40% per orbit.
        use crate::{Keplerian, PerturbationModel, Propagator};
        let epoch = Epoch::from_calendar(2024, 7, 1, 0, 0, 0.0);
        let prop = Propagator::new(
            Keplerian::circular(6_871_000.0, 53f64.to_radians(), 0.0, 0.0),
            epoch,
            PerturbationModel::TwoBody,
        );
        let period = 5_675.0;
        let n = 200;
        let eclipsed = (0..n)
            .filter(|k| {
                let t = f64::from(*k) * period / f64::from(n);
                !is_sunlit(prop.propagate(t).position, epoch.plus_seconds(t))
            })
            .count();
        let frac = eclipsed as f64 / f64::from(n);
        assert!((0.2..0.5).contains(&frac), "eclipse fraction {frac}");
    }
}
