//! Property-based tests for the orbital mechanics substrate.

use proptest::prelude::*;
use qntn_geo::Epoch;
use qntn_orbit::kepler::{
    eccentric_to_mean, eccentric_to_true, mean_to_true, solve_kepler, true_to_eccentric,
    true_to_mean,
};
use qntn_orbit::visibility::{intersect_intervals, merge_intervals, total_duration, Interval};
use qntn_orbit::{Keplerian, PerturbationModel, Propagator, EARTH_MU};
use std::f64::consts::TAU;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kepler_residual_vanishes(m in -20.0..20.0f64, e in 0.0..0.95f64) {
        let e_anom = solve_kepler(m, e);
        let resid = e_anom - e * e_anom.sin() - m;
        prop_assert!(resid.abs() < 1e-10, "M={m} e={e}: {resid}");
    }

    #[test]
    fn anomaly_roundtrips(nu in -6.0..6.0f64, e in 0.0..0.9f64) {
        let back = eccentric_to_true(true_to_eccentric(nu, e), e);
        prop_assert!((back - nu).abs() < 1e-10);
        let m = true_to_mean(nu, e);
        let back2 = mean_to_true(m, e);
        prop_assert!((back2 - nu).abs() < 1e-9);
    }

    #[test]
    fn mean_anomaly_monotone_in_eccentric(e in 0.0..0.95f64, e1 in -3.0..3.0f64, d in 0.001..1.0f64) {
        // M(E) = E - e sinE is strictly increasing for e < 1.
        let m1 = eccentric_to_mean(e1, e);
        let m2 = eccentric_to_mean(e1 + d, e);
        prop_assert!(m2 > m1);
    }

    #[test]
    fn two_body_invariants(
        alt_km in 300.0..2_000.0f64,
        ecc in 0.0..0.3f64,
        incl in 0.0..1.5f64,
        raan in 0.0..TAU,
        nu in 0.0..TAU,
        t in 0.0..20_000.0f64,
    ) {
        let a = (6_371.0 + alt_km) * 1000.0 / (1.0 - ecc); // keep perigee above ground
        let k = Keplerian {
            semi_major_m: a,
            eccentricity: ecc,
            inclination: incl,
            raan,
            arg_perigee: 0.7,
            true_anomaly: nu,
        };
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let s = p.propagate(t);
        // Energy conservation.
        let energy = s.velocity.norm_sq() / 2.0 - EARTH_MU / s.position.norm();
        let expect = k.specific_energy();
        prop_assert!((energy - expect).abs() / expect.abs() < 1e-8);
        // Angular momentum conservation.
        let h = s.position.cross(s.velocity).norm();
        prop_assert!((h - k.specific_angular_momentum()).abs() / h < 1e-8);
        // Radius within perigee/apogee bounds.
        let r = s.position.norm();
        prop_assert!(r >= k.perigee_radius_m() - 1.0);
        prop_assert!(r <= k.apogee_radius_m() + 1.0);
        // Latitude extent bounded by inclination (|sin lat| <= sin i).
        let sin_lat = s.position.z / r;
        prop_assert!(sin_lat.abs() <= incl.sin() + 1e-9);
    }

    #[test]
    fn periodicity(alt_km in 300.0..1_500.0f64, nu in 0.0..TAU) {
        let k = Keplerian::circular((6_371.0 + alt_km) * 1000.0, 0.9, 1.0, nu);
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody);
        let s0 = p.propagate(0.0);
        let s1 = p.propagate(k.period_s());
        prop_assert!((s1.position - s0.position).norm() < 10.0);
    }

    #[test]
    fn j2_conserves_energy_for_circular(alt_km in 400.0..1_200.0f64, t in 0.0..86_400.0f64) {
        // Our J2 model is secular-only: it precesses the plane but keeps
        // the orbit circular, so radius and speed stay fixed.
        let k = Keplerian::circular((6_371.0 + alt_km) * 1000.0, 0.92, 0.3, 1.0);
        let p = Propagator::new(k, Epoch::J2000, PerturbationModel::J2Secular);
        let s = p.propagate(t);
        prop_assert!((s.position.norm() - k.semi_major_m).abs() < 1e-2);
    }

    #[test]
    fn merge_intervals_invariants(
        raw in prop::collection::vec((0.0..1_000.0f64, 0.0..100.0f64), 0..20),
    ) {
        let intervals: Vec<Interval> =
            raw.iter().map(|&(s, d)| Interval::new(s, s + d)).collect();
        let merged = merge_intervals(intervals.clone());
        // Sorted, disjoint.
        for w in merged.windows(2) {
            prop_assert!(w[0].end_s < w[1].start_s);
        }
        // Union preserved: every original point set is inside the merge.
        for iv in &intervals {
            prop_assert!(merged.iter().any(|m| m.start_s <= iv.start_s && iv.end_s <= m.end_s));
        }
        // Total duration <= sum of raw durations, >= max raw duration.
        let total = total_duration(intervals.clone());
        let sum: f64 = intervals.iter().map(Interval::duration_s).sum();
        let max = intervals.iter().map(Interval::duration_s).fold(0.0, f64::max);
        prop_assert!(total <= sum + 1e-9);
        prop_assert!(total >= max - 1e-9);
    }

    #[test]
    fn intersection_is_subset(
        raw_a in prop::collection::vec((0.0..1_000.0f64, 1.0..100.0f64), 0..10),
        raw_b in prop::collection::vec((0.0..1_000.0f64, 1.0..100.0f64), 0..10),
    ) {
        let a = merge_intervals(raw_a.iter().map(|&(s, d)| Interval::new(s, s + d)).collect());
        let b = merge_intervals(raw_b.iter().map(|&(s, d)| Interval::new(s, s + d)).collect());
        let inter = intersect_intervals(&a, &b);
        let dur_i: f64 = inter.iter().map(Interval::duration_s).sum();
        let dur_a: f64 = a.iter().map(Interval::duration_s).sum();
        let dur_b: f64 = b.iter().map(Interval::duration_s).sum();
        prop_assert!(dur_i <= dur_a + 1e-9);
        prop_assert!(dur_i <= dur_b + 1e-9);
        // Every intersection interval lies inside one of each.
        for iv in &inter {
            prop_assert!(a.iter().any(|x| x.start_s <= iv.start_s && iv.end_s <= x.end_s));
            prop_assert!(b.iter().any(|x| x.start_s <= iv.start_s && iv.end_s <= x.end_s));
        }
    }
}
