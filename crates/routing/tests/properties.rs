//! Property-based tests: all three routers agree, and routes satisfy their
//! structural invariants, over random graphs.

use proptest::prelude::*;
use qntn_routing::bellman_ford::bellman_ford_all;
use qntn_routing::dijkstra::dijkstra_all;
use qntn_routing::{bellman_ford, dijkstra, DistanceVectorRouter, Graph, RouteMetric};

/// A random undirected graph: `n` nodes, edge probability `p`, etas in
/// [0.05, 1.0].
fn random_graph(max_nodes: usize) -> impl Strategy<Value = Graph> {
    (2..max_nodes, 0.05..0.9f64, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut g = Graph::with_nodes(n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for u in 0..n {
            for v in (u + 1)..n {
                if next() < p {
                    g.set_edge(u, v, 0.05 + 0.95 * next());
                }
            }
        }
        g
    })
}

fn all_metrics() -> [RouteMetric; 3] {
    [
        RouteMetric::PaperInverseEta,
        RouteMetric::NegLogEta,
        RouteMetric::HopCount,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_routers_agree(g in random_graph(14)) {
        for metric in all_metrics() {
            let dv = DistanceVectorRouter::build(&g, metric);
            for s in 0..g.node_count() {
                let bf = bellman_ford_all(&g, s, metric);
                let dj = dijkstra_all(&g, s, metric);
                for d in 0..g.node_count() {
                    let (a, b, c) = (bf.cost[d], dj.cost[d], dv.cost(s, d));
                    if a.is_finite() {
                        prop_assert!((a - b).abs() < 1e-9, "{s}->{d}: bf {a} dj {b}");
                        prop_assert!((a - c).abs() < 1e-9, "{s}->{d}: bf {a} dv {c}");
                    } else {
                        prop_assert!(b.is_infinite() && c.is_infinite());
                    }
                }
            }
        }
    }

    #[test]
    fn route_structure_invariants(g in random_graph(14)) {
        for metric in all_metrics() {
            for s in 0..g.node_count() {
                for d in 0..g.node_count() {
                    let Some(r) = bellman_ford(&g, s, d, metric) else { continue };
                    // Endpoints and edge existence.
                    prop_assert_eq!(r.nodes[0], s);
                    prop_assert_eq!(*r.nodes.last().unwrap(), d);
                    let mut product = 1.0;
                    let mut cost = 0.0;
                    for w in r.nodes.windows(2) {
                        let eta = g.eta(w[0], w[1]).expect("edge on path");
                        product *= eta;
                        cost += metric.edge_cost(eta);
                    }
                    prop_assert!((product - r.eta_product).abs() < 1e-9);
                    prop_assert!((cost - r.cost).abs() < 1e-9);
                    // Simple path: no repeated nodes.
                    let mut sorted = r.nodes.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), r.nodes.len(), "path revisits a node");
                    // Eta product bounded by the best single edge... no:
                    // bounded by 1 and by each edge's eta.
                    prop_assert!(r.eta_product <= 1.0 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn neg_log_maximizes_eta_product(g in random_graph(10)) {
        // The max-product route is at least as good (in eta) as the routes
        // the other metrics find.
        for s in 0..g.node_count() {
            for d in 0..g.node_count() {
                if s == d { continue }
                let best = dijkstra(&g, s, d, RouteMetric::NegLogEta);
                for metric in [RouteMetric::PaperInverseEta, RouteMetric::HopCount] {
                    if let (Some(b), Some(r)) = (&best, dijkstra(&g, s, d, metric)) {
                        prop_assert!(
                            b.eta_product >= r.eta_product - 1e-9,
                            "{s}->{d}: neglog {} vs {:?} {}",
                            b.eta_product, metric, r.eta_product
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thresholding_is_monotone(g in random_graph(14), t1 in 0.0..1.0f64, t2 in 0.0..1.0f64) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let g_lo = g.thresholded(lo);
        let g_hi = g.thresholded(hi);
        prop_assert!(g_hi.edge_count() <= g_lo.edge_count());
        // Every edge surviving the high threshold survives the low one.
        for (u, v, eta) in g_hi.edges() {
            prop_assert!(g_lo.has_edge(u, v));
            prop_assert!(eta >= hi);
        }
        // Connectivity can only degrade as the threshold rises.
        for s in 0..g.node_count() {
            for d in 0..g.node_count() {
                if g_hi.connected(s, d) {
                    prop_assert!(g_lo.connected(s, d));
                }
            }
        }
    }

    #[test]
    fn components_partition_nodes(g in random_graph(16)) {
        let labels = g.components();
        prop_assert_eq!(labels.len(), g.node_count());
        // Edge endpoints share a label.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(labels[u], labels[v]);
        }
        // Labels are dense from 0.
        let max = labels.iter().copied().max().unwrap_or(0);
        for l in 0..=max {
            prop_assert!(labels.contains(&l));
        }
    }
}
