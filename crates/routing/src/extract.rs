//! Shared route-extraction plumbing: the predecessor walk and the
//! path → [`Route`] accumulation.
//!
//! Three extractors used to carry private copies of this logic —
//! [`crate::bellman_ford`]'s `extract_route` (also serving
//! [`crate::dijkstra`], whose tables share the [`crate::SsspTable`]
//! layout) and [`crate::table::DistanceVectorRouter::route`]'s
//! accumulation loop. They are deduplicated here so the time-expanded
//! extractor ([`crate::timexp`]) has exactly one seam to extend: it walks
//! predecessors with [`walk_predecessors`] over `(host, layer)` indices
//! and accumulates with its own hold/link split, while the per-step
//! extractors compose [`walk_predecessors`] + [`accumulate_route`]
//! unchanged.
//!
//! Both helpers are order-preserving: `accumulate_route` multiplies the η
//! product and sums the metric cost in path order, exactly as the old
//! inline loops did, so refactored callers stay bit-identical.

use crate::graph::NodeId;
use crate::metrics::RouteMetric;
use crate::Route;

/// Walk a predecessor table from `dest` back to `source` and return the
/// forward-ordered node sequence, or `None` when the chain is broken
/// (unreachable) or longer than `node_budget` (a corrupt table must not
/// loop forever).
///
/// `source == dest` yields the single-node path `[source]`.
pub(crate) fn walk_predecessors(
    pred: &[Option<NodeId>],
    source: NodeId,
    dest: NodeId,
    node_budget: usize,
) -> Option<Vec<NodeId>> {
    let mut nodes = vec![dest];
    let mut cur = dest;
    while cur != source {
        cur = (*pred.get(cur)?)?;
        nodes.push(cur);
        if nodes.len() > node_budget {
            return None; // defensive: corrupt predecessor chain
        }
    }
    nodes.reverse();
    Some(nodes)
}

/// Fold a node path into a [`Route`]: per consecutive pair, look up the
/// edge's η with `eta_of`, multiply it into the end-to-end product and add
/// `metric.edge_cost(η)` to the total — in path order. Returns `None` when
/// any lookup fails (an edge the path claims does not exist — only
/// possible on a corrupt table).
pub(crate) fn accumulate_route(
    nodes: Vec<NodeId>,
    mut eta_of: impl FnMut(NodeId, NodeId) -> Option<f64>,
    metric: RouteMetric,
) -> Option<Route> {
    let mut eta_product = 1.0;
    let mut cost = 0.0;
    for w in nodes.windows(2) {
        let eta = eta_of(w[0], w[1])?;
        eta_product *= eta;
        cost += metric.edge_cost(eta);
    }
    Some(Route {
        nodes,
        cost,
        eta_product,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_trivial_and_linear() {
        // 0 <- 1 <- 2 chain rooted at 0.
        let pred = vec![None, Some(0), Some(1)];
        assert_eq!(walk_predecessors(&pred, 0, 0, 3), Some(vec![0]));
        assert_eq!(walk_predecessors(&pred, 0, 2, 3), Some(vec![0, 1, 2]));
    }

    #[test]
    fn walk_rejects_broken_and_cyclic_chains() {
        let broken = vec![None, None, Some(1)];
        assert_eq!(walk_predecessors(&broken, 0, 2, 3), None);
        // 1 <-> 2 cycle never reaches 0: the budget stops it.
        let cyclic = vec![None, Some(2), Some(1)];
        assert_eq!(walk_predecessors(&cyclic, 0, 2, 3), None);
        // Out-of-range dest has no table row.
        assert_eq!(walk_predecessors(&broken, 0, 9, 3), None);
    }

    #[test]
    fn accumulate_orders_and_products() {
        let etas = [(0usize, 1usize, 0.9), (1, 2, 0.8)];
        let lookup = |u: NodeId, v: NodeId| {
            etas.iter()
                .find(|&&(a, b, _)| (a, b) == (u, v) || (b, a) == (u, v))
                .map(|&(_, _, e)| e)
        };
        let r = accumulate_route(vec![0, 1, 2], lookup, RouteMetric::NegLogEta).unwrap();
        assert!((r.eta_product - 0.72).abs() < 1e-12);
        assert!((r.cost - (-(0.9f64.ln()) - 0.8f64.ln())).abs() < 1e-12);
        // A pair with no edge is a corrupt table -> None.
        assert!(accumulate_route(vec![0, 2], lookup, RouteMetric::NegLogEta).is_none());
    }
}
