//! # qntn-routing — entanglement routing
//!
//! The paper routes entanglement with Bellman–Ford over the additive cost
//! `1/(η + ε)` per link (its Algorithm 1, a distance-vector formulation
//! with per-node routing tables). This crate implements:
//!
//! - [`graph::Graph`] — an undirected graph whose edges carry
//!   transmissivities.
//! - [`metrics::RouteMetric`] — the paper's cost, plus two baselines: the
//!   max-product metric `−ln η` (which *exactly* maximizes end-to-end
//!   transmissivity and hence fidelity) and plain hop count. Ablation A1
//!   quantifies how far the paper's additive metric falls from optimal.
//! - [`table`] — the paper's Algorithm 1, faithfully: INITIALIZE per node,
//!   N−1 rounds of table exchange, UPDATE via neighbours' tables, and
//!   next-hop path extraction.
//! - [`bellman_ford()`] — classic single-source edge-relaxation Bellman–Ford
//!   (what Algorithm 1 converges to; equivalence is tested).
//! - [`dijkstra()`] — a binary-heap Dijkstra baseline (all costs here are
//!   positive, so it must agree with Bellman–Ford; tested, including by
//!   proptest in the crate's property suite).
//! - [`timexp`] — store-and-forward routing over a [`TimeExpandedGraph`]
//!   of `(host, step)` nodes: same-step link edges plus directed
//!   "hold one step, pay memory decay" edges, with entanglement swapping
//!   at intermediate hosts and a fidelity-floor cutoff. At horizon 0 it
//!   reproduces the per-step routers bit-identically.
//!
//! All routers return a [`Route`] carrying the node path, the accumulated
//! metric cost and the end-to-end transmissivity product (what the
//! amplitude-damping composition law says the path's effective η is).

pub mod bellman_ford;
pub mod dijkstra;
pub mod disjoint;
mod extract;
pub mod graph;
pub mod metrics;
pub mod table;
pub mod timexp;

pub use bellman_ford::{
    bellman_ford, bellman_ford_all, bellman_ford_all_into, bellman_ford_into, route_from_table,
    SsspTable,
};
pub use dijkstra::{dijkstra, dijkstra_all};
pub use disjoint::{edge_disjoint_routes, survivability, vertex_disjoint_routes};
pub use graph::{Graph, NodeId};
pub use metrics::{RouteMetric, PAPER_EPSILON};
pub use table::DistanceVectorRouter;
pub use timexp::{
    extract_time_route, time_sssp_into, TimeEdge, TimeExpandedGraph, TimeNodeId, TimeRoute,
    TimeTable,
};

/// A routed path.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Node sequence from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Total metric cost along the path.
    pub cost: f64,
    /// Product of link transmissivities along the path — the effective η of
    /// the end-to-end amplitude-damping channel.
    pub eta_product: f64,
}

impl Route {
    /// Number of links in the path.
    #[inline]
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}
