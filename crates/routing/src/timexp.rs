//! Time-expanded routing: store-and-forward entanglement over a bounded
//! horizon of sweep steps.
//!
//! The per-step pipeline routes each step in isolation; the contact
//! windows, however, already encode the future. This module gives routing
//! a time axis: a [`TimeExpandedGraph`] whose nodes are `(host, layer)`
//! pairs — layer `l` is sweep step `base_step + l` — and whose edges are
//!
//! - **link edges**: that layer's physical links (η from the per-step
//!   `LinkMap`), traversable in either direction *within* the layer, and
//! - **hold edges**: directed `(host, l) → (host, l+1)` transitions whose
//!   η is the host's per-step memory-decay factor
//!   (`MemoryParams::per_step_eta_factor` in `qntn-quantum`) — "keep the
//!   qubit one step, pay the decoherence".
//!
//! A path that enters an intermediate host on one layer and leaves on a
//! later one *is* entanglement swapping across non-simultaneous passes:
//! the host holds its half of the first pair until the second link comes
//! up, then swaps. Because the workspace's decay law is multiplicative in
//! η-space (`AD(η₁)∘AD(η₂) = AD(η₁η₂)`), the end-to-end η of such a path
//! is simply the product of every edge η, holds included — so the existing
//! [`RouteMetric`]s apply unchanged.
//!
//! ## Determinism and the zero-horizon contract
//!
//! The graph is filled by exactly one builder
//! (`qntn_net::pipeline::build_time_expanded_into`, preserving the
//! single-materializer invariant); this module only defines the structure
//! and the solver. Edge storage is a flat list in canonical emission
//! order: per layer, first that layer's hold edges (hosts ascending), then
//! its link edges in the per-step graph's `edges()` order.
//! [`time_sssp_into`] relaxes that list with the *same loop shape* as
//! [`crate::bellman_ford_all_into`] — `n−1` rounds, strict `<`, early
//! exit, both orientations for link edges (hold edges forward only: a
//! qubit cannot travel back in time). With horizon 0 the edge sequence is
//! bitwise the per-step sequence and the loop is the per-step loop, so
//! costs, predecessors and extracted routes reproduce per-step routing
//! bit-identically — a checked property (`tests/timexp.rs`), not a
//! short-circuit.

use crate::extract::walk_predecessors;
use crate::graph::NodeId;
use crate::metrics::RouteMetric;
use crate::Route;

/// Index of a `(host, layer)` node: `layer * n_hosts + host`.
pub type TimeNodeId = usize;

/// One edge of the time-expanded graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeEdge {
    /// Tail time-node.
    pub from: TimeNodeId,
    /// Head time-node (same layer for link edges, next layer for holds).
    pub to: TimeNodeId,
    /// Transmissivity: the physical link's η, or the hold's decay factor.
    pub eta: f64,
    /// Hold edges relax forward only; link edges in both directions.
    pub hold: bool,
}

/// The layered graph. Built exclusively by the pipeline's
/// `build_time_expanded_into`; reusable across calls via [`Self::reset`]
/// (storage is retained, nothing is allocated in the steady state).
#[derive(Debug, Clone, Default)]
pub struct TimeExpandedGraph {
    n_hosts: usize,
    n_layers: usize,
    base_step: usize,
    edges: Vec<TimeEdge>,
}

impl TimeExpandedGraph {
    /// Clear to an empty graph over `n_hosts` hosts anchored at sweep step
    /// `base_step`, keeping edge storage.
    pub fn reset(&mut self, n_hosts: usize, base_step: usize) {
        self.n_hosts = n_hosts;
        self.n_layers = 0;
        self.base_step = base_step;
        self.edges.clear();
    }

    /// Open the next layer. Subsequent [`Self::push_hold`] /
    /// [`Self::push_link`] calls land in it.
    pub fn begin_layer(&mut self) {
        self.n_layers += 1;
    }

    /// Add the directed hold edge carrying `host`'s qubit from the
    /// previous layer into the current one, with decay factor `eta`.
    ///
    /// # Panics
    /// If fewer than two layers are open, `host` is out of range, or
    /// `eta` is outside `(0, 1]` (a zero-η hold can never lie on a best
    /// path with finite metrics — the builder skips memoryless hosts).
    pub fn push_hold(&mut self, host: NodeId, eta: f64) {
        assert!(self.n_layers >= 2, "hold edges connect two layers");
        assert!(host < self.n_hosts, "host out of range");
        assert!(eta > 0.0 && eta <= 1.0, "hold eta out of (0, 1]: {eta}");
        let from = (self.n_layers - 2) * self.n_hosts + host;
        self.edges.push(TimeEdge {
            from,
            to: from + self.n_hosts,
            eta,
            hold: true,
        });
    }

    /// Add an (undirected) physical link of the current layer.
    ///
    /// # Panics
    /// If no layer is open, an endpoint is out of range, the link is a
    /// self-loop, or `eta` is outside `[0, 1]`.
    pub fn push_link(&mut self, u: NodeId, v: NodeId, eta: f64) {
        assert!(self.n_layers >= 1, "no layer open");
        assert!(u < self.n_hosts && v < self.n_hosts, "host out of range");
        assert_ne!(u, v, "self-loop");
        assert!((0.0..=1.0).contains(&eta), "link eta out of [0, 1]: {eta}");
        let off = (self.n_layers - 1) * self.n_hosts;
        self.edges.push(TimeEdge {
            from: off + u,
            to: off + v,
            eta,
            hold: false,
        });
    }

    /// Hosts per layer.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of layers (horizon + 1 when non-empty).
    pub fn layers(&self) -> usize {
        self.n_layers
    }

    /// The sweep step layer 0 corresponds to.
    pub fn base_step(&self) -> usize {
        self.base_step
    }

    /// Total time-nodes.
    pub fn node_count(&self) -> usize {
        self.n_hosts * self.n_layers
    }

    /// The edge list in canonical emission order.
    pub fn edges(&self) -> &[TimeEdge] {
        &self.edges
    }

    /// The time-node of `host` at `layer`.
    #[inline]
    pub fn node_of(&self, host: NodeId, layer: usize) -> TimeNodeId {
        debug_assert!(host < self.n_hosts && layer < self.n_layers);
        layer * self.n_hosts + host
    }

    /// The host a time-node belongs to.
    #[inline]
    pub fn host_of(&self, node: TimeNodeId) -> NodeId {
        node % self.n_hosts
    }

    /// The layer a time-node belongs to.
    #[inline]
    pub fn layer_of(&self, node: TimeNodeId) -> usize {
        node / self.n_hosts
    }
}

/// Per-time-node SSSP results, including the η and kind of the relaxed-in
/// predecessor edge so extraction needs no adjacency lookups.
#[derive(Debug, Clone, Default)]
pub struct TimeTable {
    /// Metric cost from the source time-node.
    pub cost: Vec<f64>,
    /// Predecessor time-node on the best path.
    pub pred: Vec<Option<TimeNodeId>>,
    /// η of the edge `(pred[v], v)`.
    pub pred_eta: Vec<f64>,
    /// Whether that edge was a hold.
    pub pred_hold: Vec<bool>,
}

impl TimeTable {
    /// Size to `n` time-nodes with every cost at infinity, reusing storage.
    pub fn reset(&mut self, n: usize) {
        self.cost.clear();
        self.cost.resize(n, f64::INFINITY);
        self.pred.clear();
        self.pred.resize(n, None);
        self.pred_eta.clear();
        self.pred_eta.resize(n, 1.0);
        self.pred_hold.clear();
        self.pred_hold.resize(n, false);
    }
}

/// Single-source relaxation from `(source_host, layer 0)` over the whole
/// horizon — Bellman–Ford with the exact loop shape of
/// [`crate::bellman_ford_all_into`] (see the module docs for why that
/// matters), except that hold edges relax forward only.
///
/// # Panics
/// If `source_host` is out of range or the graph has no layers.
pub fn time_sssp_into(
    graph: &TimeExpandedGraph,
    source_host: NodeId,
    metric: RouteMetric,
    table: &mut TimeTable,
) {
    let n = graph.node_count();
    assert!(source_host < graph.n_hosts(), "source out of range");
    assert!(graph.layers() > 0, "empty time-expanded graph");
    table.reset(n);
    table.cost[graph.node_of(source_host, 0)] = 0.0;

    for _round in 0..n.saturating_sub(1) {
        let mut changed = false;
        for e in graph.edges() {
            let w = metric.edge_cost(e.eta);
            if table.cost[e.from] + w < table.cost[e.to] {
                table.cost[e.to] = table.cost[e.from] + w;
                table.pred[e.to] = Some(e.from);
                table.pred_eta[e.to] = e.eta;
                table.pred_hold[e.to] = e.hold;
                changed = true;
            }
            if !e.hold && table.cost[e.to] + w < table.cost[e.from] {
                table.cost[e.from] = table.cost[e.to] + w;
                table.pred[e.from] = Some(e.to);
                table.pred_eta[e.from] = e.eta;
                table.pred_hold[e.from] = false;
                changed = true;
            }
        }
        if !changed {
            break; // early exit: already converged
        }
    }
}

/// A route through the time-expanded graph, projected back onto hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeRoute {
    /// Host-level path (holds collapsed); `cost` sums every edge including
    /// holds, `eta_product` is the end-to-end η including hold decay.
    pub route: Route,
    /// η of each *physical* link, in path order — what the entanglement
    /// layer feeds into its per-link fidelity accounting.
    pub link_etas: Vec<f64>,
    /// Product of the hold edges' decay factors (`1.0` when nothing was
    /// held; `route.eta_product == Π link_etas · hold_eta`).
    pub hold_eta: f64,
    /// Total steps spent holding.
    pub hold_steps: usize,
    /// Entanglement swaps performed (intermediate hosts on the path).
    pub swaps: usize,
    /// Layer on which the destination is reached — the pair is delivered
    /// at sweep step `base_step + delivered_layer`.
    pub delivered_layer: usize,
}

/// Extract the best route from `src_host` (at layer 0) to `dst_host` at
/// *any* layer: minimum metric cost, earliest delivery on ties. Returns
/// `None` when the destination is unreachable within the horizon, an
/// endpoint is out of range, or the end-to-end η falls below `eta_floor`
/// (the fidelity-floor cutoff, mapped into η-space by the caller — the
/// map is monotone, see `qntn_quantum::fidelity::bell_ad_sqrt_fidelity`).
pub fn extract_time_route(
    graph: &TimeExpandedGraph,
    table: &TimeTable,
    src_host: NodeId,
    dst_host: NodeId,
    metric: RouteMetric,
    eta_floor: f64,
) -> Option<TimeRoute> {
    if src_host >= graph.n_hosts() || dst_host >= graph.n_hosts() || graph.layers() == 0 {
        return None;
    }
    let mut best: Option<(f64, usize)> = None;
    for layer in 0..graph.layers() {
        let c = table.cost[graph.node_of(dst_host, layer)];
        if c.is_finite() && best.is_none_or(|(bc, _)| c < bc) {
            best = Some((c, layer));
        }
    }
    let (_, delivered_layer) = best?;
    let nodes = walk_predecessors(
        &table.pred,
        graph.node_of(src_host, 0),
        graph.node_of(dst_host, delivered_layer),
        graph.node_count(),
    )?;

    let mut hosts = vec![src_host];
    let mut link_etas = Vec::new();
    let mut hold_eta = 1.0;
    let mut hold_steps = 0usize;
    let mut eta_product = 1.0;
    let mut cost = 0.0;
    for w in nodes.windows(2) {
        // The walk guarantees pred[w[1]] == w[0], so the recorded
        // predecessor edge is exactly the edge (w[0], w[1]).
        let v = w[1];
        let eta = table.pred_eta[v];
        eta_product *= eta;
        cost += metric.edge_cost(eta);
        if table.pred_hold[v] {
            hold_eta *= eta;
            hold_steps += 1;
        } else {
            link_etas.push(eta);
            hosts.push(graph.host_of(v));
        }
    }
    if eta_product < eta_floor {
        return None;
    }
    let swaps = hosts.len().saturating_sub(2);
    Some(TimeRoute {
        route: Route {
            nodes: hosts,
            cost,
            eta_product,
        },
        link_etas,
        hold_eta,
        hold_steps,
        swaps,
        delivered_layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::{bellman_ford_all, route_from_table};
    use crate::graph::Graph;

    /// Mirror one per-step [`Graph`] into layer after layer of a
    /// time-expanded graph, with uniform hold factors in between.
    fn expand(g: &Graph, layers: usize, hold: &[f64]) -> TimeExpandedGraph {
        let mut tx = TimeExpandedGraph::default();
        tx.reset(g.node_count(), 0);
        for l in 0..layers {
            tx.begin_layer();
            if l > 0 {
                for (h, &f) in hold.iter().enumerate() {
                    if f > 0.0 {
                        tx.push_hold(h, f);
                    }
                }
            }
            for (u, v, eta) in g.edges() {
                tx.push_link(u, v, eta);
            }
        }
        tx
    }

    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 2, 0.9);
        g.set_edge(0, 2, 0.5);
        g.set_edge(2, 3, 0.95);
        g
    }

    #[test]
    fn single_layer_is_bitwise_per_step_routing() {
        let g = diamond();
        let tx = expand(&g, 1, &[]);
        let mut table = TimeTable::default();
        for metric in [RouteMetric::PaperInverseEta, RouteMetric::NegLogEta] {
            for src in 0..4 {
                let per_step = bellman_ford_all(&g, src, metric);
                time_sssp_into(&tx, src, metric, &mut table);
                for node in 0..4 {
                    assert_eq!(
                        table.cost[node].to_bits(),
                        per_step.cost[node].to_bits(),
                        "cost {src}->{node}"
                    );
                    assert_eq!(table.pred[node], per_step.pred[node], "pred {src}->{node}");
                }
                for dst in 0..4 {
                    let a = route_from_table(&g, &per_step, src, dst, metric);
                    let b = extract_time_route(&tx, &table, src, dst, metric, 0.0);
                    match (a, b) {
                        (Some(r), Some(t)) => {
                            assert_eq!(t.route.nodes, r.nodes);
                            assert_eq!(t.route.cost.to_bits(), r.cost.to_bits());
                            assert_eq!(t.route.eta_product.to_bits(), r.eta_product.to_bits());
                            assert_eq!(t.hold_eta, 1.0);
                            assert_eq!(t.hold_steps, 0);
                            assert_eq!(t.delivered_layer, 0);
                        }
                        (None, None) => {}
                        (a, b) => panic!("{src}->{dst}: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn holding_bridges_non_simultaneous_passes() {
        // Step 0: src 0 sees relay 1. Step 1: relay 1 sees dst 2. Only a
        // hold at the relay (an entanglement swap across passes) connects
        // 0 to 2.
        let mut tx = TimeExpandedGraph::default();
        tx.reset(3, 7);
        tx.begin_layer();
        tx.push_link(0, 1, 0.8);
        tx.begin_layer();
        tx.push_hold(0, 0.9);
        tx.push_hold(1, 0.9);
        tx.push_hold(2, 0.9);
        tx.push_link(1, 2, 0.7);

        let mut table = TimeTable::default();
        time_sssp_into(&tx, 0, RouteMetric::NegLogEta, &mut table);
        let r = extract_time_route(&tx, &table, 0, 2, RouteMetric::NegLogEta, 0.0).unwrap();
        assert_eq!(r.route.nodes, vec![0, 1, 2]);
        assert_eq!(r.link_etas, vec![0.8, 0.7]);
        assert_eq!(r.hold_steps, 1);
        assert_eq!(r.swaps, 1);
        assert_eq!(r.delivered_layer, 1);
        assert!((r.hold_eta - 0.9).abs() < 1e-12);
        assert!((r.route.eta_product - 0.8 * 0.9 * 0.7).abs() < 1e-12);
        // Without the hold there is no route at all.
        let per_step_only = extract_time_route(&tx, &table, 0, 2, RouteMetric::NegLogEta, 0.51);
        assert!(per_step_only.is_none(), "floor above 0.504 cuts the route");
    }

    #[test]
    fn holds_never_travel_backwards() {
        // dst visible only at layer 0, src connected only at layer 1: a
        // legal classical graph would route "back in time"; ours must not.
        let mut tx = TimeExpandedGraph::default();
        tx.reset(3, 0);
        tx.begin_layer();
        tx.push_link(1, 2, 0.9);
        tx.begin_layer();
        tx.push_hold(0, 0.99);
        tx.push_hold(1, 0.99);
        tx.push_hold(2, 0.99);
        tx.push_link(0, 1, 0.9);
        let mut table = TimeTable::default();
        time_sssp_into(&tx, 0, RouteMetric::NegLogEta, &mut table);
        assert!(extract_time_route(&tx, &table, 0, 2, RouteMetric::NegLogEta, 0.0).is_none());
    }

    #[test]
    fn earliest_layer_wins_cost_ties() {
        // A static link present on both layers, lossless holds: the
        // layer-1 delivery via a hold costs the same under NegLogEta
        // (ln 1 = 0) — extraction must pick layer 0.
        let mut g = Graph::with_nodes(2);
        g.set_edge(0, 1, 0.9);
        let tx = expand(&g, 2, &[1.0, 1.0]);
        let mut table = TimeTable::default();
        time_sssp_into(&tx, 0, RouteMetric::NegLogEta, &mut table);
        let r = extract_time_route(&tx, &table, 0, 1, RouteMetric::NegLogEta, 0.0).unwrap();
        assert_eq!(r.delivered_layer, 0);
        assert_eq!(r.hold_steps, 0);
    }

    #[test]
    fn fidelity_floor_cuts_low_eta_routes() {
        let g = diamond();
        let tx = expand(&g, 1, &[]);
        let mut table = TimeTable::default();
        time_sssp_into(&tx, 0, RouteMetric::PaperInverseEta, &mut table);
        // The paper metric picks the weak 0.5 direct link 0-2.
        let open = extract_time_route(&tx, &table, 0, 2, RouteMetric::PaperInverseEta, 0.0);
        assert!(open.is_some());
        let cut = extract_time_route(&tx, &table, 0, 2, RouteMetric::PaperInverseEta, 0.6);
        assert!(cut.is_none());
    }

    #[test]
    fn source_equals_dest_is_free() {
        let g = diamond();
        let tx = expand(&g, 3, &[0.9; 4]);
        let mut table = TimeTable::default();
        time_sssp_into(&tx, 2, RouteMetric::PaperInverseEta, &mut table);
        let r = extract_time_route(&tx, &table, 2, 2, RouteMetric::PaperInverseEta, 0.0).unwrap();
        assert_eq!(r.route.nodes, vec![2]);
        assert_eq!(r.route.cost, 0.0);
        assert_eq!(r.route.eta_product, 1.0);
        assert_eq!(r.delivered_layer, 0);
    }

    #[test]
    fn out_of_range_endpoints_return_none() {
        let g = diamond();
        let tx = expand(&g, 2, &[0.9; 4]);
        let mut table = TimeTable::default();
        time_sssp_into(&tx, 0, RouteMetric::PaperInverseEta, &mut table);
        for (s, d) in [(0, 99), (99, 0), (usize::MAX, usize::MAX)] {
            assert!(
                extract_time_route(&tx, &table, s, d, RouteMetric::PaperInverseEta, 0.0).is_none()
            );
        }
    }

    #[test]
    fn reset_reuses_storage_cleanly() {
        let g = diamond();
        let mut tx = expand(&g, 3, &[0.9; 4]);
        let before = tx.edges().len();
        assert!(before > 0);
        tx.reset(2, 5);
        assert_eq!(tx.layers(), 0);
        assert_eq!(tx.edges().len(), 0);
        assert_eq!(tx.base_step(), 5);
        tx.begin_layer();
        tx.push_link(0, 1, 0.5);
        assert_eq!(tx.node_count(), 2);
    }
}
