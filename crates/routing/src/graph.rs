//! Undirected transmissivity-weighted graphs.

/// Node identifier: a dense index into the graph's adjacency table.
pub type NodeId = usize;

/// One adjacency entry: the neighbour and the link transmissivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjacency {
    pub to: NodeId,
    pub eta: f64,
}

/// An undirected graph whose edges carry transmissivities η ∈ [0, 1].
///
/// Edges are stored in both directions; adding an edge twice replaces the
/// transmissivity (links in the simulator are re-evaluated every time step).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Adjacency>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with `n` nodes.
    pub fn with_nodes(n: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Add one more node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Resize to `n` nodes and drop every edge while keeping the adjacency
    /// lists' allocations — lets a sweep reuse one `Graph` buffer across
    /// thousands of time steps without churning the allocator.
    pub fn reset(&mut self, n: usize) {
        self.adj.truncate(n);
        for list in &mut self.adj {
            list.clear();
        }
        self.adj.resize_with(n, Vec::new);
        self.edge_count = 0;
    }

    /// Insert (or update) the undirected edge `u — v` with transmissivity
    /// `eta`.
    ///
    /// # Panics
    /// Panics on out-of-range nodes, self-loops, or `eta` outside [0, 1].
    pub fn set_edge(&mut self, u: NodeId, v: NodeId, eta: f64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        assert_ne!(u, v, "self-loops are not meaningful here");
        assert!(
            (0.0..=1.0).contains(&eta),
            "transmissivity must be in [0,1], got {eta}"
        );
        let mut inserted = false;
        for half in [(u, v), (v, u)] {
            let (a, b) = half;
            match self.adj[a].iter_mut().find(|e| e.to == b) {
                Some(e) => e.eta = eta,
                None => {
                    self.adj[a].push(Adjacency { to: b, eta });
                    inserted = true;
                }
            }
        }
        if inserted {
            self.edge_count += 1;
        }
    }

    /// Remove the undirected edge `u — v` if present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        let before = self.adj[u].len();
        self.adj[u].retain(|e| e.to != v);
        self.adj[v].retain(|e| e.to != u);
        if self.adj[u].len() != before {
            self.edge_count -= 1;
        }
    }

    /// The neighbours of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Adjacency] {
        &self.adj[u]
    }

    /// Transmissivity of edge `u — v`, if it exists.
    pub fn eta(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj[u].iter().find(|e| e.to == v).map(|e| e.eta)
    }

    /// True when the edge exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.eta(u, v).is_some()
    }

    /// Iterate every undirected edge once as `(u, v, eta)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter()
                .filter(move |e| u < e.to)
                .map(move |e| (u, e.to, e.eta))
        })
    }

    /// A copy retaining only edges with `eta >= threshold` — how the
    /// simulator applies the paper's transmissivity threshold.
    pub fn thresholded(&self, threshold: f64) -> Graph {
        let mut g = Graph::default();
        self.thresholded_into(threshold, &mut g);
        g
    }

    /// [`Graph::thresholded`] into a caller-provided buffer (allocation-free
    /// once the buffer has warmed up). Edge insertion order matches
    /// `thresholded` exactly, so adjacency lists are bit-identical.
    pub fn thresholded_into(&self, threshold: f64, out: &mut Graph) {
        out.reset(self.node_count());
        for (u, v, eta) in self.edges() {
            if eta >= threshold {
                out.set_edge(u, v, eta);
            }
        }
    }

    /// Connected-component label for every node (BFS).
    pub fn components(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            label[start] = next;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for e in &self.adj[u] {
                    if label[e.to] == usize::MAX {
                        label[e.to] = next;
                        queue.push_back(e.to);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// True when `a` and `b` are in one connected component.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        let labels = self.components();
        labels[a] == labels[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 2, 0.8);
        g.set_edge(0, 2, 0.5);
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(1).len(), 2);
    }

    #[test]
    fn edges_are_symmetric() {
        let g = triangle();
        assert_eq!(g.eta(0, 1), Some(0.9));
        assert_eq!(g.eta(1, 0), Some(0.9));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.eta(0, 0), None);
    }

    #[test]
    fn set_edge_updates_in_place() {
        let mut g = triangle();
        g.set_edge(0, 1, 0.4);
        assert_eq!(g.edge_count(), 3, "update must not duplicate");
        assert_eq!(g.eta(1, 0), Some(0.4));
    }

    #[test]
    fn remove_edge() {
        let mut g = triangle();
        g.remove_edge(0, 2);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(0, 2));
        // Removing again is a no-op.
        g.remove_edge(0, 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edges_iterator_visits_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn thresholding_drops_weak_links() {
        let g = triangle().thresholded(0.7);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(0, 2));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::with_nodes(5);
        g.set_edge(0, 1, 1.0);
        g.set_edge(1, 2, 1.0);
        g.set_edge(3, 4, 1.0);
        let labels = g.components();
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert!(g.connected(0, 2));
        assert!(!g.connected(2, 4));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = triangle();
        let id = g.add_node();
        assert_eq!(id, 3);
        assert_eq!(g.node_count(), 4);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn reset_clears_edges_and_resizes() {
        let mut g = triangle();
        g.reset(2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.neighbors(0).is_empty() && g.neighbors(1).is_empty());
        g.set_edge(0, 1, 0.5);
        g.reset(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert!((0..4).all(|u| g.neighbors(u).is_empty()));
    }

    #[test]
    fn thresholded_into_matches_thresholded() {
        let g = triangle();
        let fresh = g.thresholded(0.7);
        let mut reused = Graph::with_nodes(17); // dirty buffer
        reused.set_edge(3, 9, 0.1);
        g.thresholded_into(0.7, &mut reused);
        assert_eq!(reused.node_count(), fresh.node_count());
        assert_eq!(reused.edge_count(), fresh.edge_count());
        for u in 0..fresh.node_count() {
            assert_eq!(reused.neighbors(u), fresh.neighbors(u), "node {u}");
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        g.set_edge(1, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "transmissivity must be in [0,1]")]
    fn rejects_bad_eta() {
        let mut g = Graph::with_nodes(2);
        g.set_edge(0, 1, 1.5);
    }
}
