//! The paper's Algorithm 1: distance-vector Bellman–Ford with per-node
//! routing tables.
//!
//! Faithful to the pseudocode:
//!
//! - `INITIALIZE(G, node)`: cost to self 0, cost to adjacent nodes
//!   `1/(η+ε)` via the neighbour itself, ∞ elsewhere;
//! - `UPDATE(G, node)`: for every edge `(u, v)`, relax
//!   `node.R[u] > node.R[v] + v.R[u]` — note the use of *v's own table*,
//!   the distance-vector exchange;
//! - `BELLMANFORD`: initialize all nodes, then N−1 rounds of updates.
//!
//! Tables are read in place within a round ("step 2 is omitted because the
//! simulation is carried out on the same machine and routing tables of
//! other nodes are accessible", Section III-B). The `via` stored by an
//! update is a *waypoint*, not necessarily a neighbour; path extraction
//! resolves waypoints recursively. Convergence to the classic
//! single-source answer is tested against [`crate::bellman_ford()`] and
//! [`crate::dijkstra()`].

use crate::graph::{Graph, NodeId};
use crate::metrics::RouteMetric;
use crate::Route;

/// One routing-table entry: the cost to a destination and the waypoint to
/// route through (`None` = unreachable; `via == dest` = directly adjacent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableEntry {
    pub cost: f64,
    pub via: Option<NodeId>,
}

/// All nodes' routing tables after running Algorithm 1.
#[derive(Debug, Clone)]
pub struct DistanceVectorRouter {
    metric: RouteMetric,
    /// `tables[node][dest]`.
    tables: Vec<Vec<TableEntry>>,
}

impl DistanceVectorRouter {
    /// Run the paper's BELLMANFORD over the whole graph.
    pub fn build(graph: &Graph, metric: RouteMetric) -> DistanceVectorRouter {
        let n = graph.node_count();
        let mut tables: Vec<Vec<TableEntry>> = (0..n)
            .map(|node| {
                // INITIALIZE(G, node)
                (0..n)
                    .map(|i| {
                        if i == node {
                            TableEntry {
                                cost: 0.0,
                                via: Some(node),
                            }
                        } else if let Some(eta) = graph.eta(node, i) {
                            TableEntry {
                                cost: metric.edge_cost(eta),
                                via: Some(i),
                            }
                        } else {
                            TableEntry {
                                cost: f64::INFINITY,
                                via: None,
                            }
                        }
                    })
                    .collect()
            })
            .collect();

        // N−1 rounds of UPDATE over every node.
        for _round in 0..n.saturating_sub(1) {
            let mut changed = false;
            for node in 0..n {
                for (eu, ev, _eta) in graph.edges() {
                    // The pseudocode's edge set is undirected; relax both
                    // orientations of (u, v).
                    for (u, v) in [(eu, ev), (ev, eu)] {
                        let via_cost = tables[node][v].cost + tables[v][u].cost;
                        if tables[node][u].cost > via_cost {
                            tables[node][u] = TableEntry {
                                cost: via_cost,
                                via: Some(v),
                            };
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        DistanceVectorRouter { metric, tables }
    }

    /// The converged cost from `source` to `dest` (∞ when unreachable).
    pub fn cost(&self, source: NodeId, dest: NodeId) -> f64 {
        self.tables[source][dest].cost
    }

    /// One node's full table (for inspection / the quickstart example).
    pub fn table(&self, node: NodeId) -> &[TableEntry] {
        &self.tables[node]
    }

    /// Resolve the node sequence from `source` to `dest` by recursively
    /// expanding waypoints, or `None` when unreachable.
    pub fn path(&self, source: NodeId, dest: NodeId) -> Option<Vec<NodeId>> {
        if source == dest {
            return Some(vec![source]);
        }
        if !self.tables[source][dest].cost.is_finite() {
            return None;
        }
        let mut path = vec![source];
        let budget = self.tables.len() * self.tables.len();
        self.expand(source, dest, &mut path, budget)?;
        Some(path)
    }

    /// Append the nodes after `source` on the route to `dest`.
    /// Returns the remaining recursion budget, or `None` on a corrupt table.
    fn expand(
        &self,
        source: NodeId,
        dest: NodeId,
        path: &mut Vec<NodeId>,
        budget: usize,
    ) -> Option<usize> {
        if budget == 0 {
            return None;
        }
        let via = self.tables[source][dest].via?;
        if via == dest {
            // Direct entry from INITIALIZE: dest is adjacent.
            path.push(dest);
            return Some(budget - 1);
        }
        // Route source -> via -> dest; the second leg follows via's table.
        let budget = self.expand(source, via, path, budget - 1)?;
        self.expand(via, dest, path, budget)
    }

    /// Full [`Route`] (path + cost + η product) from `source` to `dest`.
    pub fn route(&self, graph: &Graph, source: NodeId, dest: NodeId) -> Option<Route> {
        let nodes = self.path(source, dest)?;
        crate::extract::accumulate_route(nodes, |u, v| graph.eta(u, v), self.metric)
    }

    /// The metric the tables were built with.
    pub fn metric(&self) -> RouteMetric {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::bellman_ford_all;
    use crate::dijkstra::dijkstra_all;

    fn sample() -> Graph {
        let mut g = Graph::with_nodes(6);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 2, 0.8);
        g.set_edge(2, 3, 0.95);
        g.set_edge(0, 4, 0.7);
        g.set_edge(4, 3, 0.7);
        g.set_edge(1, 5, 0.99);
        g
    }

    #[test]
    fn self_cost_is_zero() {
        let r = DistanceVectorRouter::build(&sample(), RouteMetric::PaperInverseEta);
        for i in 0..6 {
            assert_eq!(r.cost(i, i), 0.0);
            assert_eq!(r.path(i, i), Some(vec![i]));
        }
    }

    #[test]
    fn adjacent_cost_matches_metric() {
        let m = RouteMetric::PaperInverseEta;
        let r = DistanceVectorRouter::build(&sample(), m);
        assert!((r.cost(0, 1) - m.edge_cost(0.9)).abs() < 1e-12);
    }

    #[test]
    fn converges_to_classic_bellman_ford() {
        let g = sample();
        for metric in [
            RouteMetric::PaperInverseEta,
            RouteMetric::NegLogEta,
            RouteMetric::HopCount,
        ] {
            let dv = DistanceVectorRouter::build(&g, metric);
            for s in 0..6 {
                let bf = bellman_ford_all(&g, s, metric);
                let dj = dijkstra_all(&g, s, metric);
                for d in 0..6 {
                    assert!(
                        (dv.cost(s, d) - bf.cost[d]).abs() < 1e-9,
                        "{metric:?} {s}->{d}: dv {} bf {}",
                        dv.cost(s, d),
                        bf.cost[d]
                    );
                    assert!((dv.cost(s, d) - dj.cost[d]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn path_cost_consistency() {
        let g = sample();
        let m = RouteMetric::PaperInverseEta;
        let dv = DistanceVectorRouter::build(&g, m);
        for s in 0..6 {
            for d in 0..6 {
                let route = dv.route(&g, s, d).expect("connected graph");
                assert!(
                    (route.cost - dv.cost(s, d)).abs() < 1e-9,
                    "{s}->{d}: extracted {} table {}",
                    route.cost,
                    dv.cost(s, d)
                );
                // Path endpoints are right and edges exist.
                assert_eq!(*route.nodes.first().unwrap(), s);
                assert_eq!(*route.nodes.last().unwrap(), d);
                for w in route.nodes.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = sample();
        let iso = g.add_node();
        let dv = DistanceVectorRouter::build(&g, RouteMetric::PaperInverseEta);
        assert!(dv.cost(0, iso).is_infinite());
        assert!(dv.path(0, iso).is_none());
        assert!(dv.route(&g, 0, iso).is_none());
    }

    #[test]
    fn waypoint_expansion_handles_multi_hop() {
        // A pure chain forces the via chain to be non-trivial.
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.set_edge(i, i + 1, 0.9);
        }
        let dv = DistanceVectorRouter::build(&g, RouteMetric::PaperInverseEta);
        assert_eq!(dv.path(0, 4), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn tables_expose_entries() {
        let dv = DistanceVectorRouter::build(&sample(), RouteMetric::PaperInverseEta);
        let t = dv.table(0);
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].via, Some(0));
        assert_eq!(t[1].via, Some(1), "adjacent destination routes directly");
        assert_eq!(dv.metric(), RouteMetric::PaperInverseEta);
    }

    #[test]
    fn random_graph_equivalence() {
        // Deterministic pseudo-random graph, 12 nodes, ~55% edge density.
        let n = 12;
        let mut g = Graph::with_nodes(n);
        let mut seed = 42_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for u in 0..n {
            for v in (u + 1)..n {
                if next() < 0.55 {
                    g.set_edge(u, v, 0.2 + 0.8 * next());
                }
            }
        }
        let m = RouteMetric::PaperInverseEta;
        let dv = DistanceVectorRouter::build(&g, m);
        for s in 0..n {
            let bf = bellman_ford_all(&g, s, m);
            for d in 0..n {
                let (a, b) = (dv.cost(s, d), bf.cost[d]);
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-9, "{s}->{d}: {a} vs {b}");
                }
            }
        }
    }
}
