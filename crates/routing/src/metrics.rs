//! Routing cost metrics.
//!
//! The paper routes on the additive cost `1/(η + ε)` per link, with a small
//! ε guarding against division by zero. That cost prefers high-η links but
//! does **not** maximize the end-to-end transmissivity product (which is
//! what fidelity actually depends on through AD-channel composition) — the
//! max-product metric `−ln η` does. Both are provided, plus hop count;
//! ablation A1 measures the gap.

use serde::{Deserialize, Serialize};

/// The paper's ε in `1/(η + ε)`.
pub const PAPER_EPSILON: f64 = 1e-9;

/// A per-link cost function over transmissivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouteMetric {
    /// The paper's metric: `cost = 1/(η + ε)` (additive).
    #[default]
    PaperInverseEta,
    /// Max-product metric: `cost = −ln(η)`; minimizing the sum maximizes
    /// `Π η`, i.e. end-to-end fidelity.
    NegLogEta,
    /// Plain hop count: every link costs 1.
    HopCount,
}

impl RouteMetric {
    /// Cost of one link of transmissivity `eta`.
    pub fn edge_cost(&self, eta: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&eta));
        match self {
            RouteMetric::PaperInverseEta => 1.0 / (eta + PAPER_EPSILON),
            // Clamp so η = 0 yields a huge-but-finite cost rather than ∞
            // (mirrors the role of ε in the paper's metric).
            RouteMetric::NegLogEta => -(eta.max(1e-12)).ln(),
            RouteMetric::HopCount => 1.0,
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RouteMetric::PaperInverseEta => "1/(eta+eps) (paper)",
            RouteMetric::NegLogEta => "-ln(eta) (max-product)",
            RouteMetric::HopCount => "hop count",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_metric_values() {
        let m = RouteMetric::PaperInverseEta;
        assert!((m.edge_cost(1.0) - 1.0).abs() < 1e-6);
        assert!((m.edge_cost(0.5) - 2.0).abs() < 1e-6);
        // η = 0 guarded by ε.
        assert!(m.edge_cost(0.0).is_finite());
        assert!(m.edge_cost(0.0) > 1e8);
    }

    #[test]
    fn metrics_decrease_with_eta() {
        for m in [RouteMetric::PaperInverseEta, RouteMetric::NegLogEta] {
            let mut prev = f64::INFINITY;
            for eta in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
                let c = m.edge_cost(eta);
                assert!(c < prev, "{m:?} at {eta}");
                assert!(c >= 0.0);
                prev = c;
            }
        }
    }

    #[test]
    fn neg_log_is_additive_over_products() {
        let m = RouteMetric::NegLogEta;
        let a = 0.8;
        let b = 0.6;
        assert!((m.edge_cost(a) + m.edge_cost(b) - m.edge_cost(a * b)).abs() < 1e-12);
    }

    #[test]
    fn hop_count_ignores_eta() {
        let m = RouteMetric::HopCount;
        assert_eq!(m.edge_cost(0.1), 1.0);
        assert_eq!(m.edge_cost(0.99), 1.0);
    }

    #[test]
    fn the_metrics_can_disagree() {
        // Two links at 0.71 (product 0.5041) vs one at 0.5:
        // - paper metric: 2/0.71 = 2.82 > 1/0.5 = 2.0 -> picks the single weak hop;
        // - max-product: prefers the two-hop path (0.5041 > 0.5).
        let paper = RouteMetric::PaperInverseEta;
        let neglog = RouteMetric::NegLogEta;
        let two_hops_paper = 2.0 * paper.edge_cost(0.71);
        let one_hop_paper = paper.edge_cost(0.5);
        assert!(two_hops_paper > one_hop_paper);
        let two_hops_log = 2.0 * neglog.edge_cost(0.71);
        let one_hop_log = neglog.edge_cost(0.5);
        assert!(two_hops_log < one_hop_log);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            RouteMetric::PaperInverseEta.label(),
            RouteMetric::NegLogEta.label(),
            RouteMetric::HopCount.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
