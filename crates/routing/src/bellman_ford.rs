//! Classic single-source Bellman–Ford over the chosen metric.
//!
//! This is the textbook edge-relaxation formulation that the paper's
//! distance-vector Algorithm 1 converges to (equivalence is tested in
//! [`crate::table`]). All metrics in this workspace are non-negative, so no
//! negative-cycle handling is needed; we still detect and report the
//! impossible case defensively.

use crate::graph::{Graph, NodeId};
use crate::metrics::RouteMetric;
use crate::Route;

/// Shortest path from `source` to `dest` under `metric`, or `None` when no
/// path exists. Out-of-range endpoints are unroutable, not a panic — the
/// request boundary (`qntn-serve`) feeds untrusted ids straight in here.
///
/// ```
/// use qntn_routing::{bellman_ford, Graph, RouteMetric};
///
/// let mut g = Graph::with_nodes(3);
/// g.set_edge(0, 1, 0.9);
/// g.set_edge(1, 2, 0.8);
/// let route = bellman_ford(&g, 0, 2, RouteMetric::PaperInverseEta).unwrap();
/// assert_eq!(route.nodes, vec![0, 1, 2]);
/// assert!((route.eta_product - 0.72).abs() < 1e-12);
/// assert!(bellman_ford(&g, 0, 99, RouteMetric::PaperInverseEta).is_none());
/// ```
pub fn bellman_ford(
    graph: &Graph,
    source: NodeId,
    dest: NodeId,
    metric: RouteMetric,
) -> Option<Route> {
    if source >= graph.node_count() || dest >= graph.node_count() {
        return None;
    }
    let table = bellman_ford_all(graph, source, metric);
    extract_route(graph, &table, source, dest, metric)
}

/// Per-destination (cost, predecessor) table from one source.
#[derive(Debug, Clone, Default)]
pub struct SsspTable {
    pub cost: Vec<f64>,
    pub pred: Vec<Option<NodeId>>,
}

impl SsspTable {
    /// Size to `n` nodes with every cost at infinity and no predecessors,
    /// reusing existing storage.
    pub fn reset(&mut self, n: usize) {
        self.cost.clear();
        self.cost.resize(n, f64::INFINITY);
        self.pred.clear();
        self.pred.resize(n, None);
    }
}

/// Full single-source run: relax all edges `N−1` times.
pub fn bellman_ford_all(graph: &Graph, source: NodeId, metric: RouteMetric) -> SsspTable {
    let mut table = SsspTable::default();
    bellman_ford_all_into(graph, source, metric, &mut table);
    table
}

/// [`bellman_ford_all`] into caller-provided scratch — the per-worker reuse
/// path of the sweep engine. Produces exactly the same table.
pub fn bellman_ford_all_into(
    graph: &Graph,
    source: NodeId,
    metric: RouteMetric,
    table: &mut SsspTable,
) {
    let n = graph.node_count();
    assert!(source < n, "source out of range");
    table.reset(n);
    let (cost, pred) = (&mut table.cost, &mut table.pred);
    cost[source] = 0.0;

    for _round in 0..n.saturating_sub(1) {
        let mut changed = false;
        for (u, v, eta) in graph.edges() {
            let w = metric.edge_cost(eta);
            if cost[u] + w < cost[v] {
                cost[v] = cost[u] + w;
                pred[v] = Some(u);
                changed = true;
            }
            if cost[v] + w < cost[u] {
                cost[u] = cost[v] + w;
                pred[u] = Some(v);
                changed = true;
            }
        }
        if !changed {
            break; // early exit: already converged
        }
    }
}

/// [`bellman_ford`] using caller-provided scratch for the SSSP table.
/// Identical result; no per-call table allocation.
pub fn bellman_ford_into(
    graph: &Graph,
    source: NodeId,
    dest: NodeId,
    metric: RouteMetric,
    scratch: &mut SsspTable,
) -> Option<Route> {
    if source >= graph.node_count() || dest >= graph.node_count() {
        return None;
    }
    bellman_ford_all_into(graph, source, metric, scratch);
    extract_route(graph, scratch, source, dest, metric)
}

/// Rebuild the route to `dest` from a single-source table computed from
/// `source` — the many-destination amortization path: one
/// [`bellman_ford_all_into`] (or [`crate::dijkstra::dijkstra_all`]) per
/// distinct source, then one cheap extraction per destination. Identical
/// to [`bellman_ford`] for every `(source, dest)` pair, including `None`
/// on out-of-range or unreachable endpoints.
pub fn route_from_table(
    graph: &Graph,
    table: &SsspTable,
    source: NodeId,
    dest: NodeId,
    metric: RouteMetric,
) -> Option<Route> {
    extract_route(graph, table, source, dest, metric)
}

/// Rebuild the route from a predecessor table.
pub(crate) fn extract_route(
    graph: &Graph,
    table: &SsspTable,
    source: NodeId,
    dest: NodeId,
    metric: RouteMetric,
) -> Option<Route> {
    // Out-of-range endpoints are simply unroutable: the table has no row
    // for them (`dest` used to be indexed unchecked here — a service
    // killer once request ids arrive from untrusted input).
    if source >= table.cost.len() || dest >= table.cost.len() {
        return None;
    }
    if !table.cost[dest].is_finite() {
        return None;
    }
    let nodes = crate::extract::walk_predecessors(&table.pred, source, dest, graph.node_count())?;
    // Predecessor edges come from relaxations over `graph`, so the eta
    // lookup can only fail on a corrupt table — treat as unroutable.
    crate::extract::accumulate_route(nodes, |u, v| graph.eta(u, v), metric)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 —0.9— 1 —0.9— 2, plus a weak direct shortcut 0 —0.5— 2.
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 2, 0.9);
        g.set_edge(0, 2, 0.5);
        g.set_edge(2, 3, 0.95);
        g
    }

    #[test]
    fn direct_single_hop() {
        let g = diamond();
        let r = bellman_ford(&g, 0, 1, RouteMetric::PaperInverseEta).unwrap();
        assert_eq!(r.nodes, vec![0, 1]);
        assert_eq!(r.hops(), 1);
        assert!((r.eta_product - 0.9).abs() < 1e-12);
    }

    #[test]
    fn source_equals_dest() {
        let g = diamond();
        let r = bellman_ford(&g, 2, 2, RouteMetric::PaperInverseEta).unwrap();
        assert_eq!(r.nodes, vec![2]);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.eta_product, 1.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn paper_metric_prefers_strong_two_hop_over_weak_direct() {
        // cost(0-1-2) = 2/0.9 = 2.22 < cost(0-2) = 1/0.5 = 2.0? No: 2.22 > 2.
        // The paper metric actually picks the weak direct link here.
        let g = diamond();
        let r = bellman_ford(&g, 0, 2, RouteMetric::PaperInverseEta).unwrap();
        assert_eq!(r.nodes, vec![0, 2], "1/(η+ε) is hop-biased");
        // The max-product metric picks the high-fidelity detour instead.
        let r2 = bellman_ford(&g, 0, 2, RouteMetric::NegLogEta).unwrap();
        assert_eq!(r2.nodes, vec![0, 1, 2]);
        assert!(r2.eta_product > r.eta_product);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = diamond();
        g.add_node(); // node 4, isolated
        assert!(bellman_ford(&g, 0, 4, RouteMetric::PaperInverseEta).is_none());
    }

    #[test]
    fn out_of_range_endpoints_return_none() {
        // Regression: `extract_route` used to index `cost[dest]` unchecked,
        // so an out-of-range destination was a panic, not an unroutable
        // request. Both endpoints, both entry points, never a panic.
        let g = diamond();
        let n = g.node_count();
        let metric = RouteMetric::PaperInverseEta;
        let mut scratch = SsspTable::default();
        for (src, dst) in [(0, n), (n, 0), (n, n), (0, usize::MAX), (usize::MAX, 2)] {
            assert!(bellman_ford(&g, src, dst, metric).is_none(), "{src}->{dst}");
            assert!(
                bellman_ford_into(&g, src, dst, metric, &mut scratch).is_none(),
                "{src}->{dst} (scratch)"
            );
        }
        // An empty graph is all out-of-range.
        let empty = Graph::default();
        assert!(bellman_ford(&empty, 0, 0, metric).is_none());
    }

    #[test]
    fn route_from_table_matches_per_pair_bellman_ford() {
        let g = diamond();
        for metric in [RouteMetric::PaperInverseEta, RouteMetric::NegLogEta] {
            for src in 0..4 {
                let table = bellman_ford_all(&g, src, metric);
                for dst in 0..6 {
                    assert_eq!(
                        route_from_table(&g, &table, src, dst, metric),
                        bellman_ford(&g, src, dst, metric),
                        "{src}->{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_cost_matches_table_cost() {
        let g = diamond();
        let table = bellman_ford_all(&g, 0, RouteMetric::PaperInverseEta);
        for dest in 0..4 {
            let r = bellman_ford(&g, 0, dest, RouteMetric::PaperInverseEta).unwrap();
            assert!((r.cost - table.cost[dest]).abs() < 1e-9, "dest {dest}");
        }
    }

    #[test]
    fn longer_chain() {
        let mut g = Graph::with_nodes(6);
        for i in 0..5 {
            g.set_edge(i, i + 1, 0.9);
        }
        let r = bellman_ford(&g, 0, 5, RouteMetric::PaperInverseEta).unwrap();
        assert_eq!(r.hops(), 5);
        assert!((r.eta_product - 0.9_f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_matches_allocating_path() {
        let g = diamond();
        let mut scratch = SsspTable::default();
        for metric in [RouteMetric::PaperInverseEta, RouteMetric::NegLogEta] {
            for src in 0..4 {
                let fresh = bellman_ford_all(&g, src, metric);
                bellman_ford_all_into(&g, src, metric, &mut scratch);
                assert_eq!(scratch.cost, fresh.cost, "src {src}");
                assert_eq!(scratch.pred, fresh.pred, "src {src}");
                for dst in 0..4 {
                    let a = bellman_ford(&g, src, dst, metric);
                    let b = bellman_ford_into(&g, src, dst, metric, &mut scratch);
                    assert_eq!(a, b, "{src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_different_graph_sizes() {
        // A larger stale table must not leak state into a smaller graph.
        let mut scratch = SsspTable::default();
        let mut big = Graph::with_nodes(10);
        for i in 0..9 {
            big.set_edge(i, i + 1, 0.9);
        }
        bellman_ford_all_into(&big, 0, RouteMetric::PaperInverseEta, &mut scratch);
        let small = diamond();
        bellman_ford_all_into(&small, 0, RouteMetric::PaperInverseEta, &mut scratch);
        let fresh = bellman_ford_all(&small, 0, RouteMetric::PaperInverseEta);
        assert_eq!(scratch.cost, fresh.cost);
        assert_eq!(scratch.pred, fresh.pred);
    }

    #[test]
    fn hop_count_metric_minimizes_hops() {
        let mut g = Graph::with_nodes(4);
        g.set_edge(0, 1, 0.99);
        g.set_edge(1, 2, 0.99);
        g.set_edge(2, 3, 0.99);
        g.set_edge(0, 3, 0.1);
        let r = bellman_ford(&g, 0, 3, RouteMetric::HopCount).unwrap();
        assert_eq!(r.nodes, vec![0, 3]);
    }
}
