//! Binary-heap Dijkstra — the cross-check baseline.
//!
//! Every metric in the workspace is non-negative, so Dijkstra and
//! Bellman–Ford must return equal-cost routes; the test suites (including a
//! property test over random graphs) hold them to that.

use crate::bellman_ford::{extract_route, SsspTable};
use crate::graph::{Graph, NodeId};
use crate::metrics::RouteMetric;
use crate::Route;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry ordered by cost.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap.
        other.cost.total_cmp(&self.cost)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path from `source` to `dest` under `metric`, or `None`.
/// Out-of-range endpoints are unroutable (`None`), matching
/// [`crate::bellman_ford::bellman_ford`] — never a panic.
pub fn dijkstra(graph: &Graph, source: NodeId, dest: NodeId, metric: RouteMetric) -> Option<Route> {
    if source >= graph.node_count() || dest >= graph.node_count() {
        return None;
    }
    let table = dijkstra_all(graph, source, metric);
    extract_route(graph, &table, source, dest, metric)
}

/// Full single-source Dijkstra producing the same table shape as
/// [`crate::bellman_ford::bellman_ford_all`].
pub fn dijkstra_all(graph: &Graph, source: NodeId, metric: RouteMetric) -> SsspTable {
    let n = graph.node_count();
    assert!(source < n, "source out of range");
    let mut cost = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    cost[source] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost: c, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for adj in graph.neighbors(u) {
            let w = metric.edge_cost(adj.eta);
            let next = c + w;
            if next < cost[adj.to] {
                cost[adj.to] = next;
                pred[adj.to] = Some(u);
                heap.push(HeapEntry {
                    cost: next,
                    node: adj.to,
                });
            }
        }
    }
    SsspTable { cost, pred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::bellman_ford;

    fn grid(n: usize, eta: impl Fn(usize, usize) -> f64) -> Graph {
        // n×n grid graph with deterministic transmissivities.
        let mut g = Graph::with_nodes(n * n);
        for r in 0..n {
            for c in 0..n {
                let id = r * n + c;
                if c + 1 < n {
                    g.set_edge(id, id + 1, eta(id, id + 1));
                }
                if r + 1 < n {
                    g.set_edge(id, id + n, eta(id, id + n));
                }
            }
        }
        g
    }

    #[test]
    fn single_edge() {
        let mut g = Graph::with_nodes(2);
        g.set_edge(0, 1, 0.6);
        let r = dijkstra(&g, 0, 1, RouteMetric::PaperInverseEta).unwrap();
        assert_eq!(r.nodes, vec![0, 1]);
        assert!((r.eta_product - 0.6).abs() < 1e-12);
    }

    #[test]
    fn unreachable() {
        let g = Graph::with_nodes(3);
        assert!(dijkstra(&g, 0, 2, RouteMetric::PaperInverseEta).is_none());
    }

    #[test]
    fn out_of_range_endpoints_return_none() {
        // Regression: same service-killing panic class as Bellman–Ford —
        // untrusted request ids must be unroutable, never an index panic.
        let g = Graph::with_nodes(3);
        let metric = RouteMetric::PaperInverseEta;
        for (src, dst) in [(0, 3), (3, 0), (5, 5), (0, usize::MAX), (usize::MAX, 1)] {
            assert!(dijkstra(&g, src, dst, metric).is_none(), "{src}->{dst}");
        }
    }

    #[test]
    fn agrees_with_bellman_ford_on_grids() {
        // Deterministic pseudo-random edge weights on a 5×5 grid.
        let eta =
            |u: usize, v: usize| 0.3 + 0.69 * (((u * 7919 + v * 104729) % 1000) as f64 / 1000.0);
        let g = grid(5, eta);
        for (s, d) in [(0, 24), (3, 20), (12, 0), (7, 17)] {
            for metric in [
                RouteMetric::PaperInverseEta,
                RouteMetric::NegLogEta,
                RouteMetric::HopCount,
            ] {
                let a = dijkstra(&g, s, d, metric).unwrap();
                let b = bellman_ford(&g, s, d, metric).unwrap();
                assert!(
                    (a.cost - b.cost).abs() < 1e-9,
                    "{metric:?} {s}->{d}: dijkstra {} vs bf {}",
                    a.cost,
                    b.cost
                );
            }
        }
    }

    #[test]
    fn max_product_route_really_maximizes_eta() {
        // Exhaustively check on a small graph: the −ln η route's product is
        // the best over all simple paths.
        let mut g = Graph::with_nodes(4);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 3, 0.8);
        g.set_edge(0, 2, 0.95);
        g.set_edge(2, 3, 0.75);
        g.set_edge(1, 2, 0.99);
        let r = dijkstra(&g, 0, 3, RouteMetric::NegLogEta).unwrap();
        // Enumerate simple paths 0->3 by DFS.
        let mut best = 0.0_f64;
        let mut stack = vec![(vec![0usize], 1.0_f64)];
        while let Some((path, prod)) = stack.pop() {
            let last = *path.last().unwrap();
            if last == 3 {
                best = best.max(prod);
                continue;
            }
            for adj in g.neighbors(last) {
                if !path.contains(&adj.to) {
                    let mut p = path.clone();
                    p.push(adj.to);
                    stack.push((p, prod * adj.eta));
                }
            }
        }
        assert!(
            (r.eta_product - best).abs() < 1e-12,
            "{} vs {best}",
            r.eta_product
        );
    }

    #[test]
    fn heap_entry_ordering_is_min_first() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry { cost: 3.0, node: 0 });
        h.push(HeapEntry { cost: 1.0, node: 1 });
        h.push(HeapEntry { cost: 2.0, node: 2 });
        assert_eq!(h.pop().unwrap().node, 1);
        assert_eq!(h.pop().unwrap().node, 2);
        assert_eq!(h.pop().unwrap().node, 0);
    }
}
