//! Disjoint path sets — the survivability view of the network.
//!
//! The air-ground architecture routes *everything* through one HAP: a
//! single platform failure (or one cloud) severs the region. Two measures:
//!
//! - **edge-disjoint** paths ([`edge_disjoint_routes`]): no shared link —
//!   the right notion for link-level outages. Note it can still funnel
//!   every path through one relay node (the HAP star has many edge-disjoint
//!   inter-city paths, one per ground-station uplink).
//! - **vertex-disjoint** paths ([`vertex_disjoint_routes`]): no shared
//!   intermediate *node* — the platform-failure measure, and what
//!   [`survivability`] reports. The HAP star scores exactly 1.
//!
//! Both are computed greedily: repeatedly take the metric-shortest path and
//! delete its edges (resp. interior nodes). Greedy is a lower bound on the
//! max-flow optimum (tests exercise both the exact cases and the caveat).

use crate::dijkstra::dijkstra;
use crate::graph::{Graph, NodeId};
use crate::metrics::RouteMetric;
use crate::Route;

/// Up to `max_k` mutually edge-disjoint routes from `src` to `dst`, best
/// (by `metric`) first. Returns fewer when the graph runs out of capacity.
pub fn edge_disjoint_routes(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    metric: RouteMetric,
    max_k: usize,
) -> Vec<Route> {
    let mut work = graph.clone();
    let mut routes = Vec::new();
    while routes.len() < max_k {
        let Some(route) = dijkstra(&work, src, dst, metric) else {
            break;
        };
        if route.hops() == 0 {
            break; // src == dst: no meaningful disjoint set
        }
        for w in route.nodes.windows(2) {
            work.remove_edge(w[0], w[1]);
        }
        routes.push(route);
    }
    routes
}

/// Up to `max_k` mutually vertex-disjoint routes (no shared intermediate
/// node), best first. The platform-failure redundancy measure.
pub fn vertex_disjoint_routes(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    metric: RouteMetric,
    max_k: usize,
) -> Vec<Route> {
    let mut work = graph.clone();
    let mut routes = Vec::new();
    while routes.len() < max_k {
        let Some(route) = dijkstra(&work, src, dst, metric) else {
            break;
        };
        if route.hops() == 0 {
            break;
        }
        // Delete every interior node (all its edges) plus the endpoints'
        // used edges, so later paths share nothing but src/dst.
        for w in route.nodes.windows(2) {
            work.remove_edge(w[0], w[1]);
        }
        for &n in &route.nodes[1..route.nodes.len() - 1] {
            let neighbours: Vec<NodeId> = work.neighbors(n).iter().map(|a| a.to).collect();
            for m in neighbours {
                work.remove_edge(n, m);
            }
        }
        routes.push(route);
    }
    routes
}

/// The number of vertex-disjoint routes between `src` and `dst` found by
/// the greedy construction — a lower bound on the true vertex connectivity,
/// and the "how many platform failures can this pair survive" figure.
///
/// ```
/// use qntn_routing::{survivability, Graph};
///
/// // A hub-and-spoke network (the air-ground shape): leaves have exactly
/// // one vertex-disjoint path between them.
/// let mut g = Graph::with_nodes(3);
/// g.set_edge(0, 1, 0.9); // hub - leaf
/// g.set_edge(0, 2, 0.9); // hub - leaf
/// assert_eq!(survivability(&g, 1, 2), 1);
/// ```
pub fn survivability(graph: &Graph, src: NodeId, dst: NodeId) -> usize {
    vertex_disjoint_routes(graph, src, dst, RouteMetric::HopCount, usize::MAX).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint 2-hop routes between 0 and 3 (a diamond).
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 3, 0.9);
        g.set_edge(0, 2, 0.8);
        g.set_edge(2, 3, 0.8);
        g
    }

    #[test]
    fn diamond_has_two_disjoint_routes() {
        let g = diamond();
        let routes = edge_disjoint_routes(&g, 0, 3, RouteMetric::PaperInverseEta, 10);
        assert_eq!(routes.len(), 2);
        // Best first.
        assert!(routes[0].cost <= routes[1].cost);
        // Disjointness: no shared undirected edge.
        let edges = |r: &Route| -> Vec<(usize, usize)> {
            r.nodes
                .windows(2)
                .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
                .collect()
        };
        let e0 = edges(&routes[0]);
        for e in edges(&routes[1]) {
            assert!(!e0.contains(&e), "shared edge {e:?}");
        }
        assert_eq!(survivability(&g, 0, 3), 2);
    }

    #[test]
    fn star_hub_is_a_single_point_of_failure() {
        // Leaves of a star have exactly one vertex-disjoint route between
        // them — the air-ground architecture's shape.
        let mut g = Graph::with_nodes(4);
        for leaf in 1..4 {
            g.set_edge(0, leaf, 0.9);
        }
        assert_eq!(survivability(&g, 1, 2), 1);
        let routes = vertex_disjoint_routes(&g, 1, 2, RouteMetric::PaperInverseEta, 5);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].nodes, vec![1, 0, 2]);
    }

    #[test]
    fn edge_disjoint_can_exceed_vertex_disjoint_through_a_hub() {
        // The air-ground subtlety this module exists to expose: add fiber
        // mates to the leaves and the hub admits many *edge*-disjoint
        // routes, but still exactly one *vertex*-disjoint route.
        let mut g = Graph::with_nodes(6);
        // Hub 0; city A = {1, 2} fibered; city B = {3, 4} fibered; 5 spare.
        g.set_edge(1, 2, 0.99);
        g.set_edge(3, 4, 0.99);
        for n in 1..5 {
            g.set_edge(0, n, 0.9);
        }
        let edge_k = edge_disjoint_routes(&g, 1, 3, RouteMetric::HopCount, 10).len();
        assert!(edge_k >= 2, "{edge_k}");
        assert_eq!(survivability(&g, 1, 3), 1, "all paths share the hub node");
    }

    #[test]
    fn disconnected_pair_has_zero() {
        let mut g = diamond();
        let iso = g.add_node();
        assert_eq!(survivability(&g, 0, iso), 0);
        assert!(edge_disjoint_routes(&g, 0, iso, RouteMetric::HopCount, 3).is_empty());
    }

    #[test]
    fn max_k_truncates() {
        let g = diamond();
        let routes = edge_disjoint_routes(&g, 0, 3, RouteMetric::HopCount, 1);
        assert_eq!(routes.len(), 1);
    }

    #[test]
    fn parallel_relays_count() {
        // k relays between two LAN gateways -> k vertex-disjoint routes:
        // the space-ground architecture when k satellites are visible.
        for k in 1..=4 {
            let mut g = Graph::with_nodes(2 + k);
            for relay in 0..k {
                g.set_edge(0, 2 + relay, 0.8);
                g.set_edge(1, 2 + relay, 0.8);
            }
            assert_eq!(survivability(&g, 0, 1), k, "k = {k}");
            assert_eq!(
                vertex_disjoint_routes(&g, 0, 1, RouteMetric::HopCount, 10).len(),
                k
            );
        }
    }

    #[test]
    fn direct_edge_plus_detour() {
        let mut g = Graph::with_nodes(3);
        g.set_edge(0, 1, 0.9);
        g.set_edge(0, 2, 0.9);
        g.set_edge(2, 1, 0.9);
        assert_eq!(survivability(&g, 0, 1), 2);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_never_overcounts() {
        // A known trap graph: the shortest path uses the only bridge both
        // disjoint paths would need split between them. Greedy may find 1
        // where max-flow finds 2 — assert the lower-bound property only.
        let mut g = Graph::with_nodes(6);
        // Two outer paths 0-1-3-5 and 0-2-4-5, plus a middle shortcut
        // 0-1-4-5 competing for edges.
        g.set_edge(0, 1, 0.99);
        g.set_edge(1, 3, 0.5);
        g.set_edge(3, 5, 0.99);
        g.set_edge(0, 2, 0.5);
        g.set_edge(2, 4, 0.5);
        g.set_edge(4, 5, 0.99);
        g.set_edge(1, 4, 0.99);
        let found = survivability(&g, 0, 5);
        assert!((1..=2).contains(&found), "{found}");
    }
}
