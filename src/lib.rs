//! # QNTN — a regional quantum network for Tennessee
//!
//! Umbrella crate for the QNTN reproduction. Re-exports every workspace
//! crate under a stable prefix so examples and downstream users can write
//! `use qntn::core::...` etc.
//!
//! The system reproduces the SC 2024 paper *"QNTN: Establishing a Regional
//! Quantum Network in Tennessee"*: it compares a **space–ground**
//! architecture (a LEO Walker-Delta constellation of 6–108 satellites) with
//! an **air–ground** architecture (a single high-altitude platform at 30 km)
//! for distributing entanglement between three metropolitan quantum LANs
//! (Tennessee Tech, ORNL, and the EPB network in Chattanooga).
//!
//! ## Crate map
//!
//! - [`common`] — typed indices ([`common::HostId`], [`common::SatId`],
//!   [`common::StepId`]), the workspace error type ([`common::QntnError`]),
//!   and the resilience primitives: checksummed checkpoint frames with
//!   atomic writes ([`common::frame`]), a bit-exact binary codec
//!   ([`common::codec`]), and cooperative cancellation/deadlines
//!   ([`common::RunControl`]).
//! - [`geo`] — geodesy: WGS-84, ECEF/ECI/ENU frames, elevation & slant range.
//! - [`orbit`] — Keplerian propagation, Walker-Delta constellations,
//!   ephemerides ("movement sheets"), visibility passes.
//! - [`quantum`] — density matrices, Kraus channels, entanglement fidelity.
//! - [`channel`] — fiber and free-space-optical transmissivity models.
//! - [`routing`] — the paper's Bellman–Ford entanglement routing + baselines.
//! - [`net`] — the discrete-time quantum network simulator, including the
//!   resilient sweep runtime ([`net::runtime`]): checkpoint/resume at chunk
//!   granularity with panic isolation per step.
//! - [`serve`] — the batch entanglement-request service: validated ingest
//!   of untrusted request streams, seeded workload generators, and
//!   amortized serving over the sweep timeline (one SSSP per distinct
//!   source per step), bit-identical to the naive per-request path.
//! - [`core`] — the QNTN scenario, both architectures, and every experiment.
//!
//! ## Quickstart
//!
//! ```
//! use qntn::core::scenario::Qntn;
//! use qntn::core::architecture::AirGround;
//! use qntn::core::experiments::fidelity::FidelityExperiment;
//!
//! let scenario = Qntn::standard();
//! let arch = AirGround::standard(&scenario);
//! let report = FidelityExperiment::quick().run_air_ground(&arch);
//! assert!(report.mean_fidelity > 0.9);
//! ```

pub use qntn_channel as channel;
pub use qntn_common as common;
pub use qntn_core as core;
pub use qntn_geo as geo;
pub use qntn_net as net;
pub use qntn_orbit as orbit;
pub use qntn_quantum as quantum;
pub use qntn_routing as routing;
pub use qntn_serve as serve;
