//! Cross-crate invariants that the reproduction's fast paths rely on, and
//! end-to-end checks of the paper's qualitative claims.

use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::scenario::Qntn;
use qntn::net::linkeval::{LinkEvaluator, SimConfig, PAPER_THRESHOLD};
use qntn::net::{entanglement, Host};
use qntn::orbit::PerturbationModel;
use qntn::routing::{dijkstra, DistanceVectorRouter, RouteMetric};

/// The single-satellite-relay assumption behind the Fig. 6 fast path:
/// inter-satellite links only reach the 0.7 threshold inside the vacuum
/// diffraction budget (~1150 km with 1.2 m apertures), which happens only
/// briefly around plane crossings (e.g. Table II's "twins" (RAAN 0, ν 0)
/// and (RAAN 180, ν 180) share a node point). Footprints of satellites
/// that close overlap almost completely, so qualifying ISLs add no LAN
/// connectivity — validated against the full simulator in
/// `fast_coverage_path_matches_full_simulator`.
#[test]
fn qualifying_isls_are_only_near_coincident_pairs() {
    // The vacuum diffraction budget: the longest range at which an ISL can
    // still qualify, computed from the channel model itself.
    let params = qntn::channel::params::FsoParams::ideal();
    let mut isl_reach_m = 0.0f64;
    for km in 1..4000 {
        let geom = qntn::channel::fso::FsoGeometry::downlink(
            1.2,
            500_000.0,
            1.2,
            500_000.0,
            km as f64 * 1000.0,
            0.0,
        );
        if qntn::channel::fso::FsoChannel::new(geom, params).transmissivity() >= PAPER_THRESHOLD {
            isl_reach_m = km as f64 * 1000.0;
        }
    }
    assert!(
        (900_000.0..1_500_000.0).contains(&isl_reach_m),
        "vacuum ISL reach {isl_reach_m}"
    );
    let ephemerides = SpaceGround::ephemerides(36, PerturbationModel::TwoBody);
    let config = SimConfig {
        isl_max_range_m: 1.0e7,
        ..SimConfig::default()
    };
    let evaluator = LinkEvaluator::new(config);
    let sats: Vec<Host> = ephemerides
        .into_iter()
        .enumerate()
        .map(|(i, e)| Host::satellite(format!("S{i}"), e, 1.2))
        .collect();
    let mut qualifying = 0usize;
    let mut evaluated = 0usize;
    for step in (0..2880).step_by(48) {
        for i in 0..sats.len() {
            for j in (i + 1)..sats.len() {
                if let Some(eta) = evaluator.fso_eta(&sats[i], &sats[j], step) {
                    evaluated += 1;
                    if eta >= PAPER_THRESHOLD {
                        qualifying += 1;
                        let range = sats[i].ecef_at(step).distance(sats[j].ecef_at(step));
                        assert!(
                            range <= isl_reach_m + 1_000.0,
                            "ISL {i}-{j} qualified at {:.0} km, beyond the {:.0} km vacuum budget",
                            range / 1000.0,
                            isl_reach_m / 1000.0
                        );
                    }
                }
            }
        }
    }
    assert!(
        evaluated > 0,
        "no ISL was ever within the evaluation cutoff"
    );
    let _ = qualifying; // may be zero at this sampling; the bound above is the claim
}

/// The Fig. 6 fast path (LAN-visibility cube + union-find) agrees with the
/// full simulator graph — including ISL edges — across sampled steps of a
/// constellation that *contains* coincident twins.
#[test]
fn fast_coverage_path_matches_full_simulator() {
    use qntn::core::experiments::visibility::LanVisibility;
    let scenario = Qntn::standard();
    let config = SimConfig::default();
    let eph = SpaceGround::ephemerides(24, PerturbationModel::TwoBody);
    let cube = LanVisibility::compute(&scenario, config, &eph);
    let flags = cube.coverage_flags(24);
    let arch = SpaceGround::new(&scenario, 24, config, PerturbationModel::TwoBody);
    let mut disagreements = 0;
    let steps: Vec<usize> = (0..2880).step_by(96).collect();
    for &step in &steps {
        let full = arch
            .sim()
            .lans_interconnected(&arch.sim().active_graph_at(step));
        if full != flags[step] {
            disagreements += 1;
        }
    }
    assert_eq!(
        disagreements,
        0,
        "fast path disagreed with the full simulator on {disagreements}/{} steps",
        steps.len()
    );
}

/// The paper's Algorithm 1 (distance-vector tables) and the Dijkstra
/// baseline agree on a *live* simulator graph, not just synthetic ones.
#[test]
fn algorithm1_matches_dijkstra_on_live_graph() {
    let scenario = Qntn::standard();
    let air = AirGround::new(&scenario, SimConfig::default());
    let graph = air.sim().active_graph_at(100);
    let metric = RouteMetric::PaperInverseEta;
    let dv = DistanceVectorRouter::build(&graph, metric);
    for src in [0, 5, 16] {
        for dst in [4, 15, 30, 31] {
            let a = dv.cost(src, dst);
            let b = dijkstra(&graph, src, dst, metric).map_or(f64::INFINITY, |r| r.cost);
            assert!(
                (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                "{src}->{dst}: dv {a} vs dijkstra {b}"
            );
        }
    }
}

/// Fidelity conventions bracket correctly on live distributions:
/// Jozsa ≤ end-to-end sqrt ≤ per-link mean, all in [0.5, 1].
#[test]
fn fidelity_conventions_bracket() {
    let scenario = Qntn::standard();
    let air = AirGround::new(&scenario, SimConfig::default());
    let graph = air.sim().active_graph_at(0);
    for (src, dst) in [(0usize, 16usize), (3, 30), (7, 1)] {
        let d = entanglement::distribute(&graph, src, dst, RouteMetric::PaperInverseEta)
            .expect("air-ground routes everything");
        assert!(d.fidelity_jozsa <= d.fidelity + 1e-12);
        assert!(d.fidelity <= d.mean_link_fidelity + 1e-12);
        assert!(d.fidelity >= 0.5 && d.mean_link_fidelity <= 1.0);
    }
}

/// The headline qualitative claim (Table III): air-ground dominates
/// space-ground on coverage, served requests and fidelity — under both
/// fidelity conventions.
#[test]
fn air_ground_dominates_space_ground() {
    let scenario = Qntn::standard();
    let config = SimConfig::default();
    let experiment = FidelityExperiment {
        sampled_steps: 10,
        requests_per_step: 30,
        ..FidelityExperiment::quick()
    };
    let air = FidelityExperiment::run_air_ground(&experiment, &AirGround::new(&scenario, config));
    let space = FidelityExperiment::run_space_ground(
        &experiment,
        &SpaceGround::new(&scenario, 36, config, PerturbationModel::TwoBody),
    );
    assert!(air.coverage_percent > space.coverage_percent);
    assert!(air.served_percent > space.served_percent);
    assert!(air.mean_fidelity > space.mean_fidelity);
    assert!(air.mean_link_fidelity > space.mean_link_fidelity);
}

/// Served percentage is at least the all-three-LAN coverage percentage:
/// a request only needs its *pair* of LANs connected (the reason the
/// paper's 57.75% served exceeds its 55.17% coverage).
#[test]
fn served_at_least_pairwise_coverage() {
    let scenario = Qntn::standard();
    let arch = SpaceGround::new(
        &scenario,
        36,
        SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let r = FidelityExperiment {
        sampled_steps: 30,
        requests_per_step: 30,
        ..FidelityExperiment::quick()
    }
    .run_space_ground(&arch);
    assert!(
        r.served_percent >= r.coverage_percent - 1e-9,
        "served {} < coverage {}",
        r.served_percent,
        r.coverage_percent
    );
}
