//! Full paper-workload reproduction tests.
//!
//! These pin the headline numbers of EXPERIMENTS.md at the paper's full
//! workload sizes. They take tens of seconds in debug builds, so they are
//! `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test full_reproduction -- --ignored
//! ```

use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::experiments::fig6::CoverageSweep;
use qntn::core::experiments::sweep::{ConstellationSweep, SweepSettings};
use qntn::core::scenario::Qntn;
use qntn::net::SimConfig;
use qntn::orbit::PerturbationModel;

/// Fig. 6 at 108 satellites: the calibrated coverage within a point of the
/// paper's 55.17 %.
#[test]
#[ignore = "full paper workload (~1 min in debug); run with --ignored"]
fn full_coverage_sweep_matches_paper() {
    let q = Qntn::standard();
    let sweep = CoverageSweep::run(&q, SimConfig::default(), &[108], PerturbationModel::TwoBody);
    let p = sweep.final_point().coverage_percent;
    assert!(
        (p - 55.17).abs() < 1.0,
        "coverage at 108 satellites: {p}% (paper 55.17%)"
    );
    // Fragmented coverage: hundreds of distinct intervals across the day.
    assert!(sweep.final_point().intervals > 100);
}

/// Fig. 6 shape: near-linear growth with constellation size.
#[test]
#[ignore = "full paper workload; run with --ignored"]
fn full_coverage_shape_is_monotone_and_near_linear() {
    let q = Qntn::standard();
    let sizes = [6usize, 36, 72, 108];
    let sweep = CoverageSweep::run(&q, SimConfig::default(), &sizes, PerturbationModel::TwoBody);
    let pts: Vec<f64> = sweep.points.iter().map(|p| p.coverage_percent).collect();
    assert!(pts.windows(2).all(|w| w[1] > w[0]), "{pts:?}");
    // Per-satellite efficiency stays within a factor ~2 across the sweep
    // (the paper's figure is close to a straight line through the origin).
    let slope_lo = pts[0] / 6.0;
    let slope_hi = pts[3] / 108.0;
    assert!(
        slope_hi / slope_lo > 0.5 && slope_hi / slope_lo < 2.0,
        "{pts:?}"
    );
}

/// Fig. 7/8 at 108 satellites: served within a few points of 57.75 %,
/// fidelity conventions bracketing the paper's 0.96.
#[test]
#[ignore = "full paper workload (~1 min in debug); run with --ignored"]
fn full_request_sweep_matches_paper() {
    let q = Qntn::standard();
    let sweep = ConstellationSweep::run(
        &q,
        SimConfig::default(),
        &[108],
        SweepSettings::paper(),
        PerturbationModel::TwoBody,
    );
    let s = &sweep.final_point().stats;
    assert!(
        (s.served_percent() - 57.75).abs() < 5.0,
        "served: {}% (paper 57.75%)",
        s.served_percent()
    );
    assert!(
        s.mean_fidelity < 0.96 && s.mean_link_fidelity > 0.90,
        "fidelity conventions should bracket ~0.96: end2end {} per-link {}",
        s.mean_fidelity,
        s.mean_link_fidelity
    );
}

/// Table III air-ground column: 100 % / 100 % / ≈0.98.
#[test]
#[ignore = "full paper workload; run with --ignored"]
fn full_air_ground_matches_paper() {
    let q = Qntn::standard();
    let arch = AirGround::standard(&q);
    let r = FidelityExperiment::paper().run_air_ground(&arch);
    assert!((r.coverage_percent - 100.0).abs() < 1e-9);
    assert!((r.served_percent - 100.0).abs() < 1e-9);
    assert!(
        (r.mean_fidelity - 0.98).abs() < 0.01,
        "fidelity {}",
        r.mean_fidelity
    );
}

/// The full Table III ordering at the paper's workload.
#[test]
#[ignore = "full paper workload (several minutes in debug); run with --ignored"]
fn full_table3_ordering() {
    let q = Qntn::standard();
    let config = SimConfig::default();
    let experiment = FidelityExperiment::paper();
    let air = experiment.run_air_ground(&AirGround::new(&q, config));
    let space = experiment.run_space_ground(&SpaceGround::new(
        &q,
        108,
        config,
        PerturbationModel::TwoBody,
    ));
    assert!(air.served_percent > space.served_percent + 30.0);
    assert!(air.mean_fidelity > space.mean_fidelity);
    assert!(air.mean_link_fidelity > space.mean_link_fidelity);
}
