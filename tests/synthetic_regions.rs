//! Property tests over the synthetic-region generator and the fault
//! injection layer: every generated scenario must satisfy the structural
//! invariants the architectures rely on, and the faulted sweep path must
//! honour its determinism contract (engine ≡ naive evaluator, served
//! monotone non-increasing in intensity, intensity 0 ≡ fault-free) for
//! *arbitrary* fault seeds — not just the hand-picked ones in unit tests.
//!
//! Case counts are small by default so `cargo test` stays fast; the
//! nightly CI job sets `PROPTEST_CASES=2048` to deepen every block.

use proptest::prelude::*;
use qntn::core::scenario::SyntheticRegion;
use qntn::geo::{haversine_m, Epoch, Geodetic, WGS84};
use qntn::net::faults::FaultModel;
use qntn::net::requests::aggregate_retry_outcomes;
use qntn::net::{
    ContactWindows, Host, HostKind, QuantumNetworkSim, RequestWorkload, RetryOutcome, RetryPolicy,
    SimConfig, SweepEngine,
};
use qntn::orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use qntn::routing::RouteMetric;
use std::sync::Arc;

/// `ProptestConfig` with `n` cases, overridable via `PROPTEST_CASES`
/// (nightly CI runs this suite with `PROPTEST_CASES=2048`).
fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

proptest! {
    #![proptest_config(cases_or(32))]

    #[test]
    fn generated_regions_are_structurally_sound(
        seed in any::<u64>(),
        cities in 2usize..6,
        nodes in 1usize..10,
        radius_km in 40.0..250.0f64,
    ) {
        let region = SyntheticRegion {
            cities,
            nodes_per_city: nodes,
            region_radius_m: radius_km * 1000.0,
            ..SyntheticRegion::tennessee_like()
        };
        let q = region.generate(seed);

        prop_assert_eq!(q.lans.len(), cities);
        prop_assert_eq!(q.node_count(), cities * nodes);

        let center = qntn::geo::Geodetic::from_deg(
            region.center_lat_deg,
            region.center_lon_deg,
            0.0,
        );
        for (i, lan) in q.lans.iter().enumerate() {
            // Campus compactness: nodes lie within the campus radius of the
            // city centre, so within 2R of the node centroid.
            let c = q.lan_centroid(i);
            for n in &lan.nodes {
                let d = haversine_m(*n, c, &WGS84);
                prop_assert!(d <= 2.0 * region.campus_radius_m + 50.0, "campus spread {d}");
                prop_assert!((n.alt_m - region.ground_alt_m).abs() < 1e-9);
            }
            // City inside the region (ring radius <= region radius + campus).
            let dc = haversine_m(c, center, &WGS84);
            prop_assert!(dc <= region.region_radius_m + region.campus_radius_m + 100.0);
        }

        // Cities mutually separated (ring placement guarantees it for
        // sane parameters: minimum arc at 0.6*radius and >= 2 cities).
        for i in 0..cities {
            for j in (i + 1)..cities {
                let d = haversine_m(q.lan_centroid(i), q.lan_centroid(j), &WGS84);
                prop_assert!(d > 5_000.0, "{i}-{j} too close: {d}");
            }
        }

        // HAP over the centroid, inside the region, at 30 km.
        prop_assert!((q.hap.alt_m - 30_000.0).abs() < 1e-9);
        let dh = haversine_m(q.hap.with_alt(0.0), center, &WGS84);
        prop_assert!(dh <= region.region_radius_m + 1_000.0);
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let region = SyntheticRegion::tennessee_like();
        let a = region.generate(seed);
        let b = region.generate(seed);
        for (la, lb) in a.lans.iter().zip(&b.lans) {
            for (na, nb) in la.nodes.iter().zip(&lb.nodes) {
                prop_assert_eq!(na.lat, nb.lat);
                prop_assert_eq!(na.lon, nb.lon);
            }
        }
    }
}

/// A small hybrid simulator (three ground LANs, one HAP, `sats` paper-
/// constellation satellites) over `steps` 30-second steps — big enough to
/// exercise fiber, ground–air and ground–space links, small enough to
/// rebuild every proptest case.
fn fault_sim(sats: usize, steps: usize) -> QuantumNetworkSim {
    subset_sim(sats, 3, steps)
}

/// [`fault_sim`] with only the first `n_grounds` of the three ground
/// sites — the pruning differential below runs over ground *subsets*,
/// not just the full set.
fn subset_sim(sats: usize, n_grounds: usize, steps: usize) -> QuantumNetworkSim {
    let props: Vec<Propagator> = paper_constellation(sats)
        .into_iter()
        .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
        .collect();
    let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
    let grounds = [
        ("TTU-0", Geodetic::from_deg(36.1757, -85.5066, 300.0)),
        ("ORNL-0", Geodetic::from_deg(35.91, -84.3, 250.0)),
        ("EPB-0", Geodetic::from_deg(35.04159, -85.2799, 200.0)),
    ];
    let mut hosts: Vec<Host> = grounds[..n_grounds]
        .iter()
        .enumerate()
        .map(|(lan, &(name, site))| Host::ground(name, lan, site, 1.2))
        .collect();
    hosts.push(Host::hap(
        "HAP",
        Geodetic::from_deg(35.6692, -85.0662, 30_000.0),
        0.3,
    ));
    for (i, eph) in ephs.into_iter().enumerate() {
        hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
    }
    QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
}

/// The window-precompute geometry of `sim`, extracted the way the
/// pipeline does it: ground sites then satellite ephemerides, host order.
fn window_geometry(sim: &QuantumNetworkSim) -> (Vec<Geodetic>, Vec<&Ephemeris>) {
    let lows = sim
        .hosts()
        .iter()
        .filter(|h| h.is_ground())
        .map(|h| h.geodetic_at(0))
        .collect();
    let ephs = sim
        .hosts()
        .iter()
        .filter_map(|h| match &h.kind {
            HostKind::Satellite { ephemeris } => Some(ephemeris),
            _ => None,
        })
        .collect();
    (lows, ephs)
}

proptest! {
    #![proptest_config(cases_or(8))]

    /// (d) Spatial pruning is bit-invisible: for arbitrary constellation
    /// sizes and ground subsets, the grid-pruned window precompute agrees
    /// with the exhaustive full scan at every `(sat, step, site)`, the
    /// Scenes built from each classify the same Candidate list, and the
    /// graphs — full and active, clean and faulted — match bit for bit.
    #[test]
    fn spatial_pruning_is_bit_invisible(
        sats in 1usize..7,
        n_grounds in 1usize..4,
        steps in 20usize..60,
        fault_seed in any::<u64>(),
        intensity in 0.0..4.0f64,
    ) {
        let sim = subset_sim(sats, n_grounds, steps);
        let (lows, ephs) = window_geometry(&sim);
        let pruned = ContactWindows::for_sim(&sim);
        let exhaustive = ContactWindows::compute_exhaustive(&lows, &ephs, steps);
        for sat in 0..sats {
            for step in 0..steps {
                for low in 0..lows.len() {
                    prop_assert_eq!(
                        pruned.visible(sat, step, low),
                        exhaustive.visible(sat, step, low),
                        "window disagreement at sat {}, step {}, site {}", sat, step, low
                    );
                }
            }
        }
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(&sim),
        );
        let engines = [
            (
                SweepEngine::with_windows(&sim, pruned),
                SweepEngine::with_windows(&sim, exhaustive.clone()),
                "clean",
            ),
            (
                SweepEngine::new(&sim).with_faults(faults.clone()),
                SweepEngine::with_windows(&sim, exhaustive).with_faults(faults),
                "faulted",
            ),
        ];
        for (a, b, tag) in &engines {
            prop_assert_eq!(
                a.scene().candidates(),
                b.scene().candidates(),
                "{}: candidate classification diverged", tag
            );
            for step in (0..steps).step_by(7) {
                for (ga, gb, kind) in [
                    (a.graph_at(step), b.graph_at(step), "full"),
                    (a.active_graph_at(step), b.active_graph_at(step), "active"),
                ] {
                    prop_assert_eq!(
                        ga.edge_count(), gb.edge_count(),
                        "{} {} step {}", tag, kind, step
                    );
                    for ((ua, va, ea), (ub, vb, eb)) in ga.edges().zip(gb.edges()) {
                        prop_assert_eq!(
                            (ua, va), (ub, vb),
                            "{} {} step {}: edge order", tag, kind, step
                        );
                        prop_assert_eq!(
                            ea.to_bits(), eb.to_bits(),
                            "{} {} step {}: η bits on ({}, {})", tag, kind, step, ua, va
                        );
                    }
                }
            }
        }
    }

    /// (a) For an *arbitrary* fault schedule, the pruned engine and the
    /// naive per-step evaluator agree bit for bit: same graphs (edge order
    /// and η bit patterns) and the same aggregated retry statistics.
    #[test]
    fn faulted_engine_matches_the_naive_evaluator(
        fault_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        intensity in 0.0..6.0f64,
        sats in 2usize..6,
    ) {
        let steps_total = 80;
        let sim = fault_sim(sats, steps_total);
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(&sim),
        );
        let engine = SweepEngine::new(&sim).with_faults(faults.clone());
        let metric = RouteMetric::PaperInverseEta;
        for step in (0..steps_total).step_by(11) {
            let a = engine.graph_at(step);
            let b = sim.graph_at_with_faults(step, &faults);
            prop_assert_eq!(a.edge_count(), b.edge_count(), "step {}", step);
            for ((ua, va, ea), (ub, vb, eb)) in a.edges().zip(b.edges()) {
                prop_assert_eq!((ua, va), (ub, vb), "step {}: edge order", step);
                prop_assert_eq!(
                    ea.to_bits(), eb.to_bits(),
                    "step {}: η bits differ on ({}, {})", step, ua, va
                );
            }
        }
        let arrivals: Vec<usize> = (0..steps_total).step_by(13).collect();
        let policy = RetryPolicy::standard();
        let naive: Vec<Vec<RetryOutcome>> = arrivals
            .iter()
            .map(|&arrival| {
                let w = RequestWorkload::generate(
                    &sim,
                    8,
                    workload_seed ^ (arrival as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                w.evaluate_with_retries(&sim, arrival, metric, policy, &faults)
            })
            .collect();
        prop_assert_eq!(
            engine.sweep_with_retries(&arrivals, 8, workload_seed, metric, policy),
            aggregate_retry_outcomes(&naive)
        );
    }

    /// (a′) Arbitrary arrival steps — including ones at or past the end of
    /// the simulated day — never panic the retry evaluator: an out-of-range
    /// arrival has an empty attempt schedule and expires every request with
    /// zero attempts. (Regression: `attempt_steps` used to assert.)
    #[test]
    fn out_of_range_arrivals_expire_instead_of_panicking(
        workload_seed in any::<u64>(),
        arrival in any::<usize>(),
    ) {
        let sim = fault_sim(2, 40);
        let faults = qntn::net::faults::CompiledFaults::identity(sim.hosts().len(), sim.steps());
        let w = RequestWorkload::generate(&sim, 5, workload_seed);
        let outcomes = w.evaluate_with_retries(
            &sim,
            arrival,
            RouteMetric::PaperInverseEta,
            RetryPolicy::standard(),
            &faults,
        );
        prop_assert_eq!(outcomes.len(), 5);
        if arrival >= sim.steps() {
            prop_assert!(outcomes
                .iter()
                .all(|o| *o == RetryOutcome::Expired { attempts: 0 }));
        }
    }

    /// (b) Raising the intensity never serves *more* requests: the nested
    /// episode sampling makes every low-intensity schedule a subset of the
    /// high-intensity one, so served counts are monotone non-increasing.
    #[test]
    fn served_is_monotone_nonincreasing_in_intensity(
        fault_seed in any::<u64>(),
        lo in 0.0..4.0f64,
        delta in 0.0..4.0f64,
    ) {
        let sim = fault_sim(3, 60);
        let arrivals: Vec<usize> = (0..60).step_by(7).collect();
        let metric = RouteMetric::PaperInverseEta;
        let served = |intensity: f64| {
            let faults = Arc::new(
                FaultModel::standard(fault_seed)
                    .with_intensity(intensity)
                    .compile(&sim),
            );
            SweepEngine::new(&sim)
                .with_faults(faults)
                .sweep(&arrivals, 10, 2024, metric)
                .served
        };
        let (low, high) = (served(lo), served(lo + delta));
        prop_assert!(
            high <= low,
            "served rose with intensity: {} at {} vs {} at {}",
            high, lo + delta, low, lo
        );
    }

    /// (c) Intensity 0 is a *bit-for-bit* no-op for any fault seed: the
    /// compiled mask is the identity, the masked engine's graphs match the
    /// clean engine's down to the η bit patterns, and the sweep statistics
    /// are equal.
    #[test]
    fn zero_intensity_reproduces_the_fault_free_run(
        fault_seed in any::<u64>(),
        workload_seed in any::<u64>(),
    ) {
        let sim = fault_sim(2, 60);
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(0.0)
                .compile(&sim),
        );
        prop_assert!(faults.is_identity());
        let clean = SweepEngine::new(&sim);
        let masked = SweepEngine::new(&sim).with_faults(faults);
        for step in (0..60).step_by(9) {
            let a = clean.graph_at(step);
            let b = masked.graph_at(step);
            prop_assert_eq!(a.edge_count(), b.edge_count(), "step {}", step);
            for ((ua, va, ea), (ub, vb, eb)) in a.edges().zip(b.edges()) {
                prop_assert_eq!((ua, va), (ub, vb), "step {}: edge order", step);
                prop_assert_eq!(
                    ea.to_bits(), eb.to_bits(),
                    "step {}: η bits differ on ({}, {})", step, ua, va
                );
            }
        }
        let arrivals: Vec<usize> = (0..60).step_by(8).collect();
        let metric = RouteMetric::PaperInverseEta;
        prop_assert_eq!(
            clean.sweep(&arrivals, 10, workload_seed, metric),
            masked.sweep(&arrivals, 10, workload_seed, metric),
            "identity mask moved the sweep statistics"
        );
    }
}
