//! Property tests over the synthetic-region generator: every generated
//! scenario must satisfy the structural invariants the architectures rely
//! on, for any seed and any sane parameterization.

use proptest::prelude::*;
use qntn::core::scenario::SyntheticRegion;
use qntn::geo::{haversine_m, WGS84};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_regions_are_structurally_sound(
        seed in any::<u64>(),
        cities in 2usize..6,
        nodes in 1usize..10,
        radius_km in 40.0..250.0f64,
    ) {
        let region = SyntheticRegion {
            cities,
            nodes_per_city: nodes,
            region_radius_m: radius_km * 1000.0,
            ..SyntheticRegion::tennessee_like()
        };
        let q = region.generate(seed);

        prop_assert_eq!(q.lans.len(), cities);
        prop_assert_eq!(q.node_count(), cities * nodes);

        let center = qntn::geo::Geodetic::from_deg(
            region.center_lat_deg,
            region.center_lon_deg,
            0.0,
        );
        for (i, lan) in q.lans.iter().enumerate() {
            // Campus compactness: nodes lie within the campus radius of the
            // city centre, so within 2R of the node centroid.
            let c = q.lan_centroid(i);
            for n in &lan.nodes {
                let d = haversine_m(*n, c, &WGS84);
                prop_assert!(d <= 2.0 * region.campus_radius_m + 50.0, "campus spread {d}");
                prop_assert!((n.alt_m - region.ground_alt_m).abs() < 1e-9);
            }
            // City inside the region (ring radius <= region radius + campus).
            let dc = haversine_m(c, center, &WGS84);
            prop_assert!(dc <= region.region_radius_m + region.campus_radius_m + 100.0);
        }

        // Cities mutually separated (ring placement guarantees it for
        // sane parameters: minimum arc at 0.6*radius and >= 2 cities).
        for i in 0..cities {
            for j in (i + 1)..cities {
                let d = haversine_m(q.lan_centroid(i), q.lan_centroid(j), &WGS84);
                prop_assert!(d > 5_000.0, "{i}-{j} too close: {d}");
            }
        }

        // HAP over the centroid, inside the region, at 30 km.
        prop_assert!((q.hap.alt_m - 30_000.0).abs() < 1e-9);
        let dh = haversine_m(q.hap.with_alt(0.0), center, &WGS84);
        prop_assert!(dh <= region.region_radius_m + 1_000.0);
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let region = SyntheticRegion::tennessee_like();
        let a = region.generate(seed);
        let b = region.generate(seed);
        for (la, lb) in a.lans.iter().zip(&b.lans) {
            for (na, nb) in la.nodes.iter().zip(&lb.nodes) {
                prop_assert_eq!(na.lat, nb.lat);
                prop_assert_eq!(na.lon, nb.lon);
            }
        }
    }
}
