//! Differential property tests for the store-and-forward serving mode.
//!
//! The hold-aware server (`qntn::serve::hold`) routes over time-expanded
//! graphs; its correctness anchor is the zero-horizon contract: with
//! [`HoldPolicy::disabled`] (horizon 0, zero memory, no floor) it must
//! reproduce the per-step server **bit for bit** — clean and under
//! arbitrary fault seeds — for *arbitrary* constellations and workloads,
//! not just the hand-picked fixtures in the serve crate's unit tests.
//! With memories enabled and no fidelity floor, the horizon-H graph
//! contains every layer-0 edge, so holding may only add served requests.
//!
//! Case counts are small by default so `cargo test` stays fast; the
//! nightly CI job sets `PROPTEST_CASES=2048` to deepen every block.

use proptest::prelude::*;
use qntn::geo::{Epoch, Geodetic};
use qntn::net::faults::FaultModel;
use qntn::net::{Host, QuantumNetworkSim, RetryOutcome, RetryPolicy, SimConfig, SweepEngine};
use qntn::orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use qntn::routing::RouteMetric;
use qntn::serve::{
    generate, ingest, serve_full, serve_full_with_holds, serve_report, serve_report_with_holds,
    HoldPolicy, RequestQueue, WorkloadKind,
};
use std::sync::Arc;

/// `ProptestConfig` with `n` cases, overridable via `PROPTEST_CASES`
/// (nightly CI runs this suite with `PROPTEST_CASES=2048`).
fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

/// Three LANs of ground nodes plus an `n_sats` Walker shell — the smallest
/// shape on which inter-LAN serving is non-trivial.
fn sim_with(n_sats: usize, steps: usize) -> QuantumNetworkSim {
    let mut hosts = vec![
        Host::ground(
            "TTU-0",
            0,
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            1.2,
        ),
        Host::ground(
            "TTU-1",
            0,
            Geodetic::from_deg(36.1751, -85.5067, 300.0),
            1.2,
        ),
        Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
        Host::ground(
            "EPB-0",
            2,
            Geodetic::from_deg(35.04159, -85.2799, 200.0),
            1.2,
        ),
    ];
    let props: Vec<Propagator> = paper_constellation(n_sats)
        .into_iter()
        .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
        .collect();
    let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
    for (i, eph) in ephs.into_iter().enumerate() {
        hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
    }
    QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
}

fn workload_kind(ix: usize) -> WorkloadKind {
    [
        WorkloadKind::Uniform,
        WorkloadKind::Poisson,
        WorkloadKind::Diurnal,
        WorkloadKind::Hotspot,
    ][ix % 4]
}

fn queue_for(sim: &QuantumNetworkSim, kind: WorkloadKind, n: usize, seed: u64) -> RequestQueue {
    let stream = generate(sim, kind, n, seed);
    let (queue, _rejected) = ingest(sim.hosts().len(), sim.steps(), &stream);
    queue
}

fn served(outcomes: &[RetryOutcome]) -> usize {
    outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                RetryOutcome::ServedFirstTry(_) | RetryOutcome::ServedAfterRetry { .. }
            )
        })
        .count()
}

proptest! {
    #![proptest_config(cases_or(12))]

    /// The zero-horizon differential contract, clean pipeline: disabled
    /// hold policy ≡ per-step serve, outcome for outcome and in the
    /// aggregated report, for arbitrary constellations and workloads.
    #[test]
    fn zero_horizon_zero_memory_serving_is_bit_identical_to_per_step(
        n_sats in 2usize..6,
        steps in 24usize..48,
        kind_ix in 0usize..4,
        n_requests in 50usize..200,
        seed in any::<u64>(),
    ) {
        let sim = sim_with(n_sats, steps);
        let engine = SweepEngine::new(&sim);
        let queue = queue_for(&sim, workload_kind(kind_ix), n_requests, seed);
        let policy = RetryPolicy::standard();
        let metric = RouteMetric::PaperInverseEta;
        let per_step = serve_full(&engine, &queue, policy, metric);
        let held = serve_full_with_holds(&engine, &queue, policy, metric, &HoldPolicy::disabled());
        prop_assert_eq!(&per_step, &held);
        let base_report = serve_report(&engine, &queue, policy, metric, 0);
        let held_report =
            serve_report_with_holds(&engine, &queue, policy, metric, &HoldPolicy::disabled(), 0);
        prop_assert_eq!(base_report, held_report);
    }

    /// The same contract under arbitrary fault masks: the hold path must
    /// consult the identical compiled fault schedule per layer.
    #[test]
    fn zero_horizon_contract_holds_under_arbitrary_faults(
        n_sats in 2usize..6,
        steps in 24usize..48,
        n_requests in 50usize..150,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        intensity in 0.0..3.0f64,
    ) {
        let sim = sim_with(n_sats, steps);
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(&sim),
        );
        let engine = SweepEngine::new(&sim).with_faults(faults);
        let queue = queue_for(&sim, WorkloadKind::Uniform, n_requests, seed);
        let policy = RetryPolicy::standard();
        let metric = RouteMetric::PaperInverseEta;
        let per_step = serve_full(&engine, &queue, policy, metric);
        let held = serve_full_with_holds(&engine, &queue, policy, metric, &HoldPolicy::disabled());
        prop_assert_eq!(per_step, held);
    }

    /// With memories and no floor, the horizon-H time-expanded graph is a
    /// superset of every per-step graph it spans, so holding can only add
    /// served requests — never lose one.
    #[test]
    fn holding_with_zero_floor_never_serves_fewer(
        n_sats in 2usize..6,
        steps in 24usize..40,
        horizon in 1usize..8,
        n_requests in 50usize..150,
        seed in any::<u64>(),
    ) {
        let sim = sim_with(n_sats, steps);
        let engine = SweepEngine::new(&sim);
        let queue = queue_for(&sim, WorkloadKind::Poisson, n_requests, seed);
        let policy = RetryPolicy::standard();
        let metric = RouteMetric::PaperInverseEta;
        let base = serve_full(&engine, &queue, policy, metric);
        let held = serve_full_with_holds(
            &engine,
            &queue,
            policy,
            metric,
            &HoldPolicy::with_horizon(horizon),
        );
        prop_assert_eq!(base.len(), held.len());
        prop_assert!(
            served(&held) >= served(&base),
            "horizon {} lost served requests: {} < {}",
            horizon,
            served(&held),
            served(&base)
        );
    }
}
