//! Pre-refactor golden fingerprints for the topology pipeline.
//!
//! The FNV-1a fingerprints below were captured from the seed implementation
//! (the four hand-rolled `QuantumNetworkSim::graph_at*` bodies) *before*
//! graph construction was collapsed into the shared Scene → LinkMap →
//! Topology pipeline. They pin the exact adjacency order and η bit patterns
//! of the standard scenario, so any pipeline change that perturbs a single
//! bit of a single edge fails here.

use proptest::prelude::*;
use qntn::common::{HostId, StepId};
use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::scenario::Qntn;
use qntn::net::faults::{CompiledFaults, FaultModel};
use qntn::net::{LinkMap, QuantumNetworkSim};
use qntn::orbit::PerturbationModel;
use qntn::routing::Graph;
use std::sync::OnceLock;

/// Proptest case count: 32 by default, `PROPTEST_CASES` to override (the
/// nightly workflow turns it up).
fn cases_or(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a over every directed adjacency entry in iteration order, η as raw
/// bits — collision-resistant enough to pin bit-identity across a refactor.
fn fingerprint(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(g.node_count() as u64);
    for u in 0..g.node_count() {
        for e in g.neighbors(u) {
            mix(u as u64);
            mix(e.to as u64);
            mix(e.eta.to_bits());
        }
    }
    h
}

/// (case, FNV-1a fingerprint, edge count) captured from the pre-refactor
/// seed implementation. Steps 400/420 were chosen because the 6-satellite
/// constellation contributes FSO edges there and the standard intensity-2.0
/// fault mask actually removes some of them, so the fingerprints pin the
/// clean, thresholded, and faulted paths independently.
const GOLDENS: &[(&str, u64, usize)] = &[
    ("air_full_0", 0x8cf8b139f9d40ad9, 201),
    ("air_active_1440", 0x8cf8b139f9d40ad9, 201),
    ("space6_full_0", 0xc4006c6a95ce10fc, 170),
    ("space6_full_400", 0x700af4944a1d5ea0, 201),
    ("space6_active_420", 0xc4006c6a95ce10fc, 170),
    ("space6_faulted_full_400", 0x4ef5472e68435534, 190),
    ("space6_faulted_active_400", 0x5b5804be52727c5c, 160),
];

#[test]
fn wrappers_are_bit_identical_to_pre_refactor_goldens() {
    let q = Qntn::standard();
    let air = AirGround::standard(&q);
    let space = SpaceGround::new(
        &q,
        6,
        qntn::net::SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let faults = FaultModel::standard(42)
        .with_intensity(2.0)
        .compile(space.sim());
    let graphs = [
        ("air_full_0", air.sim().graph_at(0)),
        ("air_active_1440", air.sim().active_graph_at(1440)),
        ("space6_full_0", space.sim().graph_at(0)),
        ("space6_full_400", space.sim().graph_at(400)),
        ("space6_active_420", space.sim().active_graph_at(420)),
        (
            "space6_faulted_full_400",
            space.sim().graph_at_with_faults(400, &faults),
        ),
        (
            "space6_faulted_active_400",
            space.sim().active_graph_at_with_faults(400, &faults),
        ),
    ];
    for ((name, g), (gname, ghash, gedges)) in graphs.iter().zip(GOLDENS) {
        assert_eq!(name, gname);
        assert_eq!(
            (fingerprint(g), g.edge_count()),
            (*ghash, *gedges),
            "{name}: graph diverged from pre-refactor golden"
        );
    }
}

/// The pre-refactor naive `graph_at` body, reimplemented verbatim as an
/// oracle: evaluate every non-ground-ground pair at the actual step, no
/// scene, no windows, no static-pair caching.
fn pre_refactor_graph_at(sim: &QuantumNetworkSim, step: usize) -> Graph {
    let hosts = sim.hosts();
    let n = hosts.len();
    let mut g = Graph::with_nodes(n);
    for &(a, b, eta) in sim.fiber_edges() {
        g.set_edge(a, b, eta);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if hosts[a].is_ground() && hosts[b].is_ground() {
                continue;
            }
            if let Some(eta) = sim.evaluator().fso_eta(&hosts[a], &hosts[b], step) {
                g.set_edge(a, b, eta);
            }
        }
    }
    g
}

/// The pre-refactor naive `graph_at_with_faults` body, as an oracle.
fn pre_refactor_graph_at_with_faults(
    sim: &QuantumNetworkSim,
    step: usize,
    faults: &CompiledFaults,
) -> Graph {
    let hosts = sim.hosts();
    let n = hosts.len();
    let w = faults.eta_factor(step);
    let mut g = Graph::with_nodes(n);
    for &(a, b, eta) in sim.fiber_edges() {
        if faults.edge_up(step, a, b) {
            g.set_edge(a, b, eta);
        }
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if hosts[a].is_ground() && hosts[b].is_ground() {
                continue;
            }
            if !faults.edge_up(step, a, b) {
                continue;
            }
            if let Some(eta) = sim.evaluator().fso_eta(&hosts[a], &hosts[b], step) {
                let crosses = hosts[a].is_ground() || hosts[b].is_ground();
                g.set_edge(a, b, if crosses { eta * w } else { eta });
            }
        }
    }
    g
}

fn assert_bit_identical(a: &Graph, b: &Graph, ctx: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
    assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
    for ((ua, va, ea), (ub, vb, eb)) in a.edges().zip(b.edges()) {
        assert_eq!((ua, va), (ub, vb), "{ctx}: edge order");
        assert_eq!(ea.to_bits(), eb.to_bits(), "{ctx}: eta bits at ({ua},{va})");
    }
}

/// The seed scenario the oracle proptests run against: the paper's ground
/// segment plus a 6-satellite prefix, built once (propagation is the
/// expensive part) and shared across cases.
fn seed_space() -> &'static SpaceGround {
    static SPACE: OnceLock<SpaceGround> = OnceLock::new();
    SPACE.get_or_init(|| {
        SpaceGround::new(
            &Qntn::standard(),
            6,
            qntn::net::SimConfig::default(),
            PerturbationModel::TwoBody,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_or(32)))]

    /// The pipeline-backed `graph_at` wrappers are bit-identical to the
    /// pre-refactor naive loop at arbitrary steps of the seed scenario.
    #[test]
    fn graph_at_matches_the_pre_refactor_loop(step in 0usize..2880) {
        let sim = seed_space().sim();
        assert_bit_identical(
            &sim.graph_at(step),
            &pre_refactor_graph_at(sim, step),
            &format!("step {step}"),
        );
    }

    /// Same contract under a compiled fault mask, across intensities.
    #[test]
    fn faulted_graph_at_matches_the_pre_refactor_loop(
        step in 0usize..2880,
        seed in 0u64..1024,
        intensity in 0.0f64..8.0,
    ) {
        let sim = seed_space().sim();
        let faults = FaultModel::standard(seed).with_intensity(intensity).compile(sim);
        assert_bit_identical(
            &sim.graph_at_with_faults(step, &faults),
            &pre_refactor_graph_at_with_faults(sim, step, &faults),
            &format!("step {step}, seed {seed}, intensity {intensity}"),
        );
    }
}

#[test]
fn scene_positions_match_direct_ephemeris_lookup() {
    let space = seed_space();
    let sim = space.sim();
    let links = LinkMap::new(sim, sim.scene(), None);
    for (i, host) in sim.hosts().iter().enumerate() {
        for step in [0usize, 399, 1440, 2879] {
            let got = links.ecef_of(HostId(i), StepId(step));
            let want = host.ecef_at(step);
            assert_eq!(
                (got.x, got.y, got.z),
                (want.x, want.y, want.z),
                "host {i} ({}) step {step}",
                host.name
            );
        }
    }
    // For satellites, the position column must be the qntn-orbit movement
    // sheet itself, not a recomputation.
    for host in sim.hosts().iter().filter(|h| h.is_satellite()) {
        if let qntn::net::HostKind::Satellite { ephemeris } = &host.kind {
            for step in [0usize, 400, 2879] {
                let direct = ephemeris.at_step(step).ecef;
                let via_host = host.ecef_at(step);
                assert_eq!(
                    (direct.x, direct.y, direct.z),
                    (via_host.x, via_host.y, via_host.z)
                );
            }
        }
    }
}

#[test]
fn linkmap_eta_matches_direct_evaluator_calls() {
    let space = seed_space();
    let sim = space.sim();
    let links = LinkMap::new(sim, sim.scene(), None);
    for step in [0usize, 400, 420, 1440] {
        let mut n_links = 0;
        links.for_each_link(StepId(step), |a, b, eta| {
            n_links += 1;
            let (ha, hb) = (&sim.hosts()[a.index()], &sim.hosts()[b.index()]);
            if ha.is_ground() && hb.is_ground() {
                // Fiber: must be the precomputed mesh entry, bit for bit.
                let mesh = sim
                    .fiber_edges()
                    .iter()
                    .find(|&&(x, y, _)| (x, y) == (a.index(), b.index()))
                    .expect("fiber link not in the mesh");
                assert_eq!(eta.to_bits(), mesh.2.to_bits());
            } else {
                // FSO: must be exactly what the evaluator says right now.
                let direct = sim
                    .evaluator()
                    .fso_eta(ha, hb, step)
                    .expect("LinkMap emitted a link the evaluator rejects");
                assert_eq!(eta.to_bits(), direct.to_bits(), "({a}, {b}) at step {step}");
            }
        });
        assert!(n_links > 0, "step {step} emitted no links");
    }
}

#[test]
fn faulted_linkmap_applies_gate_and_weather_exactly() {
    let space = seed_space();
    let sim = space.sim();
    let faults = FaultModel::standard(42).with_intensity(2.0).compile(sim);
    let links = LinkMap::new(sim, sim.scene(), Some(&faults));
    for step in [380usize, 400, 720] {
        let w = faults.eta_factor(step);
        links.for_each_link(StepId(step), |a, b, eta| {
            assert!(
                faults.edge_up(step, a.index(), b.index()),
                "downed/flapped edge ({a}, {b}) leaked through at step {step}"
            );
            let (ha, hb) = (&sim.hosts()[a.index()], &sim.hosts()[b.index()]);
            if !(ha.is_ground() && hb.is_ground()) {
                let direct = sim.evaluator().fso_eta(ha, hb, step).unwrap();
                let crosses = ha.is_ground() || hb.is_ground();
                let want = if crosses { direct * w } else { direct };
                assert_eq!(eta.to_bits(), want.to_bits(), "({a}, {b}) at step {step}");
            }
        });
    }
}
