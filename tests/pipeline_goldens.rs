//! Pre-refactor golden fingerprints for the topology pipeline.
//!
//! The FNV-1a fingerprints below were captured from the seed implementation
//! (the four hand-rolled `QuantumNetworkSim::graph_at*` bodies) *before*
//! graph construction was collapsed into the shared Scene → LinkMap →
//! Topology pipeline. They pin the exact adjacency order and η bit patterns
//! of the standard scenario, so any pipeline change that perturbs a single
//! bit of a single edge fails here.

//!
//! A second golden wall pins the mega-constellation path: active-graph
//! fingerprints of a ~1080-satellite Walker shell (the `bench --scale
//! 1080` constellation exactly), captured from the full-rescan
//! materializer, now exercised through the incremental cursor — plus a
//! proptest driving a persistent cursor over arbitrary step walks against
//! full rebuilds.

use proptest::prelude::*;
use qntn::common::{HostId, StepId};
use qntn::core::architecture::{default_epoch, AirGround, SpaceGround};
use qntn::core::scenario::Qntn;
use qntn::net::faults::{CompiledFaults, FaultModel};
use qntn::net::{ContactWindows, LinkMap, QuantumNetworkSim, SweepEngine, SweepScratch};
use qntn::orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn::orbit::{scaled_shell, Ephemeris, PerturbationModel, Propagator};
use qntn::routing::Graph;
use std::sync::{Arc, OnceLock};

/// Proptest case count: 32 by default, `PROPTEST_CASES` to override (the
/// nightly workflow turns it up).
fn cases_or(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a over every directed adjacency entry in iteration order, η as raw
/// bits — collision-resistant enough to pin bit-identity across a refactor.
fn fingerprint(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(g.node_count() as u64);
    for u in 0..g.node_count() {
        for e in g.neighbors(u) {
            mix(u as u64);
            mix(e.to as u64);
            mix(e.eta.to_bits());
        }
    }
    h
}

/// (case, FNV-1a fingerprint, edge count) captured from the pre-refactor
/// seed implementation. Steps 400/420 were chosen because the 6-satellite
/// constellation contributes FSO edges there and the standard intensity-2.0
/// fault mask actually removes some of them, so the fingerprints pin the
/// clean, thresholded, and faulted paths independently.
const GOLDENS: &[(&str, u64, usize)] = &[
    ("air_full_0", 0x8cf8b139f9d40ad9, 201),
    ("air_active_1440", 0x8cf8b139f9d40ad9, 201),
    ("space6_full_0", 0xc4006c6a95ce10fc, 170),
    ("space6_full_400", 0x700af4944a1d5ea0, 201),
    ("space6_active_420", 0xc4006c6a95ce10fc, 170),
    ("space6_faulted_full_400", 0x4ef5472e68435534, 190),
    ("space6_faulted_active_400", 0x5b5804be52727c5c, 160),
];

#[test]
fn wrappers_are_bit_identical_to_pre_refactor_goldens() {
    let q = Qntn::standard();
    let air = AirGround::standard(&q);
    let space = SpaceGround::new(
        &q,
        6,
        qntn::net::SimConfig::default(),
        PerturbationModel::TwoBody,
    );
    let faults = FaultModel::standard(42)
        .with_intensity(2.0)
        .compile(space.sim());
    let graphs = [
        ("air_full_0", air.sim().graph_at(0)),
        ("air_active_1440", air.sim().active_graph_at(1440)),
        ("space6_full_0", space.sim().graph_at(0)),
        ("space6_full_400", space.sim().graph_at(400)),
        ("space6_active_420", space.sim().active_graph_at(420)),
        (
            "space6_faulted_full_400",
            space.sim().graph_at_with_faults(400, &faults),
        ),
        (
            "space6_faulted_active_400",
            space.sim().active_graph_at_with_faults(400, &faults),
        ),
    ];
    for ((name, g), (gname, ghash, gedges)) in graphs.iter().zip(GOLDENS) {
        assert_eq!(name, gname);
        assert_eq!(
            (fingerprint(g), g.edge_count()),
            (*ghash, *gedges),
            "{name}: graph diverged from pre-refactor golden"
        );
    }
}

/// The pre-refactor naive `graph_at` body, reimplemented verbatim as an
/// oracle: evaluate every non-ground-ground pair at the actual step, no
/// scene, no windows, no static-pair caching.
fn pre_refactor_graph_at(sim: &QuantumNetworkSim, step: usize) -> Graph {
    let hosts = sim.hosts();
    let n = hosts.len();
    let mut g = Graph::with_nodes(n);
    for &(a, b, eta) in sim.fiber_edges() {
        g.set_edge(a, b, eta);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if hosts[a].is_ground() && hosts[b].is_ground() {
                continue;
            }
            if let Some(eta) = sim.evaluator().fso_eta(&hosts[a], &hosts[b], step) {
                g.set_edge(a, b, eta);
            }
        }
    }
    g
}

/// The pre-refactor naive `graph_at_with_faults` body, as an oracle.
fn pre_refactor_graph_at_with_faults(
    sim: &QuantumNetworkSim,
    step: usize,
    faults: &CompiledFaults,
) -> Graph {
    let hosts = sim.hosts();
    let n = hosts.len();
    let w = faults.eta_factor(step);
    let mut g = Graph::with_nodes(n);
    for &(a, b, eta) in sim.fiber_edges() {
        if faults.edge_up(step, a, b) {
            g.set_edge(a, b, eta);
        }
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if hosts[a].is_ground() && hosts[b].is_ground() {
                continue;
            }
            if !faults.edge_up(step, a, b) {
                continue;
            }
            if let Some(eta) = sim.evaluator().fso_eta(&hosts[a], &hosts[b], step) {
                let crosses = hosts[a].is_ground() || hosts[b].is_ground();
                g.set_edge(a, b, if crosses { eta * w } else { eta });
            }
        }
    }
    g
}

fn assert_bit_identical(a: &Graph, b: &Graph, ctx: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
    assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
    for ((ua, va, ea), (ub, vb, eb)) in a.edges().zip(b.edges()) {
        assert_eq!((ua, va), (ub, vb), "{ctx}: edge order");
        assert_eq!(ea.to_bits(), eb.to_bits(), "{ctx}: eta bits at ({ua},{va})");
    }
}

/// The seed scenario the oracle proptests run against: the paper's ground
/// segment plus a 6-satellite prefix, built once (propagation is the
/// expensive part) and shared across cases.
fn seed_space() -> &'static SpaceGround {
    static SPACE: OnceLock<SpaceGround> = OnceLock::new();
    SPACE.get_or_init(|| {
        SpaceGround::new(
            &Qntn::standard(),
            6,
            qntn::net::SimConfig::default(),
            PerturbationModel::TwoBody,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_or(32)))]

    /// The pipeline-backed `graph_at` wrappers are bit-identical to the
    /// pre-refactor naive loop at arbitrary steps of the seed scenario.
    #[test]
    fn graph_at_matches_the_pre_refactor_loop(step in 0usize..2880) {
        let sim = seed_space().sim();
        assert_bit_identical(
            &sim.graph_at(step),
            &pre_refactor_graph_at(sim, step),
            &format!("step {step}"),
        );
    }

    /// Same contract under a compiled fault mask, across intensities.
    #[test]
    fn faulted_graph_at_matches_the_pre_refactor_loop(
        step in 0usize..2880,
        seed in 0u64..1024,
        intensity in 0.0f64..8.0,
    ) {
        let sim = seed_space().sim();
        let faults = FaultModel::standard(seed).with_intensity(intensity).compile(sim);
        assert_bit_identical(
            &sim.graph_at_with_faults(step, &faults),
            &pre_refactor_graph_at_with_faults(sim, step, &faults),
            &format!("step {step}, seed {seed}, intensity {intensity}"),
        );
    }
}

#[test]
fn scene_positions_match_direct_ephemeris_lookup() {
    let space = seed_space();
    let sim = space.sim();
    let links = LinkMap::new(sim, sim.scene(), None);
    for (i, host) in sim.hosts().iter().enumerate() {
        for step in [0usize, 399, 1440, 2879] {
            let got = links.ecef_of(HostId(i), StepId(step));
            let want = host.ecef_at(step);
            assert_eq!(
                (got.x, got.y, got.z),
                (want.x, want.y, want.z),
                "host {i} ({}) step {step}",
                host.name
            );
        }
    }
    // For satellites, the position column must be the qntn-orbit movement
    // sheet itself, not a recomputation.
    for host in sim.hosts().iter().filter(|h| h.is_satellite()) {
        if let qntn::net::HostKind::Satellite { ephemeris } = &host.kind {
            for step in [0usize, 400, 2879] {
                let direct = ephemeris.at_step(step).ecef;
                let via_host = host.ecef_at(step);
                assert_eq!(
                    (direct.x, direct.y, direct.z),
                    (via_host.x, via_host.y, via_host.z)
                );
            }
        }
    }
}

#[test]
fn linkmap_eta_matches_direct_evaluator_calls() {
    let space = seed_space();
    let sim = space.sim();
    let links = LinkMap::new(sim, sim.scene(), None);
    for step in [0usize, 400, 420, 1440] {
        let mut n_links = 0;
        links.for_each_link(StepId(step), |a, b, eta| {
            n_links += 1;
            let (ha, hb) = (&sim.hosts()[a.index()], &sim.hosts()[b.index()]);
            if ha.is_ground() && hb.is_ground() {
                // Fiber: must be the precomputed mesh entry, bit for bit.
                let mesh = sim
                    .fiber_edges()
                    .iter()
                    .find(|&&(x, y, _)| (x, y) == (a.index(), b.index()))
                    .expect("fiber link not in the mesh");
                assert_eq!(eta.to_bits(), mesh.2.to_bits());
            } else {
                // FSO: must be exactly what the evaluator says right now.
                let direct = sim
                    .evaluator()
                    .fso_eta(ha, hb, step)
                    .expect("LinkMap emitted a link the evaluator rejects");
                assert_eq!(eta.to_bits(), direct.to_bits(), "({a}, {b}) at step {step}");
            }
        });
        assert!(n_links > 0, "step {step} emitted no links");
    }
}

/// The ~1080-satellite Walker shell of the mega-constellation goldens:
/// the `reproduce bench --scale 1080` constellation exactly (paper ground
/// segment, ISLs off), built once and shared — propagating 1080
/// ephemerides over the full day is the expensive part.
fn mega_shell() -> &'static SpaceGround {
    static SHELL: OnceLock<SpaceGround> = OnceLock::new();
    SHELL.get_or_init(|| {
        let epoch = default_epoch();
        let props: Vec<Propagator> = scaled_shell(1080)
            .elements()
            .into_iter()
            .map(|k| Propagator::new(k, epoch, PerturbationModel::TwoBody))
            .collect();
        let eph = Ephemeris::generate_many(&props, epoch, PAPER_STEP_S, PAPER_DURATION_S);
        let config = qntn::net::SimConfig {
            enable_isl: false,
            ..Default::default()
        };
        SpaceGround::from_ephemerides(&Qntn::standard(), eph, config)
    })
}

/// The shell's contact windows, computed once (the spatial-pruned pass)
/// and cloned into each engine — the masks are `Arc`-backed, so a clone
/// is cheap.
fn mega_windows() -> &'static ContactWindows {
    static WINDOWS: OnceLock<ContactWindows> = OnceLock::new();
    WINDOWS.get_or_init(|| ContactWindows::for_sim(mega_shell().sim()))
}

/// `(step, FNV-1a fingerprint, edge count)` of the thresholded active
/// graph at a sparse sample of steps across the day (the quick tier — the
/// consecutive-walk test and the proptests cover density). Captured from
/// the full-rescan materializer before the incremental cursor landed;
/// `active_graph_at` now reaches them through cursor seeding.
const MEGA_CLEAN_GOLDENS: &[(usize, u64, usize)] = &[
    (0, 0xce41a33b68cb57da, 356),
    (719, 0x39670b774299b4aa, 382),
    (1440, 0x2c1a7599c6e26ee6, 367),
    (2200, 0xb26afb2e0bddb17e, 352),
    (2879, 0x6a36ff800ce90b66, 376),
];

/// The active graph at step 1447 reached by *walking* the cursor from
/// 1440 — pins the delta-advancement path itself against a constant.
const MEGA_WALK_END_GOLDEN: (u64, usize) = (0xc9c459fcca7ed706, 365);

/// The faulted active graph at step 1440 under the standard seed-42
/// intensity-2.0 mask: pins gate filtering and weather weighting at scale.
const MEGA_FAULTED_GOLDEN: (u64, usize) = (0xba1aea9b1ebfcb3e, 366);

#[test]
fn mega_shell_actives_match_their_goldens() {
    let sim = mega_shell().sim();
    let engine = SweepEngine::with_windows(sim, mega_windows().clone());
    for &(step, hash, edges) in MEGA_CLEAN_GOLDENS {
        let g = engine.active_graph_at(step);
        assert_eq!(
            (fingerprint(&g), g.edge_count()),
            (hash, edges),
            "mega shell step {step}: active graph diverged from its golden"
        );
    }
}

#[test]
fn mega_shell_consecutive_walk_matches_seeded_rebuilds_and_its_golden() {
    let sim = mega_shell().sim();
    let engine = SweepEngine::with_windows(sim, mega_windows().clone());
    let mut walked = SweepScratch::default();
    for step in 1440..1448 {
        engine.active_graph_into(step, &mut walked);
        // A fresh scratch seeds its cursor from the windows at `step`;
        // the walked scratch got here by applying edge deltas. Both must
        // land on the same bits.
        let mut fresh = SweepScratch::default();
        engine.active_graph_into(step, &mut fresh);
        assert_bit_identical(
            &walked.active,
            &fresh.active,
            &format!("mega shell walked vs seeded at step {step}"),
        );
    }
    let g = &walked.active;
    assert_eq!(
        (fingerprint(g), g.edge_count()),
        MEGA_WALK_END_GOLDEN,
        "mega shell step 1447 after a consecutive walk from 1440"
    );
}

#[test]
fn mega_shell_faulted_active_matches_its_golden() {
    let sim = mega_shell().sim();
    let faults = FaultModel::standard(42).with_intensity(2.0).compile(sim);
    let engine =
        SweepEngine::with_windows(sim, mega_windows().clone()).with_faults(Arc::new(faults));
    let g = engine.active_graph_at(1440);
    assert_eq!(
        (fingerprint(&g), g.edge_count()),
        MEGA_FAULTED_GOLDEN,
        "mega shell faulted step 1440: active graph diverged from its golden"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_or(32)))]

    /// Incremental-vs-rebuild differential: a persistent cursor driven
    /// over an arbitrary walk — backward and forward jumps, each expanded
    /// into a short consecutive run so the delta path (not just seeding)
    /// is exercised — produces graphs bit-identical to full per-step
    /// rebuilds through `build_topology_into`. Engines alternate between
    /// clean and faulted, so the same cursor also crosses Scene tokens
    /// and must be reseeded rather than trusted.
    #[test]
    fn cursor_walks_are_bit_identical_to_full_rebuilds(
        jumps in proptest::collection::vec(0usize..2877, 1..10),
        seed in 0u64..256,
        intensity in 0.0f64..4.0,
    ) {
        let sim = seed_space().sim();
        let faults = FaultModel::standard(seed).with_intensity(intensity).compile(sim);
        let clean = SweepEngine::new(sim);
        let faulted = SweepEngine::new(sim).with_faults(Arc::new(faults));
        let mut scratch = SweepScratch::default();
        let mut rebuilt = Graph::default();
        for (i, &start) in jumps.iter().enumerate() {
            let engine = if i % 2 == 0 { &clean } else { &faulted };
            for step in start..start + 3 {
                engine.active_graph_into(step, &mut scratch);
                engine.graph_into(step, &mut rebuilt);
                assert_bit_identical(
                    &scratch.full,
                    &rebuilt,
                    &format!("jump {i} step {step}, seed {seed}, intensity {intensity}"),
                );
            }
        }
    }
}

#[test]
fn faulted_linkmap_applies_gate_and_weather_exactly() {
    let space = seed_space();
    let sim = space.sim();
    let faults = FaultModel::standard(42).with_intensity(2.0).compile(sim);
    let links = LinkMap::new(sim, sim.scene(), Some(&faults));
    for step in [380usize, 400, 720] {
        let w = faults.eta_factor(step);
        links.for_each_link(StepId(step), |a, b, eta| {
            assert!(
                faults.edge_up(step, a.index(), b.index()),
                "downed/flapped edge ({a}, {b}) leaked through at step {step}"
            );
            let (ha, hb) = (&sim.hosts()[a.index()], &sim.hosts()[b.index()]);
            if !(ha.is_ground() && hb.is_ground()) {
                let direct = sim.evaluator().fso_eta(ha, hb, step).unwrap();
                let crosses = ha.is_ground() || hb.is_ground();
                let want = if crosses { direct * w } else { direct };
                assert_eq!(eta.to_bits(), want.to_bits(), "({a}, {b}) at step {step}");
            }
        });
    }
}
