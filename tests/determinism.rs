//! Reproducibility: every experiment must be bit-stable across runs and
//! across the rayon-parallel execution paths.

use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::experiments::fig5::FidelityCurve;
use qntn::core::experiments::fig6::CoverageSweep;
use qntn::core::scenario::Qntn;
use qntn::geo::Epoch;
use qntn::net::requests::RequestWorkload;
use qntn::net::SimConfig;
use qntn::orbit::ephemeris::PAPER_STEP_S;
use qntn::orbit::{Ephemeris, PerturbationModel};

#[test]
fn fig5_curve_is_pure() {
    let a = FidelityCurve::paper();
    let b = FidelityCurve::paper();
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.fidelity, y.fidelity);
    }
}

#[test]
fn coverage_sweep_is_deterministic() {
    let q = Qntn::standard();
    let run = || CoverageSweep::run(&q, SimConfig::default(), &[12], PerturbationModel::TwoBody);
    let (a, b) = (run(), run());
    assert_eq!(a.points[0].coverage_percent, b.points[0].coverage_percent);
    assert_eq!(a.points[0].intervals, b.points[0].intervals);
}

#[test]
fn parallel_ephemeris_generation_is_bitwise_stable() {
    let props: Vec<_> = qntn::orbit::paper_constellation(8)
        .into_iter()
        .map(|k| qntn::orbit::Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
        .collect();
    let a = Ephemeris::generate_many(&props, Epoch::J2000, PAPER_STEP_S, 3600.0);
    let b = Ephemeris::generate_many(&props, Epoch::J2000, PAPER_STEP_S, 3600.0);
    for (x, y) in a.iter().zip(&b) {
        for (s, t) in x.samples().iter().zip(y.samples()) {
            assert_eq!(s.ecef, t.ecef);
        }
    }
}

#[test]
fn workloads_depend_only_on_seed() {
    let q = Qntn::standard();
    let air = AirGround::new(&q, SimConfig::default());
    let w1 = RequestWorkload::generate(air.sim(), 50, 123);
    let w2 = RequestWorkload::generate(air.sim(), 50, 123);
    assert_eq!(w1.requests, w2.requests);
}

#[test]
fn full_experiment_reports_are_stable() {
    let q = Qntn::standard();
    let e = FidelityExperiment::quick();
    let arch = SpaceGround::new(&q, 12, SimConfig::default(), PerturbationModel::TwoBody);
    let a = e.run_space_ground(&arch);
    let b = e.run_space_ground(&arch);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.coverage_percent, b.coverage_percent);
}
