//! Differential and monotonicity property tests for the overload layer.
//!
//! The overload controller (`qntn::serve::overload`) has two headline
//! contracts, both pinned here for *arbitrary* constellations, workloads
//! and fault masks rather than hand-picked fixtures:
//!
//! 1. **The zero-config differential contract** — with
//!    [`OverloadPolicy::disabled`] the controller reproduces the plain
//!    capacity-admitted serve (with a model) and the hold path (without
//!    one) **bit for bit**, clean and faulted.
//! 2. **Shed monotonicity** — on the single-attempt path (no retry
//!    feedback into the agenda), shed counts never decrease as offered
//!    load grows (prefix workloads) or as fault intensity grows (nested
//!    fault schedules shrinking the live budget).
//!
//! Case counts are small by default so `cargo test` stays fast; the
//! nightly CI job sets `PROPTEST_CASES=2048` to deepen every block.

use proptest::prelude::*;
use qntn::geo::{Epoch, Geodetic};
use qntn::net::capacity::CapacityModel;
use qntn::net::faults::FaultModel;
use qntn::net::{Host, QuantumNetworkSim, RetryPolicy, SimConfig, SweepEngine};
use qntn::orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use qntn::routing::RouteMetric;
use qntn::serve::{
    generate, ingest, serve_full_with_holds, serve_overload, serve_with_admission, HoldPolicy,
    OverloadPolicy, RequestQueue, ShedPolicy, WorkloadKind,
};
use std::sync::Arc;

/// `ProptestConfig` with `n` cases, overridable via `PROPTEST_CASES`
/// (nightly CI runs this suite with `PROPTEST_CASES=2048`).
fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

/// Three LANs of ground nodes plus an `n_sats` Walker shell — the smallest
/// shape on which inter-LAN serving is non-trivial (see `tests/timexp.rs`).
fn sim_with(n_sats: usize, steps: usize) -> QuantumNetworkSim {
    let mut hosts = vec![
        Host::ground(
            "TTU-0",
            0,
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            1.2,
        ),
        Host::ground(
            "TTU-1",
            0,
            Geodetic::from_deg(36.1751, -85.5067, 300.0),
            1.2,
        ),
        Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
        Host::ground(
            "EPB-0",
            2,
            Geodetic::from_deg(35.04159, -85.2799, 200.0),
            1.2,
        ),
    ];
    let props: Vec<Propagator> = paper_constellation(n_sats)
        .into_iter()
        .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
        .collect();
    let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
    for (i, eph) in ephs.into_iter().enumerate() {
        hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
    }
    QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
}

fn queue_for(sim: &QuantumNetworkSim, kind: WorkloadKind, n: usize, seed: u64) -> RequestQueue {
    let stream = generate(sim, kind, n, seed);
    let (queue, _rejected) = ingest(sim.hosts().len(), sim.steps(), &stream);
    queue
}

/// The single-attempt retry policy: no backoff, so no retry dynamics feed
/// back into the agenda and shed monotonicity holds by construction.
fn single_attempt() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        backoff_steps: 0,
        deadline_steps: 20,
    }
}

proptest! {
    #![proptest_config(cases_or(10))]

    /// Zero-config contract against the capacity-admitted baseline, for
    /// arbitrary fault masks and pair-generation rates.
    #[test]
    fn disabled_overload_equals_the_admission_serve_bitwise(
        n_sats in 2usize..5,
        steps in 24usize..40,
        n_requests in 50usize..150,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        intensity in 0.0..3.0f64,
        rate_ix in 0usize..3,
    ) {
        let sim = sim_with(n_sats, steps);
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(&sim),
        );
        let engine = SweepEngine::new(&sim).with_faults(faults);
        let queue = queue_for(&sim, WorkloadKind::Hotspot, n_requests, seed);
        let policy = RetryPolicy::standard();
        let metric = RouteMetric::PaperInverseEta;
        let model = CapacityModel {
            attempt_rate_hz: [0.05, 0.5, 5.0][rate_ix],
            window_s: 30.0,
        };
        let base = serve_with_admission(&engine, &queue, policy, metric, model);
        let out = serve_overload(
            &engine,
            &queue,
            policy,
            metric,
            Some(model),
            &HoldPolicy::disabled(),
            &OverloadPolicy::disabled(),
        );
        prop_assert_eq!(&out.outcomes, &base.outcomes);
        prop_assert_eq!(out.congestion_deferrals, base.congestion_deferrals);
        prop_assert_eq!(out.served_count(), base.served_count());
        prop_assert_eq!(out.shed_count(), 0);
        prop_assert_eq!(out.budget_deferrals, 0);
    }

    /// Zero-config contract against the uncapacitated hold path, at zero
    /// and nonzero memory horizons, clean and faulted.
    #[test]
    fn disabled_overload_equals_the_hold_path_bitwise(
        n_sats in 2usize..5,
        steps in 24usize..40,
        horizon in 0usize..5,
        n_requests in 50usize..150,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        intensity in 0.0..3.0f64,
    ) {
        let sim = sim_with(n_sats, steps);
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(&sim),
        );
        let engine = SweepEngine::new(&sim).with_faults(faults);
        let queue = queue_for(&sim, WorkloadKind::Poisson, n_requests, seed);
        let policy = RetryPolicy::standard();
        let metric = RouteMetric::PaperInverseEta;
        let hold = if horizon == 0 {
            HoldPolicy::disabled()
        } else {
            HoldPolicy::with_horizon(horizon)
        };
        let base = serve_full_with_holds(&engine, &queue, policy, metric, &hold);
        let out = serve_overload(
            &engine,
            &queue,
            policy,
            metric,
            None,
            &hold,
            &OverloadPolicy::disabled(),
        );
        prop_assert_eq!(&out.outcomes, &base);
        prop_assert_eq!(out.shed_count(), 0);
        prop_assert_eq!(out.congestion_deferrals, 0);
    }

    /// On the single-attempt path, growing the offered load (a prefix
    /// workload: the smaller stream is the first `n` requests of the
    /// larger) never decreases the shed count.
    #[test]
    fn shed_counts_are_monotone_in_offered_load(
        n_sats in 2usize..5,
        steps in 24usize..40,
        seed in any::<u64>(),
        shed_seed in any::<u64>(),
        utilization in 0.05..0.5f64,
        n_small in 40usize..120,
        extra in 1usize..150,
    ) {
        let sim = sim_with(n_sats, steps);
        let engine = SweepEngine::new(&sim);
        let policy = single_attempt();
        let metric = RouteMetric::PaperInverseEta;
        let overload = OverloadPolicy {
            shed: ShedPolicy { utilization, seed: shed_seed },
            ..OverloadPolicy::disabled()
        };
        let shed_at = |n: usize| {
            let queue = queue_for(&sim, WorkloadKind::Uniform, n, seed);
            serve_overload(
                &engine,
                &queue,
                policy,
                metric,
                None,
                &HoldPolicy::disabled(),
                &overload,
            )
            .shed_count()
        };
        let small = shed_at(n_small);
        let big = shed_at(n_small + extra);
        prop_assert!(
            big >= small,
            "offered {} shed {} but offered {} shed {}",
            n_small, small, n_small + extra, big
        );
    }

    /// On the single-attempt path, growing the fault intensity (nested
    /// schedules: every fault at intensity i is present at j >= i) never
    /// decreases the shed count — dead hosts shrink the live budget.
    #[test]
    fn shed_counts_are_monotone_in_fault_intensity(
        n_sats in 2usize..5,
        steps in 24usize..40,
        n_requests in 50usize..150,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        shed_seed in any::<u64>(),
        utilization in 0.05..0.5f64,
        lo in 0.0..4.0f64,
        delta in 0.0..4.0f64,
    ) {
        let sim = sim_with(n_sats, steps);
        let queue = queue_for(&sim, WorkloadKind::Uniform, n_requests, seed);
        let policy = single_attempt();
        let metric = RouteMetric::PaperInverseEta;
        let overload = OverloadPolicy {
            shed: ShedPolicy { utilization, seed: shed_seed },
            ..OverloadPolicy::disabled()
        };
        let hi = (lo + delta).min(FaultModel::INTENSITY_CAP);
        let shed_at = |intensity: f64| {
            let engine = SweepEngine::new(&sim).with_faults(Arc::new(
                FaultModel::standard(fault_seed)
                    .with_intensity(intensity)
                    .compile(&sim),
            ));
            serve_overload(
                &engine,
                &queue,
                policy,
                metric,
                None,
                &HoldPolicy::disabled(),
                &overload,
            )
            .shed_count()
        };
        let at_lo = shed_at(lo);
        let at_hi = shed_at(hi);
        prop_assert!(
            at_hi >= at_lo,
            "intensity {} shed {} but intensity {} shed {}",
            lo, at_lo, hi, at_hi
        );
    }
}
