//! Golden regression tests pinning the Table III reproduction.
//!
//! PR 1 made the sweep fast; these tests make it *safe to keep making it
//! fast*: the headline numbers (coverage %, served %, mean fidelity for
//! the 6/54/108-satellite constellations and the HAP) are pinned to the
//! values this repository reproduces, within ±0.01. Any perf refactor
//! that silently changes a graph, a workload draw, or an aggregation will
//! trip these before it ships.
//!
//! Two tiers:
//! - The *quick* goldens always run. They use the exact `reproduce
//!   --quick` workload (20 sampled steps × 25 requests, seed 2024), small
//!   enough for every `cargo test`.
//! - The *paper* goldens (100 × 100, the full Table III workload) are
//!   `#[ignore]`d; the nightly CI job runs them with `--ignored`.
//!
//! The golden constants were measured from this repository, not copied
//! from the paper; the paper's published values (108 satellites →
//! 55.17 % coverage / 57.75 % served, air–ground → 100 % / 100 %) are
//! asserted as a looser sanity envelope in the paper-tier tests. A pinned
//! constant moving is not necessarily a bug — but it must be a *decision*,
//! with the constant updated in the same commit as the physics change.

use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::{ArchReport, FidelityExperiment};
use qntn::core::scenario::Qntn;
use qntn::net::faults::FaultModel;
use qntn::net::{SimConfig, SweepEngine};
use qntn::orbit::PerturbationModel;
use std::sync::Arc;

const TOL: f64 = 0.01;

/// One pinned row: (coverage %, served %, F end-to-end, F per-link).
struct Golden {
    coverage_percent: f64,
    served_percent: f64,
    mean_fidelity: f64,
    mean_link_fidelity: f64,
}

fn assert_matches(r: &ArchReport, g: &Golden, ctx: &str) {
    for (name, got, want) in [
        ("coverage_percent", r.coverage_percent, g.coverage_percent),
        ("served_percent", r.served_percent, g.served_percent),
        ("mean_fidelity", r.mean_fidelity, g.mean_fidelity),
        (
            "mean_link_fidelity",
            r.mean_link_fidelity,
            g.mean_link_fidelity,
        ),
    ] {
        assert!(
            (got - want).abs() <= TOL,
            "{ctx}: {name} drifted: got {got:.6}, pinned {want:.6} (±{TOL})"
        );
    }
}

fn quick_experiment() -> FidelityExperiment {
    // Identical to the `reproduce --quick` table3 workload.
    FidelityExperiment {
        sampled_steps: 20,
        requests_per_step: 25,
        ..FidelityExperiment::paper()
    }
}

/// Run the space–ground experiment for each prefix size, sharing one
/// 108-satellite ephemeris generation (exactly how the constellation
/// sweep does it).
fn space_reports(e: &FidelityExperiment, sizes: &[usize]) -> Vec<ArchReport> {
    let q = Qntn::standard();
    let config = SimConfig::default();
    let eph = SpaceGround::ephemerides(108, PerturbationModel::TwoBody);
    sizes
        .iter()
        .map(|&n| {
            let arch = SpaceGround::from_ephemerides(&q, eph[..n].to_vec(), config);
            e.run_space_ground(&arch)
        })
        .collect()
}

#[test]
fn quick_goldens_space_ground() {
    let pinned = [
        (
            6,
            Golden {
                coverage_percent: 5.0,
                served_percent: 5.0,
                mean_fidelity: 0.920738,
                mean_link_fidelity: 0.958663,
            },
        ),
        (
            54,
            Golden {
                coverage_percent: 30.0,
                served_percent: 31.8,
                mean_fidelity: 0.885469,
                mean_link_fidelity: 0.938879,
            },
        ),
        (
            108,
            Golden {
                coverage_percent: 55.0,
                served_percent: 56.8,
                mean_fidelity: 0.897905,
                mean_link_fidelity: 0.945860,
            },
        ),
    ];
    let sizes: Vec<usize> = pinned.iter().map(|(n, _)| *n).collect();
    let reports = space_reports(&quick_experiment(), &sizes);
    for ((n, golden), report) in pinned.iter().zip(&reports) {
        assert_matches(report, golden, &format!("space-ground, {n} sats (quick)"));
    }
}

#[test]
fn quick_goldens_air_ground() {
    let q = Qntn::standard();
    let r = quick_experiment().run_air_ground(&AirGround::standard(&q));
    assert_matches(
        &r,
        &Golden {
            coverage_percent: 100.0,
            served_percent: 100.0,
            mean_fidelity: 0.985867,
            mean_link_fidelity: 0.992883,
        },
        "air-ground (quick)",
    );
}

#[test]
fn zero_intensity_faults_leave_the_quick_goldens_byte_identical() {
    // The acceptance criterion made executable: with `FaultModel::none()`
    // attached, the engine's graphs — and therefore every downstream
    // artifact — are byte-identical to the fault-free run. Checked here on
    // the golden workload's own simulators, down to the f64 bit patterns.
    let q = Qntn::standard();
    let config = SimConfig::default();
    let air = AirGround::standard(&q);
    let eph = SpaceGround::ephemerides(12, PerturbationModel::TwoBody);
    let space = SpaceGround::from_ephemerides(&q, eph, config);
    for (name, sim) in [("air", air.sim()), ("space-12", space.sim())] {
        let none = Arc::new(FaultModel::none().compile(sim));
        assert!(
            none.is_identity(),
            "{name}: zero intensity must be identity"
        );
        let clean = SweepEngine::new(sim);
        let masked = SweepEngine::new(sim).with_faults(none);
        for step in (0..sim.steps()).step_by(293) {
            let a = clean.graph_at(step);
            let b = masked.graph_at(step);
            assert_eq!(a.edge_count(), b.edge_count(), "{name} step {step}");
            for ((ua, va, ea), (ub, vb, eb)) in a.edges().zip(b.edges()) {
                assert_eq!((ua, va), (ub, vb), "{name} step {step}: edge order");
                assert_eq!(
                    ea.to_bits(),
                    eb.to_bits(),
                    "{name} step {step}: η bits differ on ({ua},{va})"
                );
            }
        }
        let steps: Vec<usize> = (0..sim.steps()).step_by(144).collect();
        let metric = qntn::routing::RouteMetric::PaperInverseEta;
        assert_eq!(
            clean.sweep(&steps, 25, 2024, metric),
            masked.sweep(&steps, 25, 2024, metric),
            "{name}: sweep stats must not move under an identity mask"
        );
    }
}

#[test]
#[ignore = "full paper workload (Table III at 100x100); run with --ignored"]
fn paper_goldens_space_ground() {
    // Paper Table III: 108 satellites -> 55.17% coverage, 57.75% served.
    // The reproduction lands within a few points (sampled-step coverage,
    // independent workload draws); the tight ±0.01 pin is against the
    // repository's own measured values.
    let pinned = [
        (
            6,
            Golden {
                coverage_percent: 4.0,
                served_percent: 4.0,
                mean_fidelity: 0.901429,
                mean_link_fidelity: 0.947938,
            },
        ),
        (
            54,
            Golden {
                coverage_percent: 26.0,
                served_percent: 26.96,
                mean_fidelity: 0.895524,
                mean_link_fidelity: 0.944510,
            },
        ),
        (
            108,
            Golden {
                coverage_percent: 58.0,
                served_percent: 59.85,
                mean_fidelity: 0.895077,
                mean_link_fidelity: 0.944254,
            },
        ),
    ];
    let sizes: Vec<usize> = pinned.iter().map(|(n, _)| *n).collect();
    let reports = space_reports(&FidelityExperiment::paper(), &sizes);
    for ((n, golden), report) in pinned.iter().zip(&reports) {
        assert_matches(report, golden, &format!("space-ground, {n} sats (paper)"));
    }
    // Sanity envelope against the published Table III.
    let r108 = reports.last().unwrap();
    assert!(
        (r108.coverage_percent - 55.17).abs() < 5.0,
        "coverage far from the paper's 55.17%: {}",
        r108.coverage_percent
    );
    assert!(
        (r108.served_percent - 57.75).abs() < 5.0,
        "served far from the paper's 57.75%: {}",
        r108.served_percent
    );
}

#[test]
#[ignore = "full paper workload (Table III at 100x100); run with --ignored"]
fn paper_goldens_air_ground() {
    // Paper Table III: air-ground -> 100% coverage, 100% served, F = 0.98.
    let q = Qntn::standard();
    let r = FidelityExperiment::paper().run_air_ground(&AirGround::standard(&q));
    assert_matches(
        &r,
        &Golden {
            coverage_percent: 100.0,
            served_percent: 100.0,
            mean_fidelity: 0.985871,
            mean_link_fidelity: 0.992885,
        },
        "air-ground (paper)",
    );
    assert!(
        (r.mean_fidelity - 0.98).abs() < TOL,
        "paper quotes F = 0.98"
    );
}
