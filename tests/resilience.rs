//! Property tests over the resilience layer: checkpoint frames must
//! round-trip bit-exactly and reject any single-byte corruption, and the
//! crash-injection harness must prove the headline invariant of the sweep
//! runtime — *interrupted-then-resumed ≡ uninterrupted, bit-identical* —
//! for arbitrary kill points, chunk sizes and fault seeds, not just the
//! hand-picked ones in unit tests.
//!
//! Case counts are small by default so `cargo test` stays fast; the
//! nightly CI job sets `PROPTEST_CASES=2048` to deepen every block.

use proptest::prelude::*;
use qntn::common::{frame, CancelToken, QntnError, RunControl};
use qntn::geo::{Epoch, Geodetic};
use qntn::net::faults::FaultModel;
use qntn::net::runtime::{run_steps, PanicPolicy, RunPolicy};
use qntn::net::{Host, QuantumNetworkSim, SimConfig, SweepEngine};
use qntn::orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// `ProptestConfig` with `n` cases, overridable via `PROPTEST_CASES`
/// (nightly CI runs this suite with `PROPTEST_CASES=2048`).
fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "qntn_resilience_{}_{}_{tag}.ckpt",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One small three-LAN, four-satellite day shared by every crash-injection
/// case (simulator construction dominates otherwise; the engine and fault
/// mask stay per-case).
fn shared_sim() -> &'static QuantumNetworkSim {
    static SIM: OnceLock<QuantumNetworkSim> = OnceLock::new();
    SIM.get_or_init(|| {
        let steps = 96;
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground(
                "TTU-1",
                0,
                Geodetic::from_deg(36.1751, -85.5067, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
        ];
        let props: Vec<Propagator> = paper_constellation(4)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
        for (i, eph) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    })
}

proptest! {
    #![proptest_config(cases_or(24))]

    #[test]
    fn checkpoint_frames_round_trip_bit_exactly(
        words in prop::collection::vec(any::<u64>(), 0usize..48),
        version in 1u64..9,
    ) {
        let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = temp_path("roundtrip");
        frame::write_frame_atomic(&path, version as u32, &payload)
            .map_err(|e| e.to_string())?;
        let back = frame::read_frame(&path, version as u32);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.map_err(|e| e.to_string())?, payload);
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(
        words in prop::collection::vec(any::<u64>(), 1usize..32),
        pos_seed in any::<u64>(),
        flip in 1u64..256,
    ) {
        let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = temp_path("corrupt");
        frame::write_frame_atomic(&path, 1, &payload).map_err(|e| e.to_string())?;
        let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip as u8;
        // qntn-lint: allow(atomic-writes-only) -- writes a deliberately corrupt frame to prove read_frame rejects it
        std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;
        let result = frame::read_frame(&path, 1);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(result, Err(QntnError::CorruptFrame { .. })),
            "flip of byte {pos} by {flip:#04x} was accepted"
        );
    }
}

proptest! {
    #![proptest_config(cases_or(8))]

    #[test]
    fn interrupted_then_resumed_is_bit_identical_under_faults(
        kill_after in 1usize..90,
        chunk in 1usize..24,
        fault_seed in any::<u64>(),
        intensity in 0.0..4.0f64,
    ) {
        let sim = shared_sim();
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(sim),
        );
        let engine = SweepEngine::new(sim).with_faults(faults);
        let steps: Vec<usize> = (0..sim.steps()).collect();
        let uninterrupted = engine.connectivity_flags();

        let fingerprint =
            frame::fingerprint(&[fault_seed, intensity.to_bits(), sim.steps() as u64]);
        let ckpt = temp_path("crash");

        // Phase 1: run with a deterministic crash injection — cancel after
        // `kill_after` step evaluations; the runtime stops at the next
        // chunk boundary with a checkpoint on disk.
        let token = CancelToken::new();
        let evals = AtomicUsize::new(0);
        let interrupted_policy = RunPolicy::default()
            .with_chunk_steps(chunk)
            .with_checkpoint(&ckpt)
            .with_control(RunControl::unlimited().with_cancel(token.clone()));
        let partial = run_steps(&engine, &steps, fingerprint, &interrupted_policy, |scratch, step| {
            if evals.fetch_add(1, Ordering::SeqCst) + 1 >= kill_after {
                token.cancel();
            }
            engine.active_graph_into(step, scratch);
            engine.sim().lans_interconnected(&scratch.active)
        })
        .map_err(|e| e.to_string())?;
        prop_assert!(ckpt.exists(), "no checkpoint written");

        // Phase 2: resume without interference; the combined outputs must
        // equal the uninterrupted run's, bit for bit.
        let resume_policy = RunPolicy::default()
            .with_chunk_steps(chunk)
            .with_checkpoint(&ckpt);
        let full = run_steps(&engine, &steps, fingerprint, &resume_policy, |scratch, step| {
            engine.active_graph_into(step, scratch);
            engine.sim().lans_interconnected(&scratch.active)
        })
        .map_err(|e| e.to_string());
        std::fs::remove_file(&ckpt).ok();
        let full = full?;

        prop_assert_eq!(full.resumed_from, partial.completed, "resume offset");
        prop_assert!(full.is_clean());
        let outputs = full.into_clean_outputs().ok_or("incomplete resumed run")?;
        prop_assert_eq!(outputs, uninterrupted);
    }

    #[test]
    fn quarantine_isolates_a_panicking_step_under_faults(
        panic_step in 0usize..96,
        chunk in 1usize..24,
        fault_seed in any::<u64>(),
    ) {
        let sim = shared_sim();
        let faults = Arc::new(FaultModel::standard(fault_seed).with_intensity(1.0).compile(sim));
        let engine = SweepEngine::new(sim).with_faults(faults);
        let steps: Vec<usize> = (0..sim.steps()).collect();
        let uninterrupted = engine.connectivity_flags();

        let policy = RunPolicy::default()
            .with_chunk_steps(chunk)
            .with_panic_policy(PanicPolicy::Quarantine);
        let report = run_steps(&engine, &steps, 0, &policy, |scratch, step| {
            assert!(step != panic_step, "injected panic at step {step}");
            engine.active_graph_into(step, scratch);
            engine.sim().lans_interconnected(&scratch.active)
        })
        .map_err(|e| e.to_string())?;

        // The run completes, the poisoned step is quarantined with a
        // structured report, and every healthy step's output matches the
        // panic-free run bit for bit.
        prop_assert!(report.is_complete());
        prop_assert_eq!(report.panics.len(), 1);
        prop_assert_eq!(report.panics[0].step_range, (panic_step, panic_step));
        prop_assert!(report.panics[0].payload.contains("injected panic"));
        for (step, slot) in report.outputs.iter().enumerate() {
            if step == panic_step {
                prop_assert!(slot.is_none(), "panicked step has an output");
            } else {
                prop_assert_eq!(*slot, Some(uninterrupted[step]), "step {}", step);
            }
        }
    }

    #[test]
    fn fail_fast_checkpoints_the_healthy_prefix(
        panic_step in 8usize..96,
        chunk in 1usize..8,
    ) {
        let sim = shared_sim();
        let engine = SweepEngine::new(sim);
        let steps: Vec<usize> = (0..sim.steps()).collect();
        let ckpt = temp_path("failfast");

        let policy = RunPolicy::default()
            .with_chunk_steps(chunk)
            .with_checkpoint(&ckpt);
        let err = run_steps::<bool, _>(&engine, &steps, 5, &policy, |_, step| {
            assert!(step != panic_step, "boom at step {step}");
            true
        });
        prop_assert!(
            matches!(err, Err(QntnError::ChunkPanic { .. })),
            "fail-fast did not surface a ChunkPanic"
        );
        // The chunks before the poisoned one survive in the checkpoint, so
        // a fixed-up rerun does not repeat them.
        prop_assert!(ckpt.exists(), "no progress checkpoint written");
        let resumed = run_steps::<bool, _>(&engine, &steps, 5, &policy, |_, _| true)
            .map_err(|e| e.to_string());
        std::fs::remove_file(&ckpt).ok();
        let resumed = resumed?;
        prop_assert_eq!(resumed.resumed_from, (panic_step / chunk) * chunk);
        prop_assert!(resumed.is_clean());
    }
}
