//! Cross-checks *between* the extension experiments: each extension is
//! tested in isolation in its own module; these tests assert the relations
//! that must hold when they are combined.

use qntn::core::architecture::AirGround;
use qntn::core::experiments::congestion::CongestionSweep;
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::experiments::night::NightOps;
use qntn::core::experiments::purified_qkd;
use qntn::core::experiments::stability::StabilitySweep;
use qntn::core::scenario::Qntn;
use qntn::net::SimConfig;
use qntn::orbit::Twilight;
use qntn::quantum::channels::amplitude_damping;
use qntn::quantum::qkd::bbm92_key_fraction;
use qntn::quantum::state::bell_phi_plus;

/// Night-gated coverage can exceed neither the nominal coverage nor the
/// dark fraction, under every twilight convention.
#[test]
fn night_gating_is_an_intersection() {
    let q = Qntn::standard();
    for twilight in [Twilight::Horizon, Twilight::Astronomical] {
        let r = NightOps {
            twilight,
            satellites: 12,
        }
        .run(&q, SimConfig::default());
        assert!(r.space_night_percent <= r.space_nominal_percent + 1e-9);
        assert!(r.space_night_percent <= r.dark_percent + 1e-9);
        assert!(r.air_night_percent <= r.dark_percent + 1e-9);
    }
}

/// The stability sweep's zero-jitter point must agree with the plain
/// air-ground experiment (same seed, same workload).
#[test]
fn zero_jitter_equals_baseline() {
    let q = Qntn::standard();
    let experiment = FidelityExperiment::quick();
    let sweep = StabilitySweep::run(&q, &[0.0], experiment);
    let baseline = experiment.run_air_ground(&AirGround::standard(&q));
    let at_zero = &sweep.points[0].report;
    assert_eq!(
        at_zero.stats, baseline.stats,
        "zero jitter must be the identity"
    );
}

/// The congestion sweep's saturation point must reproduce the ideal model's
/// 100 % service (the "infinite queue capacity" limit).
#[test]
fn congestion_limit_recovers_ideal_model() {
    let q = Qntn::standard();
    let sweep = CongestionSweep::run(&q, &[1e6], 80, 3);
    assert!((sweep.points[0].served_percent - 100.0).abs() < 1e-9);
    assert_eq!(sweep.points[0].congestion_percent, 0.0);
}

/// The purified-QKD pump's round-zero key fractions must agree with the
/// QKD module evaluated directly on the same state.
#[test]
fn purified_qkd_round_zero_matches_qkd_module() {
    for eta in [0.85, 0.92, 0.99] {
        let out = purified_qkd::pump_until_key(eta, 0).expect("strong pairs carry raw key");
        assert_eq!(out.rounds, 0);
        let rho = amplitude_damping(eta)
            .on_qubit(1, 2)
            .apply(&bell_phi_plus().density());
        let direct = bbm92_key_fraction(&rho);
        assert!((out.key_fraction - direct).abs() < 1e-12, "eta {eta}");
    }
}

/// Key-per-raw-pair can never exceed the raw key fraction of a perfect
/// pair, and pumping strictly costs pairs.
#[test]
fn purification_economics_are_conservative() {
    for eta in [0.55, 0.65, 0.75] {
        if let Some(out) = purified_qkd::pump_until_key(eta, 8) {
            assert!(out.key_per_raw_pair <= 1.0);
            if out.rounds > 0 {
                assert!(out.raw_pairs_per_output > 1.9, "{out:?}");
                assert!(out.key_per_raw_pair < out.key_fraction);
            }
        }
    }
}

/// Darkness fractions are ordered by twilight convention everywhere the
/// night experiment reports them.
#[test]
fn twilight_ordering_in_reports() {
    let q = Qntn::standard();
    let config = SimConfig::default();
    let horizon = NightOps {
        twilight: Twilight::Horizon,
        satellites: 6,
    }
    .run(&q, config);
    let civil = NightOps {
        twilight: Twilight::Civil,
        satellites: 6,
    }
    .run(&q, config);
    let astro = NightOps {
        twilight: Twilight::Astronomical,
        satellites: 6,
    }
    .run(&q, config);
    assert!(horizon.dark_percent >= civil.dark_percent);
    assert!(civil.dark_percent >= astro.dark_percent);
    assert!(horizon.space_night_percent >= astro.space_night_percent);
}
