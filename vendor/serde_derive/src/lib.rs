//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! for downstream consumers, but nothing in-tree serializes through serde
//! (there is no `serde_json` and no bound `T: Serialize` anywhere). The
//! container building this repo has no network access to crates.io, so the
//! real proc-macro stack (syn/quote) is unavailable; these derives simply
//! expand to nothing, which is sufficient for every in-tree use.

use proc_macro::TokenStream;

/// `#[derive(Serialize)]`: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// `#[derive(Deserialize)]`: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
