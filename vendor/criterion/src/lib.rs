//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the bench harness uses (`bench_function`,
//! `benchmark_group`/`sample_size`/`finish`, `criterion_group!`,
//! `criterion_main!`, `black_box`) with a simple wall-clock measurement
//! loop. Output mimics criterion's `name  time: [lo mid hi]` lines so
//! log scrapers keep working. No statistics beyond min/median/max of the
//! timed batches, no HTML reports, no saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Batches to time (reported as [min median max]).
const BATCHES: usize = 5;

/// The per-benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    /// Measured mean per-iteration times of each batch, seconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, auto-scaling the iteration count to the target duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single iteration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (TARGET.as_secs_f64() / BATCHES as f64 / once.as_secs_f64()).clamp(1.0, 1e7) as u64;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / per_batch as f64);
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.4} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.4} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.4} ms", seconds * 1e3)
    } else {
        format!("{:.4} s", seconds)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{name:<40} time:   [no samples]");
        return;
    }
    s.sort_by(f64::total_cmp);
    let (lo, mid, hi) = (s[0], s[s.len() / 2], s[s.len() - 1]);
    println!(
        "{name:<40} time:   [{} {} {}]",
        fmt_time(lo),
        fmt_time(mid),
        fmt_time(hi)
    );
}

/// Top-level benchmark registry (one per `criterion_group!` function).
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Run and report one benchmark. `name` accepts `&str`/`String`,
    /// mirroring upstream's `impl Into<BenchmarkId>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), &mut f);
        self
    }

    /// Open a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    /// Accept (and ignore) CLI configuration, mirroring upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in auto-scales instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run and report one benchmark inside the group. `name` accepts
    /// `&str`/`String`, mirroring upstream's `impl Into<BenchmarkId>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, &mut f);
        self
    }

    /// Close the group (no-op).
    pub fn finish(self) {}
}

/// Mirrors `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
