//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives are
//! inert (see the sibling `serde_derive` stub); no code in this workspace
//! serializes through serde, so no impls are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never used as a bound here).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never used as a bound here).
pub trait Deserialize<'de> {}
