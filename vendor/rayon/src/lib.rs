//! Offline stand-in for `rayon`.
//!
//! Implements the subset of rayon's parallel-iterator API this workspace
//! uses (`par_iter`, `into_par_iter`, `map`, `map_init`, `flat_map_iter`,
//! `for_each`, `collect`, `sum`) on real OS threads via
//! `std::thread::scope`. Unlike
//! rayon there is no global pool: each parallel stage spawns a scoped
//! worker per available core and the workers pull items off a shared
//! cursor, so load balances dynamically. Results are reassembled in input
//! order, which makes every combinator deterministic — the property the
//! workspace's determinism tests assert.
//!
//! The executor is eager: `par_iter().map(f)` runs `f` over all items
//! immediately and `collect()` merely moves the finished buffer out. That
//! is semantically equivalent for the pure pipelines used here and keeps
//! the stand-in small.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads a parallel stage uses.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`current_num_threads`] scoped threads,
/// preserving input order in the output.
pub fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items move into per-slot cells; workers claim slots via an atomic
    // cursor (dynamic load balancing) and write results back by index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|c| c.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// An eagerly evaluated "parallel iterator": a buffer of items whose
/// combinators execute on scoped threads and keep input order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map_vec(self.items, f),
        }
    }

    /// Parallel map with worker-local state, mirroring rayon's `map_init`:
    /// `init` runs once per worker thread and the value is threaded mutably
    /// through every item that worker processes (scratch-buffer reuse).
    /// Order is preserved; results do not depend on the worker assignment.
    pub fn map_init<I, R, FI, F>(self, init: FI, f: F) -> ParIter<R>
    where
        I: Send,
        R: Send,
        FI: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> R + Sync,
    {
        let items = self.items;
        let n = items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            let mut state = init();
            return ParIter {
                items: items.into_iter().map(|x| f(&mut state, x)).collect(),
            };
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                        let r = f(&mut state, item);
                        *out[i].lock().unwrap() = Some(r);
                    }
                });
            }
        });
        ParIter {
            items: out
                .into_iter()
                .map(|c| c.into_inner().unwrap().expect("worker filled slot"))
                .collect(),
        }
    }

    /// Parallel map to per-item iterators, flattened in input order.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync,
        I::IntoIter: Iterator,
    {
        let nested = parallel_map_vec(self.items, |x| f(x).into_iter().collect::<Vec<_>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Parallel filter preserving order.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let kept = parallel_map_vec(self.items, |x| if f(&x) { Some(x) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_vec(self.items, f);
    }

    /// Gather into any `FromIterator` collection, in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum in input order (deterministic for floats).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<i64> = (0..1000i64).collect();
        let out: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> = vec![1usize, 2, 3]
            .into_par_iter()
            .flat_map_iter(|n| 0..n)
            .collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        let v: Vec<usize> = (0..500).collect();
        let out: Vec<usize> = v
            .clone()
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, x| {
                scratch.clear();
                scratch.extend(0..x % 7);
                x * 3 + scratch.len()
            })
            .collect();
        let expect: Vec<usize> = v.iter().map(|&x| x * 3 + x % 7).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
