//! Offline stand-in for `rand`.
//!
//! The workspace draws seeded, deterministic pseudo-random numbers in two
//! places (request generation and the heralded link layer), always through
//! `StdRng::seed_from_u64` + `random_range`. This stand-in provides exactly
//! that surface on top of xoshiro256++ seeded via SplitMix64 — a different
//! stream than upstream `rand`, but every consumer only relies on
//! determinism for a fixed seed, not on specific values.

use std::ops::Range;

/// Core RNG interface (the subset used here).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface mirroring `rand::SeedableRng` (only the `u64` entry
/// point is used in this workspace).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension mirroring `rand`'s `random_range`.
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (half-open).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform draw of a full-width value.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types drawable uniformly over their natural domain.
pub trait Standard {
    fn draw<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Map 64 random bits to a double in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges `random_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-53 for the spans used here (all tiny).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x), "{x}");
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
