//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace's property suites
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `any::<T>()`, `Just`, `prop::collection::vec`, and the `prop_map` /
//! `prop_filter` / `prop_filter_map` combinators.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! xoshiro-family RNG seeded from the test name and case index (every run
//! explores the same inputs — CI-stable by construction), and failing cases
//! are reported without shrinking. Regression files are not read. Like
//! upstream, the `PROPTEST_CASES` environment variable overrides the
//! default case count (the nightly CI job uses this to deepen the sweep).

pub mod collection;

/// Mirrors proptest's `prelude::prop` re-export of the crate root.
pub use crate as prop;

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    /// Upstream parity: the `PROPTEST_CASES` environment variable overrides
    /// the *default* case count. An explicit `with_cases(n)` still wins —
    /// suites that want env-scalable depth should consult
    /// [`env_case_count`] themselves (see `tests/synthetic_regions.rs`).
    pub fn env_case_count() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_case_count().unwrap_or(256),
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases (the upstream constructor).
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator feeding the strategies (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair; fully deterministic.
        pub fn for_case(test_hash: u64, case: u32) -> TestRng {
            TestRng {
                state: test_hash ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A double in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a over a test's name, used to decorrelate tests' input streams.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values. `gen` returns `None` when a filter
    /// rejects the draw; [`sample`] resamples a bounded number of times.
    pub trait Strategy {
        type Value;

        fn gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Map generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Reject values failing the predicate (the reason is unused).
        fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, _reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Combined filter + map (the reason is unused).
        fn prop_filter_map<R, O, F: Fn(Self::Value) -> Option<O>>(
            self,
            _reason: R,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Draw one accepted value, resampling past filter rejections.
    pub fn sample<S: Strategy + ?Sized>(s: &S, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            if let Some(v) = s.gen(rng) {
                return v;
            }
        }
        panic!("strategy rejected 10000 consecutive samples; filter too strict");
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen(rng).map(&self.f)
        }
    }

    /// `prop_filter` adapter.
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen(rng).filter(|v| (self.f)(v))
        }
    }

    /// `prop_filter_map` adapter.
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen(rng).and_then(&self.f)
        }
    }

    /// A type-erased strategy (reference-counted; cheap to clone).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> Option<T> {
            self.0.gen(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite doubles spanning a wide dynamic range.
            let mag = rng.unit_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag / 10.0)
        }
    }

    /// The strategy behind `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    // ---- range strategies ----

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                    debug_assert!(self.start < self.end, "empty range strategy");
                    Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    // 2^53 grid over [lo, hi]; both endpoints reachable.
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    Some(lo + (u as $t) * (hi - lo))
                }
            }
        )*};
    }

    impl_float_ranges!(f64, f32);

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                    debug_assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    Some(self.start.wrapping_add((rng.next_u64() % span) as $t))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return Some(lo.wrapping_add(rng.next_u64() as $t));
                    }
                    Some(lo.wrapping_add((rng.next_u64() % (span + 1)) as $t))
                }
            }
        )*};
    }

    impl_int_ranges!(usize, u64, u32, i64, i32, u8, i8);

    // ---- tuple strategies ----

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.gen(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    pub use crate::strategy::Arbitrary;
}

/// `proptest!` — run each enclosed `#[test] fn name(pat in strategy, ..)`
/// over `cases` deterministic random inputs. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let test_hash = $crate::test_runner::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(test_hash, case);
                    $(let $arg = $crate::strategy::sample(&($strat), &mut __proptest_rng);)+
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = result {
                        panic!(
                            "proptest case {}/{} of `{}` failed:\n{}",
                            case + 1,
                            cfg.cases,
                            stringify!($name),
                            message
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts just this case with a
/// message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*),
                file!(),
                line!()
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Discard the current case when an assumption fails. This stand-in treats
/// a failed assumption as a silently passing case (no global discard cap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}
