//! `prop::collection` — vec strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Accepted size arguments for [`vec()`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// A strategy producing `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.gen(rng)?);
        }
        Some(out)
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
