//! Satellite-pass explorer: propagate one Walker-Delta satellite for a day,
//! predict its passes over the three QNTN cities, and show how little of
//! the day a single LEO satellite can serve — the geometry behind Fig. 6.
//!
//! ```text
//! cargo run --release --example satellite_passes
//! ```

use qntn::core::architecture::default_epoch;
use qntn::core::scenario::Qntn;
use qntn::geo::Geodetic;
use qntn::orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn::orbit::{
    paper_constellation, ContactPlan, Ephemeris, PassPredictor, PerturbationModel, Propagator,
};

fn main() {
    let scenario = Qntn::standard();
    let epoch = default_epoch();

    // Satellite #0 of the paper's Table II (RAAN 0°, anomaly 0°).
    let elements = paper_constellation(1)[0];
    println!(
        "satellite: a = {:.0} km, i = {:.0}°, RAAN = {:.0}°, period = {:.1} min",
        elements.semi_major_m / 1000.0,
        elements.inclination.to_degrees(),
        elements.raan.to_degrees(),
        elements.period_s() / 60.0
    );

    let prop = Propagator::new(elements, epoch, PerturbationModel::J2Secular);
    let eph = Ephemeris::generate(&prop, epoch, PAPER_STEP_S, PAPER_DURATION_S);
    println!(
        "movement sheet: {} samples at {} s cadence (STK-style)\n",
        eph.len(),
        eph.step_s()
    );

    // Passes over each city above the paper's pi/9 elevation mask.
    let mask = std::f64::consts::PI / 9.0;
    for (i, lan) in scenario.lans.iter().enumerate() {
        let site: Geodetic = scenario.lan_centroid(i).with_alt(300.0);
        let predictor = PassPredictor::new(site, mask);
        let passes = predictor.passes(&eph);
        let frac = predictor.visibility_fraction(&eph);
        println!(
            "{}: {} passes above {:.0}°, visible {:.2}% of the day",
            lan.name,
            passes.len(),
            mask.to_degrees(),
            frac * 100.0
        );
        for (k, p) in passes.iter().enumerate() {
            println!(
                "  pass {k}: t = {:>7.0}..{:>7.0} s  ({:.1} min)",
                p.start_s,
                p.end_s,
                p.duration_s() / 60.0
            );
        }
    }

    // Ground-track sample.
    println!("\nground track (every 2 h):");
    for s in eph.samples().iter().step_by(240) {
        println!(
            "  t = {:>6.0} s: ({:>7.2}, {:>8.2}) alt {:>6.1} km",
            s.t_s,
            s.geodetic.lat_deg(),
            s.geodetic.lon_deg(),
            s.geodetic.alt_m / 1000.0
        );
    }

    // The operations view: a contact plan for Cookeville over the first 24
    // satellites of Table II.
    println!("\ncontact plan, Cookeville, 24 satellites (first 10 contacts):");
    let props: Vec<Propagator> = paper_constellation(24)
        .into_iter()
        .map(|k| Propagator::new(k, epoch, PerturbationModel::TwoBody))
        .collect();
    let ephs = Ephemeris::generate_many(&props, epoch, PAPER_STEP_S, PAPER_DURATION_S);
    let site = scenario.lan_centroid(0).with_alt(300.0);
    let plan = ContactPlan::build(site, &ephs, mask);
    for c in plan.contacts.iter().take(10) {
        println!(
            "  SAT-{:03}  {:>7.0}..{:>7.0} s  ({:.1} min)",
            c.satellite,
            c.window.start_s,
            c.window.end_s,
            c.window.duration_s() / 60.0
        );
    }
    println!(
        "  {} contacts, any-satellite availability {:.1}%, longest outage {:.0} min,\n  mean contact {:.1} min",
        plan.contacts.len(),
        plan.availability_fraction() * 100.0,
        plan.max_gap_s() / 60.0,
        plan.mean_contact_s() / 60.0
    );

    println!(
        "\na single satellite sees each city for well under 1% of the day —\n\
         which is why the paper needs 108 of them for 55% coverage, while a\n\
         single stationary HAP covers 100%."
    );
}
