//! Entanglement routing walkthrough: run the paper's Algorithm 1
//! (distance-vector Bellman–Ford on cost 1/(η+ε)) on the live air-ground
//! network, inspect a routing table, distribute a Bell pair end-to-end, and
//! compare routing metrics.
//!
//! ```text
//! cargo run --release --example entanglement_routing
//! ```

use qntn::core::architecture::AirGround;
use qntn::core::scenario::Qntn;
use qntn::net::entanglement::distribute;
use qntn::net::SimConfig;
use qntn::routing::{DistanceVectorRouter, RouteMetric};

fn main() {
    let scenario = Qntn::standard();
    let air = AirGround::new(&scenario, SimConfig::default());
    let sim = air.sim();
    let graph = sim.active_graph_at(0);
    println!(
        "air-ground network: {} nodes, {} links above threshold",
        graph.node_count(),
        graph.edge_count()
    );

    // The paper's Algorithm 1: per-node routing tables, N-1 exchange rounds.
    let router = DistanceVectorRouter::build(&graph, RouteMetric::PaperInverseEta);

    // Inspect TTU-0's routing table entries toward a few destinations.
    let ttu0 = sim.lan_members(0)[0];
    let ornl0 = sim.lan_members(1)[0];
    let epb0 = sim.lan_members(2)[0];
    let hap = air.hap_node();
    println!(
        "\nrouting table of {} (node {ttu0}):",
        sim.hosts()[ttu0].name
    );
    for &dest in &[ttu0, sim.lan_members(0)[1], hap, ornl0, epb0] {
        let entry = router.table(ttu0)[dest];
        println!(
            "  -> {:<8} cost {:>10.4}  via {:?}",
            sim.hosts()[dest].name,
            entry.cost,
            entry.via.map(|v| sim.hosts()[v].name.clone())
        );
    }

    // Distribute a Bell pair TTU-0 -> EPB-0.
    let d = distribute(&graph, ttu0, epb0, RouteMetric::PaperInverseEta)
        .expect("air-ground always routes");
    let names: Vec<&str> = d
        .path
        .iter()
        .map(|&n| sim.hosts()[n].name.as_str())
        .collect();
    println!("\nTTU-0 -> EPB-0 via {}", names.join(" -> "));
    println!("  end-to-end transmissivity: {:.4}", d.eta);
    println!(
        "  entanglement fidelity:     {:.4} (sqrt convention)",
        d.fidelity
    );
    println!("  Jozsa fidelity:            {:.4}", d.fidelity_jozsa);
    println!("  mean per-link fidelity:    {:.4}", d.mean_link_fidelity);

    // The Algorithm 1 route agrees with the classic formulations.
    let table_route = router.route(&graph, ttu0, epb0).unwrap();
    assert_eq!(
        table_route.nodes, d.path,
        "Algorithm 1 and classic BF agree"
    );

    // Metric comparison (ablation A1): the paper metric vs max-product.
    println!("\nrouting-metric comparison for TTU-0 -> ORNL-0:");
    for metric in [
        RouteMetric::PaperInverseEta,
        RouteMetric::NegLogEta,
        RouteMetric::HopCount,
    ] {
        let d = distribute(&graph, ttu0, ornl0, metric).unwrap();
        println!(
            "  {:<24} hops {}  eta {:.4}  fidelity {:.4}",
            metric.label(),
            d.path.len() - 1,
            d.eta,
            d.fidelity
        );
    }
    println!(
        "\non the HAP star topology every metric finds the same 2-hop relay;\n\
         the metrics diverge on satellite graphs with several candidates\n\
         (see the `ablations` bench)."
    );
}
