//! Beyond Tennessee: the paper's stated goal is to "pave the way for other
//! networks to be built based on our analysis". This example generates
//! synthetic multi-city regions and asks how both architectures scale with
//! region size and city count.
//!
//! ```text
//! cargo run --release --example other_regions
//! ```

use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::scenario::SyntheticRegion;
use qntn::net::SimConfig;
use qntn::orbit::PerturbationModel;

fn main() {
    let experiment = FidelityExperiment {
        sampled_steps: 8,
        requests_per_step: 30,
        ..FidelityExperiment::quick()
    };

    println!("== one central HAP vs region radius (3 cities, seed 42) ==");
    println!(
        "{:>10} | {:>8} {:>9} | {:>8} {:>9}",
        "radius_km", "air_srv%", "air_F", "spc_srv%", "spc_F"
    );
    for radius_km in [60.0, 100.0, 150.0, 220.0, 300.0, 400.0, 550.0] {
        let region = SyntheticRegion {
            region_radius_m: radius_km * 1000.0,
            ..SyntheticRegion::tennessee_like()
        };
        let q = region.generate(42);
        let air = AirGround::standard(&q);
        let ra = experiment.run_air_ground(&air);
        let space = SpaceGround::new(&q, 36, SimConfig::default(), PerturbationModel::TwoBody);
        let rs = experiment.run_space_ground(&space);
        println!(
            "{radius_km:>10.0} | {:>8.1} {:>9.4} | {:>8.1} {:>9.4}",
            ra.served_percent, ra.mean_fidelity, rs.served_percent, rs.mean_fidelity
        );
    }
    println!(
        "(the HAP's 1.2 m ground receivers keep its links above threshold to\n\
         surprisingly long slants; what decays first is fidelity — from 0.99\n\
         at 60 km to ~0.9 by a 300 km radius — and the served fraction only\n\
         collapses once slant elevations sink into the thick atmosphere at\n\
         several hundred km. The satellite numbers barely move: LEO coverage\n\
         is regional by construction. Tennessee sits deep inside the HAP's\n\
         comfort zone, which is exactly why the paper's comparison lands the\n\
         way it does.)"
    );

    println!("\n== city count at fixed 100 km radius ==");
    println!(
        "{:>7} {:>7} | {:>8} {:>9} | {:>8}",
        "cities", "nodes", "air_srv%", "air_F", "spc_srv%"
    );
    for cities in [2usize, 3, 4, 6] {
        let region = SyntheticRegion {
            cities,
            nodes_per_city: 6,
            ..SyntheticRegion::tennessee_like()
        };
        let q = region.generate(7);
        let air = AirGround::standard(&q);
        let ra = experiment.run_air_ground(&air);
        let space = SpaceGround::new(&q, 36, SimConfig::default(), PerturbationModel::TwoBody);
        let rs = experiment.run_space_ground(&space);
        println!(
            "{cities:>7} {:>7} | {:>8.1} {:>9.4} | {:>8.1}",
            q.node_count(),
            ra.served_percent,
            ra.mean_fidelity,
            rs.served_percent
        );
    }
    println!(
        "\nmore cities inside the same footprint cost the HAP nothing (star\n\
         topology) and the constellation little (any relay covers the whole\n\
         region at once) — the binding constraint is region *radius*, not\n\
         city count."
    );
}
