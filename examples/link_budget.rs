//! Link-budget explorer: itemized transmissivity budgets for every link
//! class in QNTN — fiber, HAP downlinks, satellite downlinks across the
//! elevation range, and inter-satellite links.
//!
//! ```text
//! cargo run --release --example link_budget
//! ```

use qntn::channel::fiber::FiberChannel;
use qntn::channel::fso::{FsoChannel, FsoGeometry};
use qntn::channel::params::FsoParams;
use qntn::geo::look::slant_range_spherical;
use qntn::net::linkeval::PAPER_THRESHOLD;

fn main() {
    let params = FsoParams::ideal();

    println!("== Fiber (0.15 dB/km, the paper's Eq. 1) ==");
    println!("{:>10} {:>10} {:>9}", "length_km", "loss_dB", "eta");
    for km in [0.3, 1.0, 5.0, 10.0, 20.0, 50.0, 111.0, 134.0] {
        let f = FiberChannel::paper(km * 1000.0);
        let marker = if f.transmissivity() >= PAPER_THRESHOLD {
            ""
        } else {
            "   < threshold"
        };
        println!(
            "{km:>10.1} {:>10.2} {:>9.4}{marker}",
            f.loss_db(),
            f.transmissivity()
        );
    }
    let reach = FiberChannel::max_length_for_threshold(0.15, PAPER_THRESHOLD) / 1000.0;
    println!("fiber reach at eta >= 0.7: {reach:.1} km — direct inter-city fiber (~110-135 km) is hopeless\n");

    println!("== Satellite downlink (500 km, 1.2 m apertures) vs elevation ==");
    println!(
        "{:>9} {:>9} {:>8} {:>8} {:>8} {:>8}  link?",
        "elev_deg", "range_km", "eta_th", "eta_atm", "eta_eff", "eta"
    );
    let r_earth = 6_371_000.0;
    for elev_deg in [10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 70.0, 90.0] {
        let elev = f64::to_radians(elev_deg);
        let range = slant_range_spherical(r_earth, 500_000.0, elev);
        let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, range, elev);
        let b = FsoChannel::new(geom, params).budget();
        let up = if b.eta_total() >= PAPER_THRESHOLD {
            "yes"
        } else {
            "no"
        };
        println!(
            "{elev_deg:>9.0} {:>9.0} {:>8.4} {:>8.4} {:>8.4} {:>8.4}  {up}",
            range / 1000.0,
            b.eta_th,
            b.eta_atm,
            b.eta_eff,
            b.eta_total()
        );
    }
    println!("the 0.7 threshold is crossed in the mid-20s of elevation — the\neffective mask behind the paper's ~55% coverage at 108 satellites\n");

    println!("== HAP downlink (30 km, 0.3 m transmit aperture) to the three cities ==");
    for (city, range_km, elev_deg) in [
        ("Cookeville (TTU)", 78.0, 22.5),
        ("Oak Ridge (ORNL)", 80.0, 22.0),
        ("Chattanooga (EPB)", 77.0, 22.8),
    ] {
        let geom = FsoGeometry::downlink(
            0.3,
            30_000.0,
            1.2,
            300.0,
            range_km * 1000.0,
            f64::to_radians(elev_deg),
        );
        let b = FsoChannel::new(geom, params).budget();
        println!("{city}:\n{b}\n");
    }

    println!("== Inter-satellite links (vacuum) ==");
    for (label, km) in [
        ("cross-plane close approach", 500.0),
        ("adjacent planes", 2400.0),
        ("in-plane neighbours", 6871.0),
    ] {
        let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 500_000.0, km * 1000.0, 0.0);
        let eta = FsoChannel::new(geom, params).transmissivity();
        let up = if eta >= PAPER_THRESHOLD { "yes" } else { "no" };
        println!("{label:<28} {km:>7.0} km  eta = {eta:.4}  link? {up}");
    }
    println!("\nISLs at the paper's spacing never qualify — every space-ground\npath is a single-satellite relay, which is why coverage needs 108 satellites.");
}
