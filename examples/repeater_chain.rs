//! Repeater-chain extension: what the QNTN network would need to go beyond
//! single-relay distances.
//!
//! The paper distributes raw pairs over one satellite/HAP bounce. For
//! longer chains (e.g. a future multi-hop Tennessee→elsewhere backbone),
//! repeaters swap entanglement at intermediate nodes and purify the
//! degraded pairs. This example quantifies both primitives on the exact
//! density-matrix machinery:
//!
//! ```text
//! cargo run --release --example repeater_chain
//! ```

use qntn::quantum::channels::amplitude_damping;
use qntn::quantum::fidelity::{bell_ad_sqrt_fidelity, fidelity_to_pure, sqrt_fidelity_to_pure};
use qntn::quantum::protocols::{
    entanglement_swap, purify_bbpssw, teleport_fidelity, twirl_to_werner,
};
use qntn::quantum::state::{bell_phi_plus, DensityMatrix, Ket};

fn damped_pair(eta: f64) -> DensityMatrix {
    amplitude_damping(eta)
        .on_qubit(1, 2)
        .apply(&bell_phi_plus().density())
}

fn main() {
    let bell = bell_phi_plus();

    println!("== Entanglement swapping: chain of equal links ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "links", "eta_per_link", "F_swapchain", "F_direct"
    );
    for eta in [0.95, 0.9, 0.85] {
        let mut chain = damped_pair(eta);
        let mut links = 1;
        for _ in 0..3 {
            chain = entanglement_swap(&chain, &damped_pair(eta));
            links += 1;
            let f_chain = sqrt_fidelity_to_pure(&chain, &bell);
            let f_direct = bell_ad_sqrt_fidelity(eta.powi(links));
            println!("{links:>6} {eta:>12.2} {f_chain:>12.4} {f_direct:>12.4}");
        }
    }
    println!("(without purification, swapping tracks — never beats — the direct channel)");

    println!("\n== BBPSSW purification of Werner pairs ==");
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "F_in", "F_out", "p_succ", "gain"
    );
    let mixed = DensityMatrix::maximally_mixed(2);
    for f_in in [0.55, 0.65, 0.75, 0.85, 0.95] {
        let p = (4.0 * f_in - 1.0) / 3.0;
        let rho = DensityMatrix::new(
            bell.density().matrix().scale_real(p) + mixed.matrix().scale_real(1.0 - p),
        );
        let out = purify_bbpssw(&rho);
        let f_out = fidelity_to_pure(&out.state, &bell);
        println!(
            "{f_in:>8.2} {f_out:>10.4} {:>10.4} {:>+8.4}",
            out.success_probability,
            f_out - f_in
        );
    }

    println!("\n== Iterated purification (with Werner twirl, as BBPSSW prescribes) ==");
    let p = (4.0 * 0.65 - 1.0) / 3.0;
    let mut rho = DensityMatrix::new(
        bell.density().matrix().scale_real(p) + mixed.matrix().scale_real(1.0 - p),
    );
    let mut total_pairs = 1.0;
    for round in 1..=6 {
        let out = purify_bbpssw(&twirl_to_werner(&rho));
        total_pairs = total_pairs * 2.0 / out.success_probability;
        rho = out.state;
        println!(
            "round {round}: F = {:.4}, ~{:.1} raw pairs consumed per output pair",
            fidelity_to_pure(&rho, &bell),
            total_pairs
        );
    }
    println!("(omitting the twirl makes iteration *degrade* after one round — try it)");

    println!("\n== Teleportation quality over QNTN resource pairs ==");
    let psi = Ket::plus();
    for (label, eta) in [
        ("HAP 2-hop pair (eta 0.92)", 0.92),
        ("satellite 2-hop pair (eta 0.63)", 0.63),
        ("threshold-grade link (eta 0.70)", 0.70),
    ] {
        let f = teleport_fidelity(&psi, &damped_pair(eta));
        println!("  {label:<34} teleport F = {f:.4}");
    }
    println!(
        "\nteleporting at >0.90 fidelity (the 44-km record the paper cites)\n\
         needs resource pairs at roughly eta >= 0.8 under this noise model."
    );
}
