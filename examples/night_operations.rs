//! Night-operations extension: what happens to both architectures when
//! quantum links only work in darkness (as in every FSO quantum-link
//! demonstration to date, Micius included).
//!
//! ```text
//! cargo run --release --example night_operations
//! ```

use qntn::core::architecture::default_epoch;
use qntn::core::experiments::night::NightOps;
use qntn::core::scenario::Qntn;
use qntn::net::SimConfig;
use qntn::orbit::{sun_elevation, Twilight};

fn main() {
    let scenario = Qntn::standard();
    let epoch = default_epoch();

    // The sun over Cookeville across the simulated day.
    println!("sun elevation over Cookeville (July 1, every 3 h):");
    let site = scenario.lan_centroid(0).with_alt(300.0);
    for k in 0..8 {
        let at = epoch.plus_seconds(f64::from(k) * 10_800.0);
        let el = sun_elevation(site, at).to_degrees();
        let phase = if el > 0.0 {
            "day"
        } else if el > -18.0 {
            "twilight"
        } else {
            "astronomical night"
        };
        println!("  t = {:>2} h UTC: {:>6.1}°  ({phase})", k * 3, el);
    }

    println!("\ncoverage under darkness gating (108 satellites vs 1 HAP):");
    println!(
        "{:<16} {:>7} | {:>13} {:>13} {:>13}",
        "twilight", "dark_%", "space_nominal", "space_gated", "air_gated"
    );
    for (name, twilight) in [
        ("horizon (0°)", Twilight::Horizon),
        ("civil (−6°)", Twilight::Civil),
        ("nautical (−12°)", Twilight::Nautical),
        ("astro (−18°)", Twilight::Astronomical),
    ] {
        let r = NightOps {
            twilight,
            satellites: 108,
        }
        .run(&scenario, SimConfig::default());
        println!(
            "{name:<16} {:>7.2} | {:>13.2} {:>13.2} {:>13.2}",
            r.dark_percent, r.space_nominal_percent, r.space_night_percent, r.air_night_percent
        );
    }

    println!(
        "\ndarkness gating caps *any* FSO architecture at the dark fraction of\n\
         the day (~24% in a Tennessee summer under the astronomical rule):\n\
         the air-ground architecture's 100% headline becomes ~24%, and the\n\
         space-ground 55% becomes ~13%. The ordering survives, the factors\n\
         don't — the strongest argument for the fiber/VBG alternatives the\n\
         paper's introduction discusses."
    );
}
