//! Link-layer extension: heralded entanglement generation with quantum
//! memories — what "serving a request" costs once the paper's
//! instantaneous-distribution assumption is dropped.
//!
//! ```text
//! cargo run --release --example link_layer
//! ```

use qntn::net::HeraldedLink;

fn main() {
    println!(
        "heralded relay: each link attempts pairs at 1 kHz, succeeds w.p. eta;\n\
         the first pair waits in a T1 memory until the second link succeeds.\n"
    );

    // The two QNTN relay classes.
    let cases = [
        ("HAP relay (eta 0.96/0.96)", 0.96, 0.96),
        ("satellite relay (eta 0.85/0.75)", 0.85, 0.75),
        ("threshold-grade relay (0.70/0.70)", 0.70, 0.70),
    ];

    println!(
        "{:<36} {:>12} {:>11} {:>10}",
        "relay", "latency_ms", "storage_ms", "F_ideal"
    );
    for (name, ea, eb) in cases {
        let link = HeraldedLink {
            eta_a: ea,
            eta_b: eb,
            attempt_rate_hz: 1000.0,
            memory_t1_s: 1e9, // effectively perfect memory
        };
        let s = link.simulate(3_000, 1);
        println!(
            "{name:<36} {:>12.3} {:>11.3} {:>10.4}",
            s.mean_latency_s * 1000.0,
            s.mean_storage_s * 1000.0,
            s.ideal_fidelity
        );
    }

    println!("\nmemory quality needed (satellite relay, 0.85/0.75 links):");
    println!(
        "{:>10} {:>13} {:>9} {:>9}",
        "T1_ms", "F_delivered", "F_ideal", "penalty"
    );
    let base = HeraldedLink {
        eta_a: 0.85,
        eta_b: 0.75,
        attempt_rate_hz: 1000.0,
        memory_t1_s: 1.0,
    };
    for t1_ms in [100.0, 30.0, 10.0, 3.0, 1.0] {
        let link = HeraldedLink {
            memory_t1_s: t1_ms / 1000.0,
            ..base
        };
        let s = link.simulate(3_000, 2);
        println!(
            "{t1_ms:>10.0} {:>13.4} {:>9.4} {:>9.4}",
            s.mean_fidelity,
            s.ideal_fidelity,
            s.ideal_fidelity - s.mean_fidelity
        );
    }

    println!(
        "\nat 1 kHz attempts the storage wait is ~1 ms, so T1 >= 30 ms keeps the\n\
         memory penalty invisible; millisecond-class memories (early solid-state\n\
         demos) already cost several points of fidelity. Slower sources scale\n\
         the requirement linearly — the latency/memory budget, not the optics,\n\
         is where the paper's instantaneous model is most optimistic."
    );
}
