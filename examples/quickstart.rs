//! Quickstart: build the QNTN scenario, evaluate both architectures with a
//! light workload, and print a Table-III-style comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::scenario::Qntn;
use qntn::net::SimConfig;
use qntn::orbit::PerturbationModel;

fn main() {
    // 1. The scenario: three Tennessee LANs (TTU, ORNL, EPB) + HAP position.
    let scenario = Qntn::standard();
    println!(
        "QNTN scenario: {} ground nodes in {} LANs",
        scenario.node_count(),
        scenario.lans.len()
    );
    for (i, lan) in scenario.lans.iter().enumerate() {
        let c = scenario.lan_centroid(i);
        println!(
            "  {}: {} nodes near ({:.3}, {:.3})",
            lan.name,
            lan.nodes.len(),
            c.lat_deg(),
            c.lon_deg()
        );
    }

    // 2. Both architectures over one simulated day (30 s steps).
    let config = SimConfig::default();
    println!("\nbuilding air-ground architecture (1 HAP @ 30 km)...");
    let air = AirGround::new(&scenario, config);
    println!("building space-ground architecture (36 satellites @ 500 km)...");
    let space = SpaceGround::new(&scenario, 36, config, PerturbationModel::TwoBody);

    // 3. A light request workload (the full paper workload lives in the
    //    `reproduce` binary: 100 requests x 100 time steps).
    let experiment = FidelityExperiment {
        sampled_steps: 12,
        requests_per_step: 50,
        ..FidelityExperiment::quick()
    };
    let air_report = experiment.run_air_ground(&air);
    let space_report = experiment.run_space_ground(&space);

    println!(
        "\n{:<22} {:>10} {:>10} {:>11} {:>11}",
        "architecture", "coverage%", "served%", "F(end2end)", "F(per-link)"
    );
    for (name, r) in [
        ("space-ground (36)", &space_report),
        ("air-ground (HAP)", &air_report),
    ] {
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>11.4} {:>11.4}",
            name, r.coverage_percent, r.served_percent, r.mean_fidelity, r.mean_link_fidelity
        );
    }

    println!(
        "\nair-ground wins on all three metrics, as in the paper's Table III \
         (run `reproduce table3` for the full 108-satellite workload)."
    );
}
