//! Weather-sensitivity extension (the paper's future work, Section V):
//! evaluate both architectures under named meteorological conditions (Kim
//! visibility model) and under an abstract degradation multiplier, and
//! watch the clear-sky headline numbers collapse.
//!
//! ```text
//! cargo run --release --example weather_sensitivity
//! ```

use qntn::channel::fso::{FsoChannel, FsoGeometry};
use qntn::channel::params::FsoParams;
use qntn::channel::weather::{atmosphere_for_visibility, WeatherCondition};
use qntn::core::architecture::{AirGround, SpaceGround};
use qntn::core::experiments::fidelity::FidelityExperiment;
use qntn::core::scenario::Qntn;
use qntn::net::SimConfig;
use qntn::orbit::PerturbationModel;

fn main() {
    let scenario = Qntn::standard();
    let experiment = FidelityExperiment {
        sampled_steps: 8,
        requests_per_step: 40,
        ..FidelityExperiment::quick()
    };

    println!("== named conditions (Kim visibility model, 810 nm) ==");
    // Representative HAP downlink for the per-link column.
    let hap_geom = FsoGeometry::downlink(0.3, 30_000.0, 1.2, 300.0, 78_000.0, 0.39);
    let hap_eta = |fso: FsoParams| FsoChannel::new(hap_geom, fso).transmissivity();
    println!(
        "{:<32} {:>8} | {:>8} {:>9} | {:>8}",
        "condition", "hap_eta", "air_srv%", "air_F", "spc_srv%"
    );
    let ideal = FsoParams::ideal();
    let mut rows: Vec<(String, FsoParams)> = vec![("paper ideal (calibrated)".into(), ideal)];
    for condition in [
        WeatherCondition::ExceptionallyClear,
        WeatherCondition::Clear,
        WeatherCondition::LightHaze,
        WeatherCondition::Haze,
        WeatherCondition::Mist,
        WeatherCondition::LightFog,
    ] {
        rows.push((
            condition.label().to_string(),
            FsoParams {
                atmosphere: atmosphere_for_visibility(condition.visibility_m(), ideal.wavelength_m),
                ..ideal
            },
        ));
    }
    for (label, fso) in rows {
        let config = SimConfig {
            fso,
            ..SimConfig::default()
        };
        let air = AirGround::new(&scenario, config);
        let ra = experiment.run_air_ground(&air);
        let space = SpaceGround::new(&scenario, 36, config, PerturbationModel::TwoBody);
        let rs = experiment.run_space_ground(&space);
        println!(
            "{:<32} {:>8.4} | {:>8.1} {:>9.4} | {:>8.1}",
            label,
            hap_eta(fso),
            ra.served_percent,
            ra.mean_fidelity,
            rs.served_percent
        );
    }
    println!(
        "(real-sky extinction at 810 nm — even 'exceptionally clear' — sinks\n\
         every link below the 0.7 threshold at these slant angles: the\n\
         paper's 'ideal conditions' is the single strongest assumption in\n\
         the study, stronger than the HAP stability it discusses)"
    );

    println!("\n== abstract degradation multiplier (extinction + HV-5/7 turbulence) ==");
    println!(
        "{:>8} | {:>9} {:>8} {:>9} | {:>9} {:>8} {:>9}",
        "weather", "air_cov%", "air_srv%", "air_F", "spc_cov%", "spc_srv%", "spc_F"
    );
    for weather in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let config = SimConfig {
            fso: FsoParams::ideal().with_weather(weather),
            ..SimConfig::default()
        };
        let air = AirGround::new(&scenario, config);
        let ra = experiment.run_air_ground(&air);
        let space = SpaceGround::new(&scenario, 36, config, PerturbationModel::TwoBody);
        let rs = experiment.run_space_ground(&space);
        println!(
            "{:>8.0} | {:>9.1} {:>8.1} {:>9.4} | {:>9.1} {:>8.1} {:>9.4}",
            weather,
            ra.coverage_percent,
            ra.served_percent,
            ra.mean_fidelity,
            rs.coverage_percent,
            rs.served_percent,
            rs.mean_fidelity
        );
    }

    println!(
        "\nweather = 1 is the paper's 'perfect setup and ideal conditions';\n\
         the air-ground architecture's advantage is contingent on clear\n\
         skies — exactly the limitation its discussion (Section IV-D) flags."
    );
}
